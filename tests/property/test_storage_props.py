"""Property-based tests: cache storage and staleness-probe invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.base import CacheStorage
from repro.monitor.analysis import StalenessProbe
from repro.types import CommittedTransaction, ReadOnlyTransactionRecord, VersionedValue

KEYS = ["a", "b", "c"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS), st.integers(0, 20)),
        st.tuples(st.just("invalidate"), st.sampled_from(KEYS), st.integers(0, 20)),
        st.tuples(st.just("evict"), st.sampled_from(KEYS), st.just(0)),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(0)),
    ),
    max_size=30,
)


def apply_ops(storage: CacheStorage, ops) -> dict[str, int]:
    """Run operations; return the highest version ever put per key."""
    highest: dict[str, int] = {}
    for op, key, version in ops:
        if op == "put":
            storage.put(VersionedValue(key=key, value=version, version=version), now=0.0)
            highest[key] = max(highest.get(key, -1), version)
        elif op == "invalidate":
            storage.invalidate(key, version)
        elif op == "evict":
            storage.evict(key)
        else:
            storage.get(key, now=0.0)
    return highest


class TestStorageInvariants:
    @given(operations)
    @settings(max_examples=300, deadline=None)
    def test_versions_never_regress_in_place(self, ops) -> None:
        """A *resident* entry's version never moves backwards: puts of older
        versions are ignored. (Across an eviction the slate is clean — in
        the real system the re-fetch comes from the database, whose versions
        only grow, so the end-to-end invariant is stronger; see the
        integration suite.)"""
        storage = CacheStorage()
        last_seen: dict[str, int] = {}
        for op, key, version in ops:
            if op == "put":
                storage.put(
                    VersionedValue(key=key, value=version, version=version), now=0.0
                )
            elif op == "invalidate":
                storage.invalidate(key, version)
            elif op == "evict":
                storage.evict(key)
            current = storage.version_of(key)
            if current is None:
                last_seen.pop(key, None)  # removal resets the constraint
            else:
                assert current >= last_seen.get(key, -1)
                last_seen[key] = current

    @given(operations)
    @settings(max_examples=200, deadline=None)
    def test_cached_version_is_a_version_that_was_put(self, ops) -> None:
        storage = CacheStorage()
        put_versions: dict[str, set[int]] = {}
        for op, key, version in ops:
            if op == "put":
                storage.put(
                    VersionedValue(key=key, value=version, version=version), now=0.0
                )
                put_versions.setdefault(key, set()).add(version)
            elif op == "invalidate":
                storage.invalidate(key, version)
            elif op == "evict":
                storage.evict(key)
        for key in KEYS:
            current = storage.version_of(key)
            if current is not None:
                assert current in put_versions.get(key, set())

    @given(operations)
    @settings(max_examples=200, deadline=None)
    def test_invalidate_semantics(self, ops) -> None:
        """After invalidate(key, v): the entry is either gone or >= v."""
        storage = CacheStorage()
        apply_ops(storage, ops)
        for key in KEYS:
            before = storage.version_of(key)
            applied = storage.invalidate(key, 10)
            after = storage.version_of(key)
            if applied:
                assert before is not None and before < 10
                assert after is None
            else:
                assert after == before
                if after is not None:
                    assert after >= 10


versions_chain = st.lists(st.booleans(), min_size=1, max_size=15)


class TestStalenessProbeProperties:
    @given(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=12),
        st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_depth_matches_brute_force(self, writes, data) -> None:
        probe = StalenessProbe()
        chains: dict[str, list[int]] = {key: [] for key in KEYS}
        for index, key in enumerate(writes, start=1):
            probe.record_update(
                CommittedTransaction(txn_id=index, reads={}, writes={key: index})
            )
            chains[key].append(index)

        key = data.draw(st.sampled_from(KEYS))
        observed = data.draw(st.sampled_from([0] + chains[key]))
        probe.record_read_only(
            ReadOnlyTransactionRecord(txn_id=1, reads={key: observed})
        )
        report = probe.report()
        current = chains[key][-1] if chains[key] else 0
        expected_depth = sum(1 for v in chains[key] if observed < v <= current)
        if expected_depth == 0:
            assert report.stale_reads == 0
        else:
            assert report.stale_reads == 1
            assert report.depth_histogram == {expected_depth: 1}

    @given(st.lists(st.sampled_from(KEYS), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_fresh_snapshot_never_counts_stale(self, writes) -> None:
        probe = StalenessProbe()
        current: dict[str, int] = {}
        for index, key in enumerate(writes, start=1):
            probe.record_update(
                CommittedTransaction(txn_id=index, reads={}, writes={key: index})
            )
            current[key] = index
        probe.record_read_only(ReadOnlyTransactionRecord(txn_id=1, reads=current))
        assert probe.report().stale_reads == 0
