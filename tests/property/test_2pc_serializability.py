"""Property-based test: arbitrary concurrent update mixes stay serializable.

Randomized batches of overlapping update transactions are thrown at the
multi-shard database with non-zero phase latencies (so executions genuinely
interleave); the committed history must always form a conflict DAG in
version order, reads must observe committed versions, and every object must
end at its last writer's version.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.monitor.sgt import SerializationGraphTester
from repro.sim.core import Simulator

KEYS = [f"k{i}" for i in range(8)]


@st.composite
def transaction_batches(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    batch = []
    for _ in range(n):
        keys = draw(st.lists(st.sampled_from(KEYS), min_size=1, max_size=4, unique=True))
        delay = draw(st.floats(min_value=0.0, max_value=0.02))
        batch.append((keys, delay))
    return batch


def run_batch(batch, shards: int):
    sim = Simulator()
    database = Database(
        sim,
        DatabaseConfig(
            shards=shards,
            deplist_max=5,
            timing=TimingConfig(0.0, 0.005, 0.001, 0.001),
        ),
    )
    database.load({key: 0 for key in KEYS})
    tester = SerializationGraphTester()
    database.add_commit_listener(tester.record_update)

    processes = []

    def submit(keys, tag):
        processes.append(
            database.execute_update(read_keys=keys, writes={k: tag for k in keys})
        )

    for index, (keys, delay) in enumerate(batch):
        sim.schedule(delay, lambda ks=keys, i=index: submit(ks, i))
    sim.run()
    return database, tester, processes


class TestSerializability:
    @given(transaction_batches(), st.sampled_from([1, 3]))
    @settings(max_examples=60, deadline=None)
    def test_committed_history_is_conflict_dag(self, batch, shards) -> None:
        database, tester, processes = run_batch(batch, shards)
        assert tester.verify_update_dag()
        # Every transaction terminated one way or the other.
        assert all(p.triggered for p in processes)
        assert database.stats.committed + database.stats.aborted >= len(batch)

    @given(transaction_batches(), st.sampled_from([1, 3]))
    @settings(max_examples=60, deadline=None)
    def test_reads_observe_committed_predecessors(self, batch, shards) -> None:
        _, tester, processes = run_batch(batch, shards)
        committed = [p.value for p in processes if p.ok]
        by_version = {txn.txn_id: txn for txn in committed}
        for txn in committed:
            for key, version in txn.reads.items():
                if version == 0:
                    continue
                writer = by_version.get(version)
                assert writer is not None, "read an uncommitted version"
                assert key in writer.writes
                assert version < txn.txn_id

    @given(transaction_batches())
    @settings(max_examples=40, deadline=None)
    def test_final_state_matches_last_writer(self, batch) -> None:
        database, _, processes = run_batch(batch, shards=1)
        committed = [p.value for p in processes if p.ok]
        last_writer: dict[str, int] = {}
        for txn in committed:
            for key in txn.writes:
                last_writer[key] = max(last_writer.get(key, 0), txn.txn_id)
        for key, version in last_writer.items():
            assert database.read_entry(key).version == version

    @given(transaction_batches())
    @settings(max_examples=40, deadline=None)
    def test_snapshot_of_final_versions_is_consistent(self, batch) -> None:
        database, tester, _ = run_batch(batch, shards=1)
        final = {key: database.read_entry(key).version for key in KEYS}
        assert tester.is_consistent(final)
