"""Property-based tests for dependency lists (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deplist import UNBOUNDED, DependencyList

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=2)
versions = st.integers(min_value=0, max_value=50)
pairs = st.tuples(keys, versions)
pair_lists = st.lists(pairs, max_size=12)
direct_maps = st.dictionaries(keys, versions, max_size=8)
deplists = pair_lists.map(DependencyList.from_pairs)
inherited_lists = st.lists(deplists, max_size=4)
bounds = st.one_of(st.just(UNBOUNDED), st.integers(min_value=0, max_value=10))


class TestConstructionInvariants:
    @given(pair_lists)
    def test_no_duplicate_keys(self, raw) -> None:
        deps = DependencyList.from_pairs(raw)
        seen = [entry.key for entry in deps]
        assert len(seen) == len(set(seen))

    @given(pair_lists)
    def test_keeps_max_version_per_key(self, raw) -> None:
        deps = DependencyList.from_pairs(raw)
        for key, version in raw:
            required = deps.required_version(key)
            assert required is not None
            assert required >= version

    @given(pair_lists)
    def test_length_bounded_by_distinct_keys(self, raw) -> None:
        deps = DependencyList.from_pairs(raw)
        assert len(deps) == len({key for key, _ in raw})


class TestMergeInvariants:
    @given(direct_maps, inherited_lists, bounds)
    def test_respects_bound(self, direct, inherited, bound) -> None:
        merged = DependencyList.merge(direct, inherited, max_len=bound)
        if bound != UNBOUNDED:
            assert len(merged) <= bound

    @given(direct_maps, inherited_lists)
    def test_unbounded_merge_loses_nothing(self, direct, inherited) -> None:
        merged = DependencyList.merge(direct, inherited, max_len=UNBOUNDED)
        for key, version in direct.items():
            assert merged.required_version(key) >= version
        for source in inherited:
            for entry in source:
                assert merged.required_version(entry.key) >= entry.version

    @given(direct_maps, inherited_lists)
    def test_merged_versions_are_maxima(self, direct, inherited) -> None:
        """Every merged entry's version equals the maximum seen for its key
        across direct entries and all inherited lists (subsumption)."""
        merged = DependencyList.merge(direct, inherited, max_len=UNBOUNDED)
        for entry in merged:
            candidates = []
            if entry.key in direct:
                candidates.append(direct[entry.key])
            for source in inherited:
                version = source.required_version(entry.key)
                if version is not None:
                    candidates.append(version)
            assert entry.version == max(candidates)

    @given(direct_maps, inherited_lists, bounds)
    def test_direct_entries_survive_pruning_first(self, direct, inherited, bound) -> None:
        merged = DependencyList.merge(direct, inherited, max_len=bound)
        if bound == UNBOUNDED or len(direct) >= bound:
            # Every kept entry must be a direct one when direct alone
            # saturates the bound.
            if bound != UNBOUNDED:
                assert all(entry.key in direct for entry in merged)
        else:
            for key in direct:
                assert key in merged

    @given(direct_maps, inherited_lists, bounds, keys)
    def test_exclude_is_absent(self, direct, inherited, bound, excluded) -> None:
        merged = DependencyList.merge(direct, inherited, max_len=bound, exclude=excluded)
        assert excluded not in merged

    @given(direct_maps, inherited_lists, bounds)
    def test_merge_is_deterministic(self, direct, inherited, bound) -> None:
        once = DependencyList.merge(direct, inherited, max_len=bound)
        twice = DependencyList.merge(direct, inherited, max_len=bound)
        assert once == twice

    @given(direct_maps, st.lists(deplists, max_size=3), st.integers(1, 6))
    @settings(max_examples=50)
    def test_pruning_only_drops_never_mutates(self, direct, inherited, bound) -> None:
        bounded = DependencyList.merge(direct, inherited, max_len=bound)
        unbounded = DependencyList.merge(direct, inherited, max_len=UNBOUNDED)
        for entry in bounded:
            assert unbounded.required_version(entry.key) == entry.version


class TestRecencySemantics:
    @given(st.lists(st.tuples(keys, versions), min_size=1, max_size=8))
    def test_iteration_matches_as_pairs(self, raw) -> None:
        deps = DependencyList.from_pairs(raw)
        assert [
            (entry.key, entry.version) for entry in deps
        ] == list(deps.as_pairs())

    @given(direct_maps, inherited_lists)
    def test_merge_orders_direct_before_inherited(self, direct, inherited) -> None:
        merged = DependencyList.merge(direct, inherited, max_len=UNBOUNDED)
        entries = list(merged)
        inherited_only_seen = False
        for entry in entries:
            if entry.key in direct:
                assert not inherited_only_seen
            else:
                inherited_only_seen = True
