"""Property-based tests for the protocol zoo's headline guarantees.

Randomized fleets (seeds, loss rates, update rates, edge counts) are run
end to end through the scenario harness; each protocol's defining property
must hold on every draw:

* ``locking`` — validated reads + S-locks-to-commit + wounding writers make
  committed read sets serializable, so the omniscient monitor must record
  **zero** inconsistent transactions;
* ``causal`` — a cache never serves a version below its session's
  dependency floor (the ``served_below_floor`` self-check stays zero);
* ``verified-read`` — every serve carries a MAC that verifies against the
  backend service's secret (``signature_failures`` stays zero, and every
  serve was checked).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenario.runner import build_scenario, run_scenario
from repro.scenario.spec import EdgeSpec, ScenarioSpec
from repro.workloads.synthetic import PerfectClusterWorkload

WORKLOAD = PerfectClusterWorkload(n_objects=60, cluster_size=5)


def fleet_spec(protocol: str, seed: int, losses, update_rate: float) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"props-{protocol}",
        seed=seed,
        duration=1.5,
        warmup=0.3,
        edges=[
            EdgeSpec(
                name=f"edge{i}",
                workload=WORKLOAD,
                protocol=protocol,
                update_rate=update_rate,
                read_rate=400.0,
                invalidation_loss=loss,
            )
            for i, loss in enumerate(losses)
        ],
    )


fleet_draws = st.tuples(
    st.integers(min_value=1, max_value=10_000),
    st.lists(
        st.floats(min_value=0.0, max_value=0.9), min_size=1, max_size=3
    ),
    st.floats(min_value=20.0, max_value=300.0),
)


class TestLockingProperty:
    @given(fleet_draws)
    @settings(max_examples=15, deadline=None)
    def test_zero_inconsistencies(self, draw) -> None:
        seed, losses, update_rate = draw
        result = run_scenario(fleet_spec("locking", seed, losses, update_rate))
        assert result.fleet.inconsistency_ratio == 0.0
        for edge in result.spec.edges:
            assert result.edge(edge.name).inconsistency_ratio == 0.0


class TestCausalProperty:
    @given(fleet_draws)
    @settings(max_examples=15, deadline=None)
    def test_never_serves_below_the_floor(self, draw) -> None:
        seed, losses, update_rate = draw
        scenario = build_scenario(
            fleet_spec("causal", seed, losses, update_rate)
        )
        scenario.sim.run(until=1.5)
        for edge in scenario.edges:
            assert edge.cache.served_below_floor == 0


class TestVerifiedReadProperty:
    @given(fleet_draws)
    @settings(max_examples=15, deadline=None)
    def test_every_serve_verifies(self, draw) -> None:
        seed, losses, update_rate = draw
        scenario = build_scenario(
            fleet_spec("verified-read", seed, losses, update_rate)
        )
        scenario.sim.run(until=1.5)
        for edge in scenario.edges:
            assert edge.cache.signature_failures == 0
            assert edge.cache.signatures_verified >= edge.cache.stats.hits
