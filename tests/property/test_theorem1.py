"""Property-based test of Theorem 1.

"T-Cache with unbounded cache size and unbounded dependency lists implements
cache-serializability."

Operationalised: under the paper's transaction model — update transactions
write every object they touch (§III-A) — any read-only transaction that the
unbounded T-Cache detector lets commit is serializable with the update
history, for *any* update history and *any* pattern of invalidation loss
(modelled here as adversarial per-read staleness: each read may observe any
committed version no newer than the current one).

The test drives the real detector (`check_read` over `TransactionContext`)
against the real §III-A dependency-list maintenance (`FakeBackend.commit`)
and validates every committed observation with the serialization-graph
tester, which the oracle suite has independently verified.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deplist import DependencyList
from repro.core.detector import check_read
from repro.core.records import TransactionContext
from repro.monitor.sgt import SerializationGraphTester
from tests.helpers import FakeBackend

KEYS = ["a", "b", "c", "d", "e", "f"]


@st.composite
def staleness_scenarios(draw):
    """A history of write-all update transactions plus a read-only
    transaction observing adversarially stale (cached) versions."""
    n_txns = draw(st.integers(min_value=1, max_value=10))
    accesses = [
        draw(st.lists(st.sampled_from(KEYS), min_size=1, max_size=4, unique=True))
        for _ in range(n_txns)
    ]
    read_keys = draw(
        st.lists(st.sampled_from(KEYS), min_size=2, max_size=5, unique=True)
    )
    # For each read, which historical version does the stale cache serve?
    # Drawn as a fraction of the available versions at that key.
    staleness = [draw(st.floats(min_value=0.0, max_value=1.0)) for _ in read_keys]
    return accesses, read_keys, staleness


def versions_of(backend: FakeBackend, tester_versions: dict, key: str) -> list[int]:
    return [0] + [
        txn.txn_id for txn in backend.history if key in txn.writes
    ]


class TestTheorem1:
    @given(staleness_scenarios())
    @settings(max_examples=300, deadline=None)
    def test_unbounded_tcache_commits_only_serializable_reads(self, scenario) -> None:
        accesses, read_keys, staleness = scenario
        backend = FakeBackend({key: f"{key}0" for key in KEYS})  # unbounded deps
        tester = SerializationGraphTester()
        for keys in accesses:
            tester.record_update(backend.commit(keys))

        context = TransactionContext(txn_id=1, start_time=0.0)
        observed: dict[str, int] = {}
        committed = True
        for key, fraction in zip(read_keys, staleness):
            available = versions_of(backend, {}, key)
            version = available[int(fraction * (len(available) - 1))]
            # Reconstruct the §III-A dependency list stored with that
            # version: the list the cache would hold.
            deps = _deps_at(backend, key, version)
            if check_read(context, key, version, deps) is not None:
                committed = False  # ABORT
                break
            context.record_read(key, version, deps)
            observed[key] = version

        if committed:
            assert tester.is_consistent(observed), (
                f"unbounded T-Cache committed a non-serializable read set "
                f"{observed} against history {[t.writes for t in backend.history]}"
            )

    @given(staleness_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_fresh_reads_always_commit(self, scenario) -> None:
        """Reading everything at the current version never aborts."""
        accesses, read_keys, _ = scenario
        backend = FakeBackend({key: f"{key}0" for key in KEYS})
        for keys in accesses:
            backend.commit(keys)
        context = TransactionContext(txn_id=1, start_time=0.0)
        for key in read_keys:
            entry = backend.entry(key)
            deps = DependencyList(entry.deps)
            assert check_read(context, key, entry.version, deps) is None
            context.record_read(key, entry.version, deps)


def _deps_at(backend: FakeBackend, key: str, version: int) -> DependencyList:
    """The dependency list stored with (key, version).

    Version 0 entries carry no dependencies. For newer versions we replay
    the backend history up to the writing transaction; since the backend's
    lists are unbounded and §III-A merges are deterministic, the list equals
    the one stored at commit time — which we capture by re-running commits
    into a shadow backend.
    """
    if version == 0:
        return DependencyList()
    shadow = FakeBackend({k: f"{k}0" for k in KEYS})
    for txn in backend.history:
        shadow.commit(sorted(txn.writes))
        if txn.txn_id == version:
            break
    return DependencyList(shadow.entry(key).deps)
