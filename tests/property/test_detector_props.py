"""Property-based tests: the detector is exactly the §III-B predicate.

A brute-force reference implementation evaluates Equations 1 and 2 directly
over the raw read records (no aggregated requirement index); the production
detector must agree on arbitrary read sequences.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deplist import DependencyList
from repro.core.detector import check_read
from repro.core.records import TransactionContext

KEYS = ["a", "b", "c", "d"]

reads = st.tuples(
    st.sampled_from(KEYS),
    st.integers(min_value=0, max_value=6),
    st.lists(
        st.tuples(st.sampled_from(KEYS), st.integers(min_value=0, max_value=6)),
        max_size=4,
    ),
)
read_sequences = st.lists(reads, min_size=1, max_size=6)


def reference_violation(
    history: list[tuple[str, int, DependencyList]],
    key_curr: str,
    ver_curr: int,
    deps_curr: DependencyList,
) -> bool:
    """Direct transcription of §III-B (plus the repeated-read rule)."""
    # Equation 2: some earlier read (directly or via its dependency list)
    # expects key_curr at a version larger than ver_curr.
    for key, version, deps in history:
        if key == key_curr and version > ver_curr:
            return True
        required = deps.required_version(key_curr)
        if required is not None and required > ver_curr:
            return True
    # Repeated read: earlier read of the same key at an older version.
    for key, version, _ in history:
        if key == key_curr and version < ver_curr:
            return True
    # Equation 1: the current read's dependency list expects an earlier
    # read's key at a larger version than was observed.
    for entry in deps_curr:
        for key, version, _ in history:
            if key == entry.key and entry.version > version:
                return True
    return False


class TestDetectorEquivalence:
    @given(read_sequences)
    @settings(max_examples=400, deadline=None)
    def test_detector_matches_reference_on_sequences(self, sequence) -> None:
        context = TransactionContext(txn_id=1, start_time=0.0)
        history: list[tuple[str, int, DependencyList]] = []
        for key, version, raw_deps in sequence:
            deps = DependencyList.from_pairs(raw_deps)
            expected = reference_violation(history, key, version, deps)
            report = check_read(context, key, version, deps)
            assert (report is not None) == expected, (
                f"history={[(k, v, d.as_pairs()) for k, v, d in history]} "
                f"read=({key}, {version}, {deps.as_pairs()})"
            )
            if report is not None:
                break
            context.record_read(key, version, deps)
            history.append((key, version, deps))

    @given(read_sequences)
    @settings(max_examples=200, deadline=None)
    def test_report_fields_are_coherent(self, sequence) -> None:
        context = TransactionContext(txn_id=1, start_time=0.0)
        for key, version, raw_deps in sequence:
            deps = DependencyList.from_pairs(raw_deps)
            report = check_read(context, key, version, deps)
            if report is None:
                context.record_read(key, version, deps)
                continue
            assert report.required_version > report.found_version
            assert report.equation in (1, 2)
            if report.equation == 2:
                assert report.stale_key == key
                assert report.found_version == version
            else:
                # The stale object was read earlier (or is a repeat of the
                # current key at an older version).
                assert context.version_read(report.stale_key) is not None or (
                    report.stale_key == key
                )
            break

    @given(read_sequences)
    @settings(max_examples=200, deadline=None)
    def test_reading_own_recorded_versions_is_stable(self, sequence) -> None:
        """Re-reading exactly what was already read never triggers.

        Holds for dependency lists without self-entries — which is all the
        database ever stores (§III-A attaches the merged list to each
        written object *minus* that object's own entry). A self-entry
        demanding a newer version of its carrier would flag its own
        re-read, so the generator strips them like the database does.
        """
        context = TransactionContext(txn_id=1, start_time=0.0)
        accepted: list[tuple[str, int, DependencyList]] = []
        for key, version, raw_deps in sequence:
            deps = DependencyList.from_pairs(
                (k, v) for k, v in raw_deps if k != key
            )
            if check_read(context, key, version, deps) is None:
                context.record_read(key, version, deps)
                accepted.append((key, version, deps))
            else:
                break
        for key, version, deps in accepted:
            assert check_read(context, key, version, deps) is None
