"""Property-based test: multiversion T-Cache with unbounded lists stays
cache-serializable.

The §VI extension serves *older* retained versions to avoid Equation 1
aborts. With unbounded dependency lists, whatever combination of versions it
lets a transaction commit must still be serializable — the Theorem 1
argument applies to every served version, not just the newest, because each
carries its own complete dependency list.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiversion import MultiversionTCache
from repro.db.invalidation import InvalidationRecord
from repro.errors import TransactionAborted
from repro.monitor.sgt import SerializationGraphTester
from repro.sim.core import Simulator
from tests.helpers import FakeBackend

KEYS = ["a", "b", "c", "d"]


@st.composite
def schedules(draw):
    """Interleavings of update commits, invalidation delivery/loss, and
    cache reads."""
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("commit"),
                    st.lists(st.sampled_from(KEYS), min_size=1, max_size=3, unique=True),
                ),
                st.tuples(st.just("warm"), st.sampled_from(KEYS)),
                st.tuples(st.just("invalidate"), st.sampled_from(KEYS)),
            ),
            min_size=2,
            max_size=12,
        )
    )
    reads = draw(st.lists(st.sampled_from(KEYS), min_size=2, max_size=4, unique=True))
    return steps, reads


class TestMultiversionSerializability:
    @given(schedules())
    @settings(max_examples=200, deadline=None)
    def test_committed_reads_serialize(self, scenario) -> None:
        steps, reads = scenario
        sim = Simulator()
        backend = FakeBackend({key: f"{key}0" for key in KEYS})  # unbounded deps
        cache = MultiversionTCache(sim, backend, history_depth=4)
        tester = SerializationGraphTester()

        warm_txn = 1_000
        for step in steps:
            if step[0] == "commit":
                tester.record_update(backend.commit(list(step[1])))
            elif step[0] == "warm":
                warm_txn += 1
                cache.read(warm_txn, step[1], last_op=True)
            else:
                key = step[1]
                current = backend.version_of(key)
                if current > 0:
                    cache.handle_invalidation(
                        InvalidationRecord(
                            key=key, version=current, txn_id=current, commit_time=0.0
                        )
                    )

        observed = {}
        try:
            for position, key in enumerate(reads):
                result = cache.read(1, key, last_op=position == len(reads) - 1)
                observed[key] = result.version
        except TransactionAborted:
            return  # aborting is always safe
        assert tester.is_consistent(observed), (
            f"multiversion cache committed {observed} against "
            f"{[t.writes for t in backend.history]}"
        )
