"""Property-based validation of the serialization-graph tester against an
independent brute-force oracle built on networkx.

The oracle constructs the *full* conflict graph — every WW/WR/RW edge between
update transactions plus the read-only transaction's WR/RW edges — with no
version-window pruning, no chain indexes, and decides consistency by strongly
connected components. Agreement across randomized histories validates the
incremental tester the monitor uses.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor.sgt import SerializationGraphTester
from repro.types import CommittedTransaction

KEYS = ["a", "b", "c", "d", "e"]


# ---------------------------------------------------------------------------
# History generation: sequential execution of update transactions with
# read-version = current version at execution time (what strict 2PL with a
# commit-order version counter produces).
# ---------------------------------------------------------------------------


@st.composite
def histories(draw):
    n_txns = draw(st.integers(min_value=0, max_value=8))
    current: dict[str, int] = {key: 0 for key in KEYS}
    txns: list[CommittedTransaction] = []
    for version in range(1, n_txns + 1):
        read_keys = draw(
            st.lists(st.sampled_from(KEYS), min_size=1, max_size=4, unique=True)
        )
        # Write a (possibly strict) subset of the read set — partial writes
        # exercise anti-dependency (RW) edges.
        write_count = draw(st.integers(min_value=1, max_value=len(read_keys)))
        write_keys = read_keys[:write_count]
        txns.append(
            CommittedTransaction(
                txn_id=version,
                reads={key: current[key] for key in read_keys},
                writes={key: version for key in write_keys},
            )
        )
        for key in write_keys:
            current[key] = version
    return txns


@st.composite
def read_sets(draw, history):
    """A read-only transaction's observation: any committed version per key."""
    chosen_keys = draw(
        st.lists(st.sampled_from(KEYS), min_size=1, max_size=4, unique=True)
    )
    observation = {}
    for key in chosen_keys:
        versions = [0] + [t.txn_id for t in history if key in t.writes]
        observation[key] = draw(st.sampled_from(versions))
    return observation


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------

READER = "T-readonly"


def oracle_is_consistent(history: list[CommittedTransaction], reads: dict) -> bool:
    graph = nx.DiGraph()
    graph.add_node(READER)
    for txn in history:
        graph.add_node(txn.txn_id)

    def writer_of(key, version):
        if version == 0:
            return None
        return version

    def writers_after(key, version):
        return [t.txn_id for t in history if key in t.writes and t.txn_id > version]

    # Update-transaction conflict edges, brute force over all pairs.
    for txn in history:
        for key, version in txn.writes.items():
            # WW: to every later writer.
            for later in writers_after(key, version):
                graph.add_edge(txn.txn_id, later)
            # WR: to every update transaction that read this version.
            for other in history:
                if other.txn_id != txn.txn_id and other.reads.get(key) == version:
                    graph.add_edge(txn.txn_id, other.txn_id)
        for key, version in txn.reads.items():
            # RW: to every writer that overwrote the version read.
            for later in writers_after(key, version):
                if later != txn.txn_id:
                    graph.add_edge(txn.txn_id, later)

    # The read-only transaction's edges.
    for key, version in reads.items():
        writer = writer_of(key, version)
        if writer is not None:
            graph.add_edge(writer, READER)  # WR
        for later in writers_after(key, version):
            graph.add_edge(READER, later)  # RW

    for component in nx.strongly_connected_components(graph):
        if READER in component:
            return len(component) == 1
    raise AssertionError("reader vanished from its own graph")  # pragma: no cover


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@st.composite
def history_and_reads(draw):
    history = draw(histories())
    reads = draw(read_sets(history))
    return history, reads


class DerivedSuccessorReference:
    """The pre-adjacency tester: successors re-derived per query via bisect.

    This is the implementation ``SerializationGraphTester`` replaced when it
    went incremental (next-writer back-patching in ``record_update``); it is
    kept here verbatim as the reference the property below pins the refactor
    against — same verdicts, same edge sets, for arbitrary histories in
    arbitrary recording order.
    """

    def __init__(self) -> None:
        self._txns: dict[int, CommittedTransaction] = {}
        self._chains: dict[str, list[int]] = {}
        self._readers: dict[tuple[str, int], list[int]] = {}

    def record_update(self, txn: CommittedTransaction) -> None:
        from bisect import insort

        self._txns[txn.txn_id] = txn
        for key, version in txn.writes.items():
            insort(self._chains.setdefault(key, []), version)
        for key, version in txn.reads.items():
            self._readers.setdefault((key, version), []).append(txn.txn_id)

    def next_writer(self, key: str, version: int) -> int | None:
        from bisect import bisect_right

        chain = self._chains.get(key)
        if not chain:
            return None
        index = bisect_right(chain, version)
        return None if index == len(chain) else chain[index]

    def successors(self, txn_id: int):
        txn = self._txns.get(txn_id)
        if txn is None:
            return
        for key, version in txn.writes.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None:
                yield overwriter  # WW
            for reader in self._readers.get((key, version), ()):
                if reader != txn_id:
                    yield reader  # WR
        for key, version in txn.reads.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None and overwriter != txn_id:
                yield overwriter  # RW

    def is_consistent(self, reads: dict) -> bool:
        if len(reads) <= 1:
            return True
        writers = {version for version in reads.values() if version != 0}
        starts = set()
        for key, version in reads.items():
            overwriter = self.next_writer(key, version)
            if overwriter is not None:
                starts.add(overwriter)
        if not writers or not starts:
            return True
        bound = max(writers)
        frontier = [txn for txn in starts if txn <= bound]
        visited = set(frontier)
        while frontier:
            node = frontier.pop()
            if node in writers:
                return False
            for successor in self.successors(node):
                if successor <= bound and successor not in visited:
                    visited.add(successor)
                    frontier.append(successor)
        return True


class TestIncrementalAdjacencyAgainstDerivedReference:
    """The incremental (back-patched) adjacency equals the derived one."""

    @given(history_and_reads(), st.randoms(use_true_random=False))
    @settings(max_examples=300, deadline=None)
    def test_verdicts_and_edges_match_in_any_recording_order(
        self, case, rnd
    ) -> None:
        history, reads = case
        order = list(history)
        rnd.shuffle(order)  # out-of-order arrival exercises the back-patches

        tester = SerializationGraphTester()
        reference = DerivedSuccessorReference()
        for txn in order:
            tester.record_update(txn)
            reference.record_update(txn)

        for txn in history:
            assert set(tester._successors(txn.txn_id)) == set(
                reference.successors(txn.txn_id)
            ), f"adjacency of txn {txn.txn_id} diverged"
        assert tester.is_consistent(reads) == reference.is_consistent(reads)

    @given(history_and_reads())
    @settings(max_examples=150, deadline=None)
    def test_explain_matches_pairwise_reachability(self, case) -> None:
        """The memoised single-BFS explain returns the same first witness
        the pairwise nested-loop original would."""
        history, reads = case
        tester = SerializationGraphTester()
        for txn in history:
            tester.record_update(txn)

        expected = None
        for stale_key, stale_version in reads.items():
            start = tester.next_writer(stale_key, stale_version)
            if start is None:
                continue
            for fresh_key, fresh_version in reads.items():
                writer = tester.writer_of(fresh_key, fresh_version)
                if writer is None:
                    continue
                if tester._reaches(start, writer):
                    expected = (stale_key, fresh_key)
                    break
            if expected:
                break
        assert tester.explain_inconsistency(reads) == expected


class TestAgainstOracle:
    @given(history_and_reads())
    @settings(max_examples=300, deadline=None)
    def test_tester_agrees_with_brute_force_oracle(self, case) -> None:
        history, reads = case
        tester = SerializationGraphTester()
        for txn in history:
            tester.record_update(txn)
        assert tester.is_consistent(reads) == oracle_is_consistent(history, reads)

    @given(histories())
    @settings(max_examples=150, deadline=None)
    def test_sequential_update_histories_form_a_dag(self, history) -> None:
        tester = SerializationGraphTester()
        for txn in history:
            tester.record_update(txn)
        assert tester.verify_update_dag()

    @given(history_and_reads())
    @settings(max_examples=150, deadline=None)
    def test_latest_snapshot_is_always_consistent(self, case) -> None:
        history, _ = case
        tester = SerializationGraphTester()
        current = {key: 0 for key in KEYS}
        for txn in history:
            tester.record_update(txn)
            for key in txn.writes:
                current[key] = txn.txn_id
        assert tester.is_consistent(current)

    @given(history_and_reads())
    @settings(max_examples=150, deadline=None)
    def test_explain_agrees_with_verdict(self, case) -> None:
        history, reads = case
        tester = SerializationGraphTester()
        for txn in history:
            tester.record_update(txn)
        witness = tester.explain_inconsistency(reads)
        if tester.is_consistent(reads):
            assert witness is None
        else:
            assert witness is not None
            stale_key, fresh_key = witness
            assert stale_key in reads and fresh_key in reads

    @given(history_and_reads())
    @settings(max_examples=100, deadline=None)
    def test_consistency_is_stable_under_future_commits(self, case) -> None:
        """A verdict never flips as more update transactions commit — the
        property that lets the monitor classify eagerly."""
        history, reads = case
        tester = SerializationGraphTester()
        for txn in history:
            tester.record_update(txn)
        before = tester.is_consistent(reads)
        # Append one more write-all transaction over every key.
        current = {key: 0 for key in KEYS}
        for txn in history:
            for key in txn.writes:
                current[key] = txn.txn_id
        extra = CommittedTransaction(
            txn_id=len(history) + 1,
            reads=current,
            writes={key: len(history) + 1 for key in KEYS},
        )
        tester.record_update(extra)
        assert tester.is_consistent(reads) == before
