"""Test doubles and small utilities shared across the suite."""

from __future__ import annotations

from repro.core.deplist import DependencyList, UNBOUNDED
from repro.errors import KeyNotFound
from repro.types import CommittedTransaction, Key, Version, VersionedValue

__all__ = ["FakeBackend"]


class FakeBackend:
    """An in-memory stand-in for the database's cache-facing surface.

    Provides ``read_entry`` plus helpers to install new versions with
    §III-A dependency-list maintenance, so cache unit tests can drive
    arbitrary version histories without a simulator or 2PC machinery.
    """

    def __init__(self, initial: dict[Key, object] | None = None, *, deplist_max: int = UNBOUNDED) -> None:
        self._entries: dict[Key, VersionedValue] = {}
        self._version: Version = 0
        self.deplist_max = deplist_max
        self.reads = 0
        self.history: list[CommittedTransaction] = []
        for key, value in (initial or {}).items():
            self._entries[key] = VersionedValue(key=key, value=value, version=0)

    # ------------------------------------------------------------------
    # BackendReader protocol
    # ------------------------------------------------------------------

    def read_entry(self, key: Key) -> VersionedValue:
        self.reads += 1
        entry = self._entries.get(key)
        if entry is None:
            raise KeyNotFound(key)
        return entry

    # ------------------------------------------------------------------
    # History construction
    # ------------------------------------------------------------------

    def commit(self, keys: list[Key], value: object = None) -> CommittedTransaction:
        """Run a read-all-write-all update transaction over ``keys``."""
        self._version += 1
        version = self._version
        reads = {key: self._entries[key].version for key in keys}
        direct = {key: version for key in keys}
        inherited = [DependencyList(self._entries[key].deps) for key in keys]
        for key in keys:
            deps = DependencyList.merge(
                direct, inherited, max_len=self.deplist_max, exclude=key
            )
            self._entries[key] = VersionedValue(
                key=key,
                value=value if value is not None else f"v{version}",
                version=version,
                deps=deps.entries,
            )
        committed = CommittedTransaction(
            txn_id=version, reads=reads, writes={key: version for key in keys}
        )
        self.history.append(committed)
        return committed

    def entry(self, key: Key) -> VersionedValue:
        return self._entries[key]

    def version_of(self, key: Key) -> Version:
        return self._entries[key].version
