"""Integration tests: the full experimental column of Figure 2."""

from __future__ import annotations

import pytest

from repro.core.deplist import UNBOUNDED
from repro.core.strategies import Strategy
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.runner import build_column, run_column
from repro.workloads.synthetic import PerfectClusterWorkload, UniformWorkload

WORKLOAD = PerfectClusterWorkload(n_objects=200, cluster_size=5)


def quick_config(**overrides) -> ColumnConfig:
    defaults = dict(seed=42, duration=6.0, warmup=2.0)
    defaults.update(overrides)
    return ColumnConfig(**defaults)


class TestEndToEnd:
    def test_column_runs_and_produces_traffic(self) -> None:
        result = run_column(quick_config(), WORKLOAD)
        assert result.counts.total > 1000
        assert result.db_stats.committed > 300
        assert result.channel_stats.sent > 1000
        assert result.cache_stats.reads > 5000

    def test_invalidation_loss_matches_configuration(self) -> None:
        result = run_column(quick_config(invalidation_loss=0.2), WORKLOAD)
        assert result.channel_stats.loss_ratio == pytest.approx(0.2, abs=0.03)

    def test_no_loss_no_latency_yields_few_inconsistencies(self) -> None:
        result = run_column(
            quick_config(invalidation_loss=0.0, invalidation_latency_mean=0.0001),
            WORKLOAD,
        )
        # Tiny staleness windows remain (commit -> invalidation delivery),
        # but inconsistency should be an order of magnitude below the lossy
        # setting's.
        lossy = run_column(quick_config(deplist_max=0), WORKLOAD)
        clean_ratio = result.counts.inconsistency_ratio
        assert clean_ratio < lossy.counts.inconsistency_ratio / 3

    def test_total_loss_freezes_a_stale_snapshot(self) -> None:
        """With every invalidation dropped the cache freezes at first-read
        versions — an *old* snapshot. Mixed first-read times still leave a
        solid inconsistency floor, but far below the lossy-and-repaired
        regime because a frozen snapshot is mostly internally consistent."""
        result = run_column(
            quick_config(invalidation_loss=1.0, deplist_max=0), WORKLOAD
        )
        assert result.counts.inconsistency_ratio > 0.05
        assert result.cache_stats.invalidations_received == 0
        # Every cached object is behind the database.
        assert result.counts.inconsistent > 0

    def test_perfect_clustering_with_k5_detects_everything(self) -> None:
        """The §V-A claim: with stable clusters matching the dependency
        list bound, detection converges to perfect."""
        result = run_column(quick_config(deplist_max=5), WORKLOAD)
        assert result.counts.inconsistent == 0
        assert result.counts.aborted_necessary > 0

    def test_unbounded_lists_commit_no_inconsistency(self) -> None:
        result = run_column(quick_config(deplist_max=UNBOUNDED), UniformWorkload(150))
        assert result.counts.inconsistent == 0

    def test_deplist_zero_disables_dependency_detection(self) -> None:
        """Without stored dependencies only *direct* violations remain
        detectable: re-reading a key the transaction already read at a
        different version. All cross-object inconsistencies slip through."""
        result = run_column(quick_config(deplist_max=0), WORKLOAD)
        with_deps = run_column(quick_config(deplist_max=5), WORKLOAD)
        assert result.detections_eq2 == 0  # Eq. 2 needs dependency entries
        assert result.counts.inconsistent > 0
        detections = result.detections_eq1 + result.detections_eq2
        assert detections < (with_deps.detections_eq1 + with_deps.detections_eq2) / 5

    def test_determinism_same_seed_same_counts(self) -> None:
        first = run_column(quick_config(), WORKLOAD)
        second = run_column(quick_config(), WORKLOAD)
        assert first.counts.as_dict() == second.counts.as_dict()
        assert first.cache_stats.reads == second.cache_stats.reads
        assert first.db_stats.committed == second.db_stats.committed

    def test_different_seeds_differ(self) -> None:
        first = run_column(quick_config(seed=1), WORKLOAD)
        second = run_column(quick_config(seed=2), WORKLOAD)
        assert first.cache_stats.reads != second.cache_stats.reads


class TestCacheKinds:
    def test_plain_cache_never_aborts(self) -> None:
        result = run_column(quick_config(cache_kind=CacheKind.PLAIN), WORKLOAD)
        assert result.counts.aborted == 0
        assert result.counts.inconsistent > 0

    def test_ttl_cache_reduces_staleness_at_db_cost(self) -> None:
        plain = run_column(quick_config(cache_kind=CacheKind.PLAIN), WORKLOAD)
        ttl = run_column(
            quick_config(cache_kind=CacheKind.TTL, ttl=0.5), WORKLOAD
        )
        assert ttl.counts.inconsistency_ratio < plain.counts.inconsistency_ratio
        assert ttl.cache_stats.db_accesses > plain.cache_stats.db_accesses
        assert ttl.hit_ratio < plain.hit_ratio

    def test_tcache_dominates_ttl(self) -> None:
        """The paper's headline comparison: T-Cache achieves a better
        inconsistency/DB-load trade-off than any TTL."""
        tcache = run_column(
            quick_config(deplist_max=5, strategy=Strategy.RETRY), WORKLOAD
        )
        ttl = run_column(quick_config(cache_kind=CacheKind.TTL, ttl=0.5), WORKLOAD)
        assert tcache.counts.inconsistency_ratio < ttl.counts.inconsistency_ratio
        assert tcache.cache_stats.db_accesses < ttl.cache_stats.db_accesses


class TestMonitorAgreement:
    def test_monitor_counts_match_client_counts(self) -> None:
        column = build_column(quick_config(), WORKLOAD)
        column.sim.run(until=column.config.total_time)
        monitor_counts = column.monitor.summary.read_only
        assert monitor_counts.committed == column.cache.stats.transactions_committed
        assert monitor_counts.aborted == column.cache.stats.transactions_aborted
        assert column.monitor.summary.update_commits == column.database.stats.committed

    def test_update_history_is_a_dag(self) -> None:
        column = build_column(quick_config(duration=4.0), WORKLOAD)
        column.sim.run(until=column.config.total_time)
        assert column.monitor.tester.verify_update_dag()

    def test_cache_versions_never_exceed_database(self) -> None:
        column = build_column(quick_config(duration=4.0), WORKLOAD)
        column.sim.run(until=column.config.total_time)
        database = column.database
        for key in WORKLOAD.all_keys():
            cached = column.cache.storage.version_of(key)
            if cached is not None:
                assert cached <= database.current_version_of(key)


class TestTwoCaches:
    def test_independent_caches_share_one_database(self) -> None:
        """Cache-serializability is per cache server; two caches coexist
        against one backend (§IV: each cache has its own clients)."""
        import itertools

        from repro.clients.read_client import ReadOnlyClient
        from repro.core.tcache import TCache
        from repro.monitor.monitor import ConsistencyMonitor
        from repro.sim.channel import Channel
        from repro.sim.rng import RngStreams

        column = build_column(quick_config(duration=4.0), WORKLOAD)
        streams = RngStreams(999)
        second_cache = TCache(column.sim, column.database, name="edge-2")
        channel = Channel(
            column.sim,
            second_cache.handle_invalidation,
            latency=0.02,
            loss_probability=0.2,
            rng=streams.stream("second-channel"),
        )
        column.database.register_invalidation_channel(channel)
        second_monitor = ConsistencyMonitor(column.sim)
        column.database.add_commit_listener(second_monitor.record_update)
        second_cache.add_transaction_listener(second_monitor.record_read_only)
        ReadOnlyClient(
            column.sim,
            second_cache,
            WORKLOAD,
            rate=200.0,
            rng=streams.stream("second-client"),
            txn_ids=itertools.count(10_000_000),
        )
        column.sim.run(until=column.config.total_time)
        assert second_cache.stats.transactions_committed > 100
        assert column.cache.stats.transactions_committed > 100
        # Both monitors observed a serializable update history.
        assert second_monitor.tester.verify_update_dag()
