"""Integration tests for cross-host dispatch.

The load-bearing property (the PR's acceptance bar): a sweep executed via
coordinator + workers — including runs where a worker is killed mid-chunk —
produces a ``SweepResult.to_artifact()`` byte-identical to
``run_sweep(spec, jobs=1)``, modulo the two run-metadata fields (``jobs``,
``wall_clock_seconds``) that describe the executor rather than the results.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import replace

import pytest

from repro.dispatch import Coordinator, DispatchSpec, FaultPlan, run_worker
from repro.dispatch.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.errors import ConfigurationError, DispatchError
from repro.experiments.config import ColumnConfig
from repro.experiments.report import normalized_artifact
from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed, run_sweep
from repro.scenario.library import heterogeneous_loss_fleet, region_failure_drill
from repro.workloads.synthetic import PerfectClusterWorkload


def small_spec(n_columns: int = 4, *, scenario: bool = True) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=80, cluster_size=5)
    config = ColumnConfig(seed=1, duration=0.8, warmup=0.3)
    points = [
        SweepPoint(
            label=f"col{index}",
            config=replace(config, seed=derive_seed(1, index)),
            workload=workload,
            params={"index": index},
        )
        for index in range(n_columns)
    ]
    if scenario:
        points.append(
            SweepPoint(
                label="fleet",
                scenario=heterogeneous_loss_fleet(
                    edges=2, n_objects=80, duration=0.8, warmup=0.3
                ),
            )
        )
        points.append(
            SweepPoint(
                label="drill",
                scenario=region_failure_drill(
                    regions=2, objects_per_region=60, duration=0.8, warmup=0.3
                ),
            )
        )
    return SweepSpec(name="dispatch-spec", root_seed=1, points=points)


def comparable_artifact(result) -> str:
    # The executor's identity is allowed to differ; the results are not.
    return normalized_artifact(result)


def serve_with_worker_threads(
    spec: SweepSpec, dispatch: DispatchSpec, n_workers: int
):
    coordinator = Coordinator(spec, dispatch)
    host, port = coordinator.address
    threads = [
        threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"name": f"w{index}"},
            daemon=True,
        )
        for index in range(n_workers)
    ]
    for thread in threads:
        thread.start()
    result = coordinator.serve()
    for thread in threads:
        thread.join(timeout=15)
    return coordinator, result


class TestDispatchEquivalence:
    def test_two_workers_byte_identical_to_serial(self) -> None:
        spec = small_spec()
        serial = run_sweep(spec, jobs=1)
        coordinator, dispatched = serve_with_worker_threads(
            spec,
            DispatchSpec(chunk_size=2, lease_timeout=20.0, poll_interval=0.05),
            n_workers=2,
        )
        assert comparable_artifact(dispatched) == comparable_artifact(serial)
        assert dispatched.jobs == 2  # both workers participated
        assert coordinator.queue.stats.chunks_reassigned == 0

    def test_run_sweep_dispatch_argument(self) -> None:
        """``run_sweep(spec, dispatch=...)`` is the same executor behind the
        library API: workers dial the fixed port while the sweep serves."""
        spec = small_spec(2, scenario=False)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        def patient_worker(index: int) -> None:
            # Workers retry the connect until run_sweep's coordinator binds
            # the port, so starting them first is fine; if the other worker
            # drains the whole sweep before this one ever connects, the
            # coordinator being gone is a normal outcome, not a failure.
            try:
                run_worker(
                    "127.0.0.1", port, name=f"w{index}", connect_timeout=20.0
                )
            except DispatchError:
                pass

        workers = [
            threading.Thread(target=patient_worker, args=(index,), daemon=True)
            for index in range(2)
        ]
        for worker in workers:
            worker.start()
        dispatched = run_sweep(
            spec,
            dispatch=DispatchSpec(port=port, chunk_size=1, poll_interval=0.05),
        )
        for worker in workers:
            worker.join(timeout=15)
        serial = run_sweep(spec, jobs=1)
        assert comparable_artifact(dispatched) == comparable_artifact(serial)

    def test_non_portable_point_rejected_before_serving(self) -> None:
        class OpaqueWorkload:
            def access_set(self, rng, now):  # pragma: no cover - never runs
                return []

            def all_keys(self):
                return ["o%06d" % i for i in range(10)]

        spec = SweepSpec(
            name="opaque",
            points=[
                SweepPoint(
                    label="bad",
                    config=ColumnConfig(seed=1, duration=1.0),
                    workload=OpaqueWorkload(),
                )
            ],
        )
        with pytest.raises(ConfigurationError, match="portable"):
            Coordinator(spec, DispatchSpec())

    def test_empty_sweep_completes_without_workers(self) -> None:
        coordinator = Coordinator(
            SweepSpec(name="empty", points=[]), DispatchSpec(poll_interval=0.05)
        )
        result = coordinator.serve()
        assert result.results == []


class TestWorkerFailure:
    def test_sigkilled_worker_mid_chunk_is_reassigned(self) -> None:
        """A worker is SIGKILLed while holding a part-finished chunk: the
        coordinator must keep its streamed result, re-queue the rest, and
        the final artifact must stay byte-identical to the serial run."""
        spec = small_spec(6, scenario=False)
        serial = run_sweep(spec, jobs=1)

        coordinator = Coordinator(
            spec,
            # lease_timeout is deliberately long: recovery in this test must
            # come from the connection-loss path, not the lease clock.
            DispatchSpec(chunk_size=3, lease_timeout=120.0, poll_interval=0.05),
        )
        coordinator.start()  # accept connections while we stage the drill
        host, port = coordinator.address
        # The victim executes one point of its three-point chunk, then goes
        # silent (still connected, heartbeats suppressed) — a deterministic
        # "mid-chunk" state for the SIGKILL below.
        victim = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "worker",
                "--connect",
                f"{host}:{port}",
                "--fault",
                "stall:1:300",
                "--worker-name",
                "victim",
            ],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            deadline = time.monotonic() + 60.0
            while coordinator.queue.completed < 1:
                assert time.monotonic() < deadline, "victim made no progress"
                assert victim.poll() is None, "victim died prematurely"
                time.sleep(0.05)
            completed_before_kill = coordinator.queue.completed
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)

            rescuer = threading.Thread(
                target=run_worker,
                args=(host, port),
                kwargs={"name": "rescuer"},
                daemon=True,
            )
            rescuer.start()
            dispatched = coordinator.serve()
            rescuer.join(timeout=30)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup on failure
                victim.kill()

        assert comparable_artifact(dispatched) == comparable_artifact(serial)
        # The victim's streamed results were kept, not re-run...
        assert completed_before_kill >= 1
        # ...and its unfinished lease really was reassigned.
        assert coordinator.queue.stats.chunks_reassigned >= 1

    def test_stalled_worker_loses_lease_to_timeout(self) -> None:
        """A connected-but-silent worker holds a lease past the timeout:
        the serve loop's expiry sweep must hand its chunk to a live worker
        without waiting for the connection to die."""
        spec = small_spec(3, scenario=False)
        serial = run_sweep(spec, jobs=1)
        coordinator = Coordinator(
            spec,
            DispatchSpec(chunk_size=3, lease_timeout=1.0, poll_interval=0.1),
        )
        coordinator.start()  # the zombie handshakes before the serve loop
        host, port = coordinator.address

        # A protocol-level zombie: says hello, takes the whole sweep as one
        # chunk, then never speaks again (but keeps the socket open).
        zombie = socket.create_connection((host, port))
        send_frame(
            zombie,
            {"type": "hello", "worker": "zombie", "protocol": PROTOCOL_VERSION},
        )
        assert recv_frame(zombie)["type"] == "welcome"
        send_frame(zombie, {"type": "request"})
        chunk = recv_frame(zombie)
        assert chunk["type"] == "chunk" and len(chunk["points"]) == 3

        rescuer = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"name": "rescuer"},
            daemon=True,
        )
        rescuer.start()
        dispatched = coordinator.serve()
        rescuer.join(timeout=30)
        zombie.close()

        assert comparable_artifact(dispatched) == comparable_artifact(serial)
        assert coordinator.queue.stats.leases_expired >= 1

    def test_crash_fault_plan_round_trip(self) -> None:
        """The in-process flavour of the kill drill: a worker thread using
        FaultPlan(disconnect) drops mid-chunk; a second worker finishes."""
        spec = small_spec(4, scenario=False)
        serial = run_sweep(spec, jobs=1)
        coordinator = Coordinator(
            spec,
            DispatchSpec(chunk_size=2, lease_timeout=20.0, poll_interval=0.05),
        )
        host, port = coordinator.address
        flaky = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={
                "name": "flaky",
                "faults": FaultPlan(kind="disconnect", after_points=1),
            },
            daemon=True,
        )
        steady = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"name": "steady"},
            daemon=True,
        )
        flaky.start()
        steady.start()
        dispatched = coordinator.serve()
        for thread in (flaky, steady):
            thread.join(timeout=15)
        assert comparable_artifact(dispatched) == comparable_artifact(serial)

    def test_after_points_zero_dies_before_any_work(self) -> None:
        """``disconnect:0`` is the connect-then-die drill: the worker takes
        a chunk and drops it untouched; another worker must finish."""
        spec = small_spec(2, scenario=False)
        serial = run_sweep(spec, jobs=1)
        coordinator = Coordinator(
            spec,
            DispatchSpec(chunk_size=2, lease_timeout=20.0, poll_interval=0.05),
        )
        coordinator.start()  # the drone handshakes before the serve loop
        host, port = coordinator.address
        stats_box: dict[str, object] = {}

        def useless_worker() -> None:
            stats_box["stats"] = run_worker(
                host,
                port,
                name="useless",
                faults=FaultPlan(kind="disconnect", after_points=0),
            )

        useless = threading.Thread(target=useless_worker, daemon=True)
        useless.start()
        useless.join(timeout=15)
        assert stats_box["stats"].points_executed == 0

        steady = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"name": "steady"},
            daemon=True,
        )
        steady.start()
        dispatched = coordinator.serve()
        steady.join(timeout=15)
        assert comparable_artifact(dispatched) == comparable_artifact(serial)


class TestProtocolPolicing:
    def test_version_mismatch_refused_at_hello(self) -> None:
        spec = small_spec(1, scenario=False)
        coordinator = Coordinator(spec, DispatchSpec(poll_interval=0.05))
        coordinator.start()
        host, port = coordinator.address
        try:
            sock = socket.create_connection((host, port))
            send_frame(
                sock, {"type": "hello", "worker": "old", "protocol": -1}
            )
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "version" in reply["message"]
            sock.close()
        finally:
            coordinator.shutdown()

    def test_garbage_first_frame_gets_error_not_hang(self) -> None:
        spec = small_spec(1, scenario=False)
        coordinator = Coordinator(spec, DispatchSpec(poll_interval=0.05))
        coordinator.start()
        host, port = coordinator.address
        try:
            sock = socket.create_connection((host, port))
            sock.sendall(b"\x00\x00\x00\x03[1]")
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            sock.close()
        finally:
            coordinator.shutdown()
