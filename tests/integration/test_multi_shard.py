"""Integration tests: two-phase commit across multiple participants."""

from __future__ import annotations

import pytest

from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.db.wal import RecordType
from repro.monitor.sgt import SerializationGraphTester
from repro.sim.core import Simulator
from tests.conftest import commit_update


@pytest.fixture
def sharded_db(sim: Simulator) -> Database:
    db = Database(
        sim,
        DatabaseConfig(
            shards=4, deplist_max=5, timing=TimingConfig(0.0, 0.002, 0.001, 0.001)
        ),
    )
    db.load({f"k{i}": 0 for i in range(40)})
    return db


def spanning_keys(db: Database, count: int = 4) -> list[str]:
    """Keys guaranteed to touch more than one participant."""
    by_shard: dict[str, list[str]] = {}
    for i in range(40):
        key = f"k{i}"
        by_shard.setdefault(db.shard_for(key).name, []).append(key)
    shards = sorted(by_shard)
    keys = []
    for index in range(count):
        shard = shards[index % len(shards)]
        if by_shard[shard]:
            keys.append(by_shard[shard].pop(0))
    return keys


class TestCrossShardCommit:
    def test_transaction_spans_participants(self, sim, sharded_db) -> None:
        keys = spanning_keys(sharded_db)
        shards = {sharded_db.shard_for(k).name for k in keys}
        assert len(shards) > 1
        committed = commit_update(sim, sharded_db, keys)
        for key in keys:
            assert sharded_db.read_entry(key).version == committed.txn_id

    def test_every_involved_participant_logs_prepare_and_commit(
        self, sim, sharded_db
    ) -> None:
        keys = spanning_keys(sharded_db)
        commit_update(sim, sharded_db, keys)
        involved = {sharded_db.shard_for(k) for k in keys}
        for participant in involved:
            types = [r.record_type for r in participant.wal]
            assert RecordType.PREPARE in types
            assert RecordType.COMMIT in types

    def test_dependency_lists_span_shards(self, sim, sharded_db) -> None:
        keys = spanning_keys(sharded_db)
        committed = commit_update(sim, sharded_db, keys)
        entry = sharded_db.read_entry(keys[0])
        for other in keys[1:]:
            assert entry.dep_on(other) == committed.txn_id

    def test_concurrent_cross_shard_transactions_serialize(self, sim, sharded_db) -> None:
        keys = [f"k{i}" for i in range(40)]
        tester = SerializationGraphTester()
        sharded_db.add_commit_listener(tester.record_update)
        processes = []
        for start in range(0, 40, 5):
            group = keys[start : start + 5]
            processes.append(
                sharded_db.execute_update(read_keys=group, writes={k: start for k in group})
            )
        # Overlapping groups force conflicts.
        for start in range(0, 35, 5):
            group = keys[start + 2 : start + 8]
            processes.append(
                sharded_db.execute_update(read_keys=group, writes={k: -start for k in group})
            )
        sim.run()
        committed = [p for p in processes if p.ok]
        assert len(committed) >= 8  # most commit; wounds may abort a few
        assert tester.verify_update_dag()


class TestCrossShardAbort:
    def test_one_crashed_participant_aborts_everywhere(self, sim, sharded_db) -> None:
        keys = spanning_keys(sharded_db)
        victim = sharded_db.shard_for(keys[0])
        survivor = sharded_db.shard_for(keys[1])
        assert victim is not survivor
        process = sharded_db.execute_update(
            read_keys=keys, writes={k: "doomed" for k in keys}
        )
        victim.crash()
        sim.run()
        assert process.triggered and not process.ok
        # The surviving participant must not have installed anything.
        assert sharded_db.shard_for(keys[1]).store.get(keys[1]).version == 0
        types = [r.record_type for r in survivor.wal if r.txn_id == 1]
        assert RecordType.COMMIT not in types

    def test_recovery_resolves_in_doubt_against_coordinator(self, sim, sharded_db) -> None:
        keys = spanning_keys(sharded_db)
        commit_update(sim, sharded_db, keys, value="pre-crash")
        victim = sharded_db.shard_for(keys[0])
        victim.crash()
        resolutions = victim.recover(sharded_db.coordinator.decisions)
        # The committed transaction is decided; nothing is in doubt.
        assert resolutions == {}
        assert victim.store.get(keys[0]).value == "pre-crash"
