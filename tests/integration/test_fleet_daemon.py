"""Integration tests for the fleet daemon: the elastic sweep-queue service.

Two load-bearing properties, mirroring the one-shot dispatch suite:

* **Byte-identity** — a sweep served through a fleet daemon (with auth and
  journaling enabled, across many named sweeps with priorities) produces a
  ``SweepResult.to_artifact()`` byte-identical to ``run_sweep(spec,
  jobs=1)``, modulo the two executor-metadata fields.
* **Durable resume** — SIGKILL the daemon mid-sweep, restart it against
  the same journal directory, and the run completes with byte-identical
  artifacts *without re-executing* any journaled point (asserted via the
  journal line count and the daemon's per-lifetime ``executed`` counter).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import replace

import pytest

from repro.dispatch.client import FleetClient, FleetSpec, fleet_sweep_name
from repro.dispatch.daemon import FleetConfig, FleetDaemon
from repro.dispatch.journal import SweepJournal, journal_path
from repro.dispatch.worker import run_worker
from repro.errors import DispatchError
from repro.experiments.config import ColumnConfig
from repro.experiments.report import normalized_artifact
from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed, run_sweep
from repro.workloads.synthetic import PerfectClusterWorkload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
SECRET = "integration-secret"


def small_spec(
    n_columns: int = 4, *, name: str = "fleet-sweep", root_seed: int = 1
) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=80, cluster_size=5)
    config = ColumnConfig(seed=1, duration=0.8, warmup=0.3)
    return SweepSpec(
        name=name,
        root_seed=root_seed,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(root_seed, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_columns)
        ],
    )


def comparable_artifact(result) -> str:
    # The executor's identity is allowed to differ; the results are not.
    return normalized_artifact(result)


def start_worker_thread(host, port, *, name, max_idle=3.0) -> threading.Thread:
    thread = threading.Thread(
        target=run_worker,
        args=(host, port),
        kwargs={
            "name": name,
            "secret": SECRET,
            "max_idle": max_idle,
            "heartbeat_interval": 0.5,
        },
        daemon=True,
    )
    thread.start()
    return thread


class TestByteIdentity:
    def test_two_prioritised_sweeps_match_serial_runs(self, tmp_path) -> None:
        """Two named sweeps with different priorities, two workers, auth and
        journaling on: both fleet-served artifacts must match ``jobs=1``."""
        bulk = small_spec(4, name="bulk", root_seed=1)
        urgent = small_spec(3, name="urgent", root_seed=2)
        serial = {
            "bulk": comparable_artifact(run_sweep(bulk, jobs=1)),
            "urgent": comparable_artifact(run_sweep(urgent, jobs=1)),
        }

        daemon = FleetDaemon(
            FleetConfig(
                port=0,
                journal_dir=str(tmp_path),
                secret=SECRET,
                lease_timeout=30.0,
                poll_interval=0.05,
            )
        )
        daemon.start()
        sweeper = threading.Thread(target=daemon.serve_forever, daemon=True)
        sweeper.start()
        host, port = daemon.address
        try:
            workers = [
                start_worker_thread(host, port, name=f"w{i}") for i in range(2)
            ]
            results: dict[str, object] = {}

            def submit(spec: SweepSpec, priority: int) -> None:
                results[spec.name] = run_sweep(
                    spec,
                    dispatch=FleetSpec(
                        host=host,
                        port=port,
                        secret=SECRET,
                        priority=priority,
                        poll_interval=0.1,
                        wait_timeout=120.0,
                    ),
                )

            submitters = [
                threading.Thread(target=submit, args=(bulk, 0), daemon=True),
                threading.Thread(target=submit, args=(urgent, 5), daemon=True),
            ]
            for thread in submitters:
                thread.start()
            for thread in submitters:
                thread.join(timeout=150.0)
                assert not thread.is_alive(), "submitter did not finish"
            for spec in (bulk, urgent):
                assert (
                    comparable_artifact(results[spec.name]) == serial[spec.name]
                )
            # Both sweeps journaled completely: header + one line per point.
            for spec in (bulk, urgent):
                path = journal_path(str(tmp_path), fleet_sweep_name(spec))
                replayed = SweepJournal.replay(path)
                assert sorted(replayed.results) == list(range(len(spec.points)))
        finally:
            daemon.shutdown()
        for thread in workers:
            thread.join(timeout=60.0)

    def test_resubmitted_sweep_resumes_without_reexecution(self, tmp_path) -> None:
        spec = small_spec(3, name="resume")
        fleet = FleetSpec(
            host="127.0.0.1",
            port=1,  # replaced below
            secret=SECRET,
            poll_interval=0.1,
            wait_timeout=120.0,
        )
        daemon = FleetDaemon(
            FleetConfig(port=0, journal_dir=str(tmp_path), secret=SECRET)
        )
        daemon.start()
        host, port = daemon.address
        fleet.host, fleet.port = host, port
        try:
            worker = start_worker_thread(host, port, name="w0", max_idle=2.0)
            first = run_sweep(spec, dispatch=fleet)
            worker.join(timeout=60.0)
            again = run_sweep(spec, dispatch=fleet)  # no workers alive now
            assert comparable_artifact(first) == comparable_artifact(again)
            entry = daemon.queue.entry(fleet_sweep_name(spec))
            assert entry.executed == len(spec.points)  # once, not twice
        finally:
            daemon.shutdown()


class TestCancelLifecycle:
    def test_cancel_then_identical_resubmit_revives(self) -> None:
        spec = small_spec(3, name="cancelme")
        daemon = FleetDaemon(FleetConfig(port=0, secret=SECRET))
        daemon.start()
        host, port = daemon.address
        try:
            client = FleetClient(host, port, secret=SECRET)
            name = fleet_sweep_name(spec)
            submitted = client.submit(spec, name=name)
            assert submitted["created"] and submitted["state"] == "running"
            assert client.fetch(name)["type"] == "pending"
            assert client.cancel(name)["existed"]
            (row,) = client.status(name)["sweeps"]
            assert row["state"] == "cancelled"
            revived = client.submit(spec, name=name)
            assert not revived["created"]
            assert revived["state"] == "running"
            with pytest.raises(DispatchError):
                client.fetch("never-submitted")
        finally:
            daemon.shutdown()


class TestKillRestartDrill:
    def test_sigkilled_daemon_resumes_from_journal(self, tmp_path) -> None:
        """SIGKILL the daemon subprocess mid-sweep; restart it on the same
        port against the same journal. The sweep must complete byte-identical
        to ``jobs=1`` and journaled points must provably not re-execute."""
        spec = small_spec(6, name="drill")
        serial = comparable_artifact(run_sweep(spec, jobs=1))
        journal_dir = tmp_path / "journals"
        env = {
            **os.environ,
            "PYTHONPATH": "src",
            "REPRO_FLEET_SECRET": SECRET,
        }

        def spawn_daemon(port: int) -> subprocess.Popen:
            return subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.experiments",
                    "fleet",
                    "serve",
                    "--host",
                    "127.0.0.1",
                    "--port",
                    str(port),
                    "--journal-dir",
                    str(journal_dir),
                    "--lease-timeout",
                    "20",
                ],
                env=env,
                cwd=REPO_ROOT,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )

        # Bind-and-release to pick a port the daemon can then claim; the
        # daemon sets SO_REUSEADDR so the restart can rebind it immediately.
        import socket as socketlib

        with socketlib.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        daemon = spawn_daemon(port)
        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "worker",
                "--connect",
                f"127.0.0.1:{port}",
                "--max-idle",
                "8",
                "--connect-timeout",
                "60",
                "--worker-name",
                "survivor",
            ],
            env=env,
            cwd=REPO_ROOT,
        )
        fleet = FleetSpec(
            host="127.0.0.1",
            port=port,
            secret=SECRET,
            poll_interval=0.2,
            connect_timeout=60.0,
            wait_timeout=240.0,
        )
        name = fleet_sweep_name(spec)
        path = journal_path(str(journal_dir), name)
        result_box: dict[str, object] = {}

        def submit() -> None:
            # run_fleet_sweep's fresh-connection-per-operation contract is
            # what lets this thread ride out the daemon's death unharmed.
            result_box["result"] = run_sweep(spec, dispatch=fleet)

        submitter = threading.Thread(target=submit, daemon=True)
        restarted = None
        try:
            submitter.start()

            def journaled_points() -> int:
                if not os.path.exists(path):
                    return 0
                with open(path, encoding="utf-8") as handle:
                    return sum(
                        1 for line in handle if '"kind":"point"' in line
                    )

            deadline = time.monotonic() + 120.0
            while journaled_points() < 2:
                assert time.monotonic() < deadline, "no points journaled"
                assert daemon.poll() is None, (
                    f"daemon died early:\n{daemon.stdout.read()}"
                )
                time.sleep(0.1)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=30)
            points_before_restart = journaled_points()
            assert points_before_restart >= 2
            assert points_before_restart < len(spec.points), (
                "sweep finished before the kill; drill proved nothing"
            )

            restarted = spawn_daemon(port)
            submitter.join(timeout=240.0)
            assert not submitter.is_alive(), "submitter never finished"
            assert worker.wait(timeout=120.0) == 0

            assert comparable_artifact(result_box["result"]) == serial

            # No re-execution: the journal gained exactly the missing
            # points (replay would raise on duplicate indices), and the
            # restarted daemon's own execution counter matches.
            replayed = SweepJournal.replay(path)
            assert sorted(replayed.results) == list(range(len(spec.points)))
            with open(path, encoding="utf-8") as handle:
                lines = [line for line in handle if line.strip()]
            assert len(lines) == 1 + len(spec.points)

            status = FleetClient(
                "127.0.0.1", port, secret=SECRET
            ).status(name)
            (row,) = status["sweeps"]
            assert row["resumed"] == points_before_restart
            assert row["executed"] == len(spec.points) - points_before_restart
        finally:
            for process in (daemon, restarted, worker):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=30)
