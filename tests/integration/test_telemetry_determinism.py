"""Integration tests for the telemetry spine across execution backends.

The ISSUE-9 acceptance bar: the same seeded sweep, traced, must produce a
trace JSONL byte-identical modulo the wall-clock header line whether it
runs serial (``jobs=1``), multiprocess (``jobs=2``) or through a fleet
daemon — and the traced *artifact* must normalize to exactly its untraced
twin (aggregate telemetry sections ride along; raw records never change
result bytes).

Simulated runs are expensive, so the traced/untraced reference executions
are computed once per module (plain lazy caches — the runs are pure
functions of the spec) and shared across the assertions.
"""

from __future__ import annotations

import json
import threading

from repro import telemetry
from repro.dispatch.client import FleetClient, FleetSpec
from repro.dispatch.daemon import FleetConfig, FleetDaemon
from repro.dispatch.worker import run_worker
from repro.experiments import protocol_race
from repro.experiments.report import normalized_artifact
from repro.experiments.sweep import run_sweep
from repro.telemetry import (
    normalized_trace_lines,
    trace_jsonl_lines,
    validate_telemetry,
)

SECRET = "telemetry-secret"
DURATION = 1.0
#: The paper's detector plus the strongest competitor: one protocol with
#: wound aborts (locking) and one with SGT checks, so the trace exercises
#: the protocol category from two different decision paths.
PROTOCOLS = ("tcache-detector", "locking")

_CACHE: dict[str, object] = {}


def race_spec():
    return protocol_race.spec(protocols=PROTOCOLS, duration=DURATION, seed=11)


def traced_run(key: str, jobs: int):
    """One traced execution per (key) for the whole module."""
    if key not in _CACHE:
        telemetry.enable()
        try:
            _CACHE[key] = run_sweep(race_spec(), jobs=jobs)
        finally:
            telemetry.disable()
    return _CACHE[key]


def untraced_run():
    if "untraced" not in _CACHE:
        assert not telemetry.enabled()
        _CACHE["untraced"] = run_sweep(race_spec(), jobs=1)
    return _CACHE["untraced"]


def trace_of(sweep) -> list[str]:
    return normalized_trace_lines(trace_jsonl_lines([sweep]))


def fleet_run(tmp_path_factory):
    """One traced fleet-served execution, its daemon left journaled."""
    if "fleet" not in _CACHE:
        journal_dir = str(tmp_path_factory.mktemp("telemetry-journals"))
        daemon = FleetDaemon(
            FleetConfig(port=0, journal_dir=journal_dir, secret=SECRET)
        )
        daemon.start()
        telemetry.enable()
        try:
            host, port = daemon.address
            worker = threading.Thread(
                target=run_worker,
                args=(host, port),
                kwargs={"secret": SECRET, "max_idle": 2.0},
                daemon=True,
            )
            worker.start()
            result = run_sweep(
                race_spec(),
                dispatch=FleetSpec(
                    host=host,
                    port=port,
                    secret=SECRET,
                    poll_interval=0.2,
                    wait_timeout=300.0,
                ),
            )
            worker.join(timeout=30.0)
        finally:
            telemetry.disable()
            daemon.shutdown()
        _CACHE["fleet"] = (result, journal_dir)
    return _CACHE["fleet"]


class TestTraceDeterminism:
    def test_trace_identical_across_serial_parallel_fleet(
        self, tmp_path_factory
    ):
        serial = traced_run("serial", jobs=1)
        parallel = traced_run("parallel", jobs=2)
        fleet, _journal_dir = fleet_run(tmp_path_factory)

        reference = trace_of(serial)
        assert len(reference) > len(race_spec().points)  # header + records
        assert trace_of(parallel) == reference
        assert trace_of(fleet) == reference

        # Only the header line may differ before normalization.
        raw_serial = trace_jsonl_lines([serial])
        raw_parallel = trace_jsonl_lines([parallel])
        assert raw_serial[1:] == raw_parallel[1:]

    def test_rerun_is_byte_identical_including_order(self):
        assert trace_of(traced_run("rerun", jobs=1)) == trace_of(
            traced_run("serial", jobs=1)
        )


class TestTelemetrySections:
    def test_traced_results_carry_valid_sections(self):
        sweep = traced_run("serial", jobs=1)
        assert sweep.results
        for result in sweep.results:
            validate_telemetry(result.telemetry)
            counters = result.telemetry["counters"]
            # Kernel and cache instrumentation always fire.
            assert counters["sim.events_dispatched"] > 0
            assert "cache.hits" in counters or "cache.misses" in counters
        # The sweep artifact embeds one section per point (scenario points
        # nest theirs inside the scenario result payload).
        artifact = sweep.to_artifact()
        assert json.dumps(artifact).count('"repro.telemetry/1"') == len(
            sweep.results
        )

    def test_core_events_reach_the_trace(self):
        lines = trace_jsonl_lines([traced_run("serial", jobs=1)])
        names = {json.loads(line)["name"] for line in lines[1:]}
        # Kernel dispatch, cache serves, channel deliveries and the
        # monitor's SGT verdicts are all first-class trace events.
        assert {"dispatch", "serve", "deliver", "check"} <= names

    def test_untraced_results_stay_bare(self):
        sweep = untraced_run()
        for result in sweep.results:
            assert result.telemetry is None
            assert result.trace is None
        assert "telemetry" not in json.dumps(sweep.to_artifact())


class TestArtifactByteIdentity:
    def test_traced_artifact_normalizes_to_untraced(self):
        assert normalized_artifact(
            traced_run("serial", jobs=1)
        ) == normalized_artifact(untraced_run())

    def test_race_payload_merges_telemetry(self):
        telemetry.enable()
        try:
            _rows, _ranking, payload = protocol_race.run(
                protocols=PROTOCOLS, duration=DURATION, seed=11, jobs=1
            )
        finally:
            telemetry.disable()
        assert set(payload["telemetry"]) == {
            point.label for point in race_spec().points
        }
        for section in payload["telemetry"].values():
            validate_telemetry(section)
        protocol_race.validate_artifact(payload)
        _rows, _ranking, untraced = protocol_race.run(
            protocols=PROTOCOLS, duration=DURATION, seed=11, jobs=1
        )
        assert "telemetry" not in untraced
        assert normalized_artifact(payload) == normalized_artifact(untraced)


class TestFleetMetricsVerb:
    def test_daemon_serves_live_metrics(self, tmp_path_factory):
        _result, journal_dir = fleet_run(tmp_path_factory)
        # fleet_run shut its daemon down; ask a fresh one restored from the
        # same journals, the way an operator polling a long-lived daemon
        # would — its lifetime counters restart, its sweep gauges resume.
        daemon = FleetDaemon(
            FleetConfig(port=0, journal_dir=journal_dir, secret=SECRET)
        )
        daemon.start()
        try:
            host, port = daemon.address
            client = FleetClient(host, port, secret=SECRET)
            reply = client.metrics()
            assert reply["type"] == "metrics_report"
            section = validate_telemetry(reply["telemetry"])
            counters = section["counters"]
            gauges = section["gauges"]
            for name in (
                "daemon.connections",
                "daemon.submissions",
                "daemon.results_accepted",
                "queue.leases_requeued",
            ):
                assert name in counters
            assert gauges["daemon.uptime_seconds"] > 0.0
            sweep_gauges = {
                name for name in gauges if name.startswith("sweep.")
            }
            assert any(name.endswith(".completed") for name in sweep_gauges)
            assert any(
                name.endswith(".throughput_points_per_sec")
                for name in sweep_gauges
            )
            # Everything journaled, nothing in flight: lag is exactly zero.
            lags = [
                gauges[name]
                for name in sweep_gauges
                if name.endswith(".journal_lag")
            ]
            assert lags and all(lag == 0 for lag in lags)
        finally:
            daemon.shutdown()
