"""Integration tests: failure injection on the invalidation path and the
database, and the anti-dependency boundary of Theorem 1."""

from __future__ import annotations

import pytest

from repro.core.deplist import UNBOUNDED
from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.monitor.sgt import SerializationGraphTester
from repro.sim.core import Simulator
from tests.conftest import commit_update


@pytest.fixture
def db(sim: Simulator) -> Database:
    database = Database(
        sim, DatabaseConfig(deplist_max=UNBOUNDED, timing=TimingConfig(0, 0, 0, 0))
    )
    database.load({key: 0 for key in ("o1", "o2", "m", "x")})
    return database


class TestInvalidationPathologies:
    def test_reordered_invalidations_do_not_resurrect_stale_data(self, sim, db) -> None:
        cache = TCache(sim, db)
        tx1 = commit_update(sim, db, ["x"])
        tx2 = commit_update(sim, db, ["x"])
        cache.read(1, "x", last_op=True)  # caches x@tx2
        # The old invalidation arrives late (out of order): must be a no-op.
        from repro.db.invalidation import InvalidationRecord

        cache.handle_invalidation(
            InvalidationRecord(key="x", version=tx1.txn_id, txn_id=tx1.txn_id, commit_time=0.0)
        )
        assert cache.storage.version_of("x") == tx2.txn_id
        assert cache.stats.invalidations_ignored == 1

    def test_duplicate_invalidations_are_idempotent(self, sim, db) -> None:
        cache = TCache(sim, db)
        tx = commit_update(sim, db, ["x"])
        cache.read(1, "x", last_op=True)
        from repro.db.invalidation import InvalidationRecord

        record = InvalidationRecord(
            key="x", version=tx.txn_id + 100, txn_id=tx.txn_id + 100, commit_time=0.0
        )
        cache.handle_invalidation(record)
        cache.handle_invalidation(record)
        assert cache.stats.invalidations_applied == 1
        assert cache.stats.invalidations_ignored == 1


class TestTheorem1Boundary:
    """Theorem 1 holds for the paper's transaction model, where an update
    transaction *writes every object it touches* (§III-A: a transaction
    "updates both their versions and their dependency lists"). With partial
    write sets, anti-dependency (read-write) edges leave no trace in any
    dependency list, and even unbounded T-Cache can miss a genuine
    inconsistency. These tests pin down both sides of that boundary.
    """

    def test_write_all_discipline_detects_the_chain(self, sim, db) -> None:
        cache = TCache(sim, db, strategy=Strategy.ABORT)
        cache.read(100, "o2", last_op=True)            # caches o2@0
        commit_update(sim, db, ["o2", "m"])            # U2 writes both
        commit_update(sim, db, ["m"])                  # U3 overwrites m
        commit_update(sim, db, ["m", "o1"])            # U1 reads m, writes o1
        # No invalidations were delivered (none registered): o2 stale.
        cache.read(1, "o1")
        from repro.errors import InconsistencyDetected

        with pytest.raises(InconsistencyDetected):
            cache.read(1, "o2", last_op=True)

    def test_partial_writes_evade_unbounded_tcache(self, sim, db) -> None:
        """The documented divergence: U2 reads m but does not write it, so
        the RW edge U2 -> U3 never enters a dependency list; the monitor's
        full serialization-graph test still catches the cycle."""
        cache = TCache(sim, db, strategy=Strategy.ABORT)
        tester = SerializationGraphTester()
        db.add_commit_listener(tester.record_update)

        cache.read(100, "o2", last_op=True)  # caches o2@0
        # U2: reads {o2, m}, writes only o2.
        commit_update(sim, db, ["o2", "m"], write_keys=["o2"])
        # U3: overwrites m (RW edge U2 -> U3, invisible to dep lists).
        commit_update(sim, db, ["m"])
        # U1: reads m, writes o1 (WR edge U3 -> U1).
        commit_update(sim, db, ["m", "o1"], write_keys=["o1"])

        cache.read(1, "o1")
        result = cache.read(1, "o2", last_op=True)  # T-Cache lets it through
        assert result.version == 0
        assert cache.stats.transactions_committed >= 1
        # ... but the read set is genuinely non-serializable.
        assert not tester.is_consistent(
            {"o1": db.current_version_of("o1"), "o2": 0}
        )


class TestDatabaseFailureRecovery:
    def test_crash_between_prepare_and_commit_recovers_committed(self, sim) -> None:
        """A participant that crashes after voting YES learns the commit
        decision from the coordinator on recovery (in-doubt resolution)."""
        timing = TimingConfig(0.0, 0.0, 0.0, 0.05)  # long decision window
        database = Database(sim, DatabaseConfig(timing=timing))
        database.load({"a": 0})
        process = database.execute_update(read_keys=["a"], writes={"a": "decided"})
        # Run until the decision is logged but before commit delivery.
        sim.run(until=0.01)
        participant = database.participants[0]
        assert database.coordinator.decisions.get(1) is True
        in_doubt = participant.wal.prepared_undecided()
        assert set(in_doubt) == {1}
        participant.crash()
        resolutions = participant.recover(database.coordinator.decisions)
        assert "in-doubt" in resolutions[1]
        installed = participant.complete_recovered_commit(
            1, version=1, deps_per_key={"a": __import__("repro.core.deplist", fromlist=["DependencyList"]).DependencyList()}
        )
        assert installed[0].value == "decided"

    def test_post_recovery_database_serves_reads(self, sim) -> None:
        database = Database(sim, DatabaseConfig(timing=TimingConfig(0, 0, 0, 0)))
        database.load({"a": 0})
        commit_update(sim, database, ["a"], value="v1")
        participant = database.participants[0]
        participant.crash()
        participant.recover(database.coordinator.decisions)
        assert database.read_entry("a").value == "v1"
        commit_update(sim, database, ["a"], value="v2")
        assert database.read_entry("a").value == "v2"
