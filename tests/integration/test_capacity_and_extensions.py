"""Integration tests: capacity-bounded caches and the §VII extensions."""

from __future__ import annotations

import pytest

from repro.core.deplist import UNBOUNDED
from repro.core.strategies import Strategy
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.runner import run_column
from repro.workloads.synthetic import ParetoClusterWorkload, PerfectClusterWorkload

WORKLOAD = PerfectClusterWorkload(n_objects=200, cluster_size=5)


class TestCapacityEviction:
    def test_evictions_cause_no_new_inconsistencies(self) -> None:
        """§IV: "Had we modeled [capacity evictions], evictions would reduce
        the cache hit rate, but could not cause new inconsistencies."

        With unbounded dependency lists, zero inconsistent commits must
        survive a capacity squeeze — eviction only replaces stale entries
        with fresh reads.
        """
        config = ColumnConfig(
            seed=5, duration=6.0, warmup=2.0,
            deplist_max=UNBOUNDED, cache_capacity=50,
        )
        result = run_column(config, WORKLOAD)
        assert result.counts.inconsistent == 0
        assert result.cache_stats.capacity_evictions > 0

    def test_capacity_squeeze_reduces_hit_ratio(self) -> None:
        tight = run_column(
            ColumnConfig(seed=5, duration=5.0, warmup=2.0, cache_capacity=40),
            WORKLOAD,
        )
        roomy = run_column(
            ColumnConfig(seed=5, duration=5.0, warmup=2.0, cache_capacity=None),
            WORKLOAD,
        )
        assert tight.hit_ratio < roomy.hit_ratio
        assert tight.cache_stats.capacity_evictions > 0
        assert roomy.cache_stats.capacity_evictions == 0

    def test_tight_capacity_lowers_inconsistency(self) -> None:
        """Churn doubles as crude staleness control (fewer long-lived
        entries), at the cost of backend load — the same trade as TTL."""
        tight = run_column(
            ColumnConfig(seed=6, duration=5.0, warmup=2.0, deplist_max=0,
                         cache_capacity=40),
            WORKLOAD,
        )
        roomy = run_column(
            ColumnConfig(seed=6, duration=5.0, warmup=2.0, deplist_max=0),
            WORKLOAD,
        )
        assert tight.counts.inconsistency_ratio <= roomy.counts.inconsistency_ratio
        assert tight.cache_stats.db_accesses > roomy.cache_stats.db_accesses


class TestMultiversionColumn:
    def test_multiversion_cuts_aborts_end_to_end(self) -> None:
        workload = ParetoClusterWorkload(n_objects=400, cluster_size=5, alpha=1.0)
        base = ColumnConfig(seed=9, duration=6.0, warmup=2.0, deplist_max=3)
        retry = run_column(
            ColumnConfig(seed=9, duration=6.0, warmup=2.0, deplist_max=3,
                         strategy=Strategy.RETRY),
            workload,
        )
        multi = run_column(
            ColumnConfig(seed=9, duration=6.0, warmup=2.0, deplist_max=3,
                         cache_kind=CacheKind.MULTIVERSION),
            workload,
        )
        assert multi.counts.abort_ratio < retry.counts.abort_ratio
        assert multi.counts.committed > 0


class TestPruningPolicyColumn:
    @pytest.mark.slow
    def test_lru_beats_random_on_drift(self) -> None:
        from repro.workloads.synthetic import DriftingClusterWorkload

        workload = DriftingClusterWorkload(
            n_objects=500, cluster_size=5, shift_interval=8.0
        )
        results = {}
        for policy in ("lru", "random"):
            config = ColumnConfig(
                seed=12, duration=24.0, warmup=4.0, deplist_max=3,
                pruning_policy=policy,
            )
            results[policy] = run_column(config, workload)
        assert (
            results["lru"].detection_ratio
            > results["random"].detection_ratio + 0.1
        )
