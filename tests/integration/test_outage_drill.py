"""Integration test: invalidation-pipeline outage (§II pathologies).

§II lists the ways invalidations vanish in production — "due to a system
configuration change, buffer saturation, or because of races" — which are
bursty, not i.i.d. This drill cuts the invalidation channel entirely for a
window mid-run and checks the emergent dynamics:

* during the outage the cache drifts stale *coherently* (whole neighbour-
  hoods age together), so inconsistency rises only moderately;
* the inconsistency peak lands right *after* recovery, when resumed
  invalidations mix fresh values with the stale backlog;
* the consistency-unaware baseline serves that peak silently; T-Cache
  detects it, and EVICT drains the backlog visibly faster than ABORT.
"""

from __future__ import annotations

from repro.core.strategies import Strategy
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.runner import build_column
from repro.monitor.stats import ClassCounts
from repro.workloads.synthetic import ParetoClusterWorkload

WORKLOAD = ParetoClusterWorkload(n_objects=300, cluster_size=5, alpha=1.0)
OUTAGE = (8.0, 12.0)
TOTAL = 24.0

BEFORE = (0.0, OUTAGE[0])
DURING = OUTAGE
AFTER = (OUTAGE[1], OUTAGE[1] + 4.0)
TAIL = (TOTAL - 4.0, TOTAL)


def run_with_outage(**config_overrides):
    defaults = dict(seed=77, duration=TOTAL, warmup=0.0, monitor_window=2.0)
    defaults.update(config_overrides)
    column = build_column(ColumnConfig(**defaults), WORKLOAD)
    column.channel.outage(*OUTAGE)
    column.sim.run(until=TOTAL)
    return column


def window_counts(column, window: tuple[float, float]) -> ClassCounts:
    start, end = window
    counts = ClassCounts()
    for window_start, bucket in column.monitor.series.buckets():
        if start <= window_start < end:
            for label in (
                "consistent",
                "inconsistent",
                "aborted_necessary",
                "aborted_unnecessary",
            ):
                setattr(counts, label, getattr(counts, label) + getattr(bucket, label))
    return counts


class TestOutageDrill:
    def test_baseline_peak_lands_after_recovery(self) -> None:
        column = run_with_outage(cache_kind=CacheKind.PLAIN)
        before = window_counts(column, BEFORE)
        during = window_counts(column, DURING)
        after = window_counts(column, AFTER)
        assert during.aborted == 0
        # Coherent drift: the during-window rise is modest...
        assert during.inconsistency_ratio >= before.inconsistency_ratio
        # ...the real damage is the post-recovery fresh/stale mix.
        assert after.inconsistency_ratio > 1.5 * before.inconsistency_ratio
        assert after.inconsistency_ratio > during.inconsistency_ratio

    def test_tcache_caps_the_peak_the_baseline_serves(self) -> None:
        plain = run_with_outage(cache_kind=CacheKind.PLAIN)
        tcache = run_with_outage(strategy=Strategy.ABORT, deplist_max=5)
        for window in (BEFORE, DURING, AFTER, TAIL):
            assert (
                window_counts(tcache, window).inconsistency_ratio
                < window_counts(plain, window).inconsistency_ratio
            )
        after = window_counts(tcache, AFTER)
        before = window_counts(tcache, BEFORE)
        # Detection rises to meet the backlog.
        assert after.abort_ratio > before.abort_ratio

    def test_evict_drains_the_backlog_faster_than_abort(self) -> None:
        abort = run_with_outage(strategy=Strategy.ABORT, deplist_max=5)
        evict = run_with_outage(strategy=Strategy.EVICT, deplist_max=5)
        # Both peak after recovery; EVICT's tail recovers further below its
        # own peak and ends cleaner than ABORT's tail.
        abort_peak = window_counts(abort, AFTER).inconsistency_ratio
        abort_tail = window_counts(abort, TAIL).inconsistency_ratio
        evict_peak = window_counts(evict, AFTER).inconsistency_ratio
        evict_tail = window_counts(evict, TAIL).inconsistency_ratio
        assert evict_tail < 0.5 * evict_peak
        assert evict_tail < abort_tail
        assert evict.cache.stats.strategy_evictions > 0
        assert abort_peak > 0  # the drill actually stressed both runs

    def test_channel_accounting_matches_outage(self) -> None:
        column = run_with_outage(cache_kind=CacheKind.PLAIN)
        stats = column.channel.stats
        # ~20% base loss outside the window plus the 4 s total-loss window
        # (~1/6 of the run): drop ratio clearly above the base rate.
        assert stats.loss_ratio > 0.3
        assert stats.delivered > 0
