"""Integration tests for the routed backend tier.

Covers the PR's acceptance contract: a >=2-backend, >=4-edge scenario runs
deterministically under serial and parallel sweep execution (including
multi-shard backends, whose key placement must not depend on the per-process
hash salt), and its per-backend aggregates sum to the fleet totals.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.scenario import (
    BackendSpec,
    EdgeSpec,
    ScenarioSpec,
    regional_backends_scenario,
    run_scenario,
)
from repro.workloads.synthetic import PerfectClusterWorkload


def routed_fleet(*, shards: int = 2, seed: int = 29) -> ScenarioSpec:
    """2 backends (one sharded), 4 edges, heterogeneous channels."""
    return regional_backends_scenario(
        regions=2,
        edges_per_region=2,
        objects_per_region=150,
        cluster_size=5,
        shards=shards,
        duration=2.0,
        warmup=0.5,
        seed=seed,
    )


class TestRoutedTierDeterminism:
    def sweep_spec(self) -> SweepSpec:
        return SweepSpec(
            name="routed-tier-grid",
            root_seed=29,
            points=[
                SweepPoint(
                    label=f"shards={shards}",
                    scenario=routed_fleet(shards=shards, seed=29 + shards),
                    params={"shards": shards},
                )
                for shards in (1, 2, 3)
            ],
        )

    def test_serial_and_parallel_sweeps_identical_with_shards(self) -> None:
        """jobs=1 vs jobs=2 over multi-shard, multi-backend scenarios.

        This is the regression test for builtin-``hash`` shard placement:
        a salted hash gives every pool worker its own key -> shard map, so
        the parallel artifact diverges from the serial baseline.
        """
        serial = run_sweep(self.sweep_spec(), jobs=1)
        parallel = run_sweep(self.sweep_spec(), jobs=2)
        left = [result.to_artifact() for result in serial.results]
        right = [result.to_artifact() for result in parallel.results]
        assert json.dumps(left, sort_keys=True) == json.dumps(
            right, sort_keys=True
        )

    def test_rerun_is_deterministic(self) -> None:
        first = run_scenario(routed_fleet())
        second = run_scenario(routed_fleet())
        assert first.to_artifact() == second.to_artifact()


class TestRoutedTierAggregation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(routed_fleet())

    def test_per_backend_counts_sum_to_fleet(self, result) -> None:
        assert result.fleet.counts.total > 0
        assert sum(a.counts.total for a in result.backends) == (
            result.fleet.counts.total
        )
        for label in ("consistent", "inconsistent", "aborted_necessary",
                      "aborted_unnecessary"):
            assert sum(
                getattr(a.counts, label) for a in result.backends
            ) == getattr(result.fleet.counts, label)

    def test_per_edge_counts_sum_to_their_backend(self, result) -> None:
        by_backend = {a.name: a for a in result.backends}
        for aggregate in result.backends:
            edge_total = sum(
                result.edge(name).counts.total for name in aggregate.edges
            )
            assert edge_total == by_backend[aggregate.name].counts.total

    def test_backend_load_split_sums_to_fleet(self, result) -> None:
        assert sum(a.db_accesses for a in result.backends) == (
            result.fleet.db_accesses
        )
        assert sum(a.update_commits for a in result.backends) == (
            result.fleet.update_commits
        )
        assert result.db_stats.committed == result.fleet.update_commits

    def test_both_backends_commit_under_their_own_version_counters(
        self, result
    ) -> None:
        for aggregate in result.backends:
            assert aggregate.update_commits > 0
        # Independent commit sequences: tier-wide commits exceed what any
        # single backend's version counter reached.
        assert result.fleet.update_commits > max(
            a.update_commits for a in result.backends
        )


class TestMixedCacheKindsAcrossBackends:
    def test_checking_and_plain_edges_coexist_on_split_backends(self) -> None:
        """A tier where each backend serves a different cache variant."""
        from repro.cache.kinds import CacheKind

        workload_a = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        spec = ScenarioSpec(
            name="mixed-kinds",
            edges=[
                EdgeSpec(name="checked", workload=workload_a),
                EdgeSpec(
                    name="plain",
                    workload=workload_a,
                    cache_kind=CacheKind.PLAIN,
                ),
            ],
            backends=[BackendSpec(name="eu"), BackendSpec(name="us")],
            placement={"checked": "eu", "plain": "us"},
            duration=1.5,
            warmup=0.5,
            seed=31,
        )
        result = run_scenario(spec)
        # The plain edge never aborts; the checking edge may.
        assert result.edge("plain").counts.aborted == 0
        assert result.backend("eu").counts.total > 0
        assert result.backend("us").counts.total > 0
