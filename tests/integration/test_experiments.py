"""Integration tests: the figure experiments reproduce the paper's shapes.

Durations are reduced relative to the benchmark defaults; the assertions
target the qualitative claims (monotonicity, orderings, crossovers), which
are stable at these scales.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig3_alpha,
    fig4_convergence,
    fig5_drift,
    fig6_strategies,
    fig7_realistic,
    fig8_strategies,
    theorem1,
)
from repro.experiments.realistic import topology_rows


@pytest.mark.slow
class TestFig3Shape:
    def test_detection_rises_with_alpha(self) -> None:
        rows = fig3_alpha.run(alphas=(1 / 32, 1.0, 4.0), duration=8.0)
        detected = [row["detected_inconsistencies_pct"] for row in rows]
        assert detected[0] < detected[1] < detected[2]
        assert detected[0] < 35.0
        assert detected[2] > 95.0


@pytest.mark.slow
class TestFig4Shape:
    def test_inconsistency_collapses_after_cluster_formation(self) -> None:
        rows = fig4_convergence.run(duration=60.0, switch_time=25.0)
        summary = fig4_convergence.phase_summaries(rows, switch_time=25.0)
        before, after = summary["before"], summary["after"]
        # Before: inconsistencies slip through, few aborts.
        assert before["inconsistent_tps"] > 3 * before["aborted_tps"]
        # After: detection takes over.
        assert after["inconsistent_tps"] < before["inconsistent_tps"] / 3
        assert after["aborted_tps"] > before["aborted_tps"]


@pytest.mark.slow
class TestFig5Shape:
    def test_shifts_cause_spikes_that_converge(self) -> None:
        rows = fig5_drift.run(
            duration=180.0, shift_interval=45.0, n_objects=1000, window=3.0
        )
        profile = fig5_drift.shift_spike_profile(rows, 45.0, settle=12.0)
        assert profile["post_shift_mean_pct"] > 2 * profile["settled_mean_pct"]


@pytest.mark.slow
class TestFig6Shape:
    def test_strategy_ordering(self) -> None:
        rows = fig6_strategies.run(duration=10.0)
        by_name = {row["strategy"]: row for row in rows}
        # EVICT and RETRY leave fewer undetected inconsistencies than ABORT.
        assert by_name["EVICT"]["inconsistent_pct"] < by_name["ABORT"]["inconsistent_pct"]
        assert by_name["RETRY"]["inconsistent_pct"] < by_name["ABORT"]["inconsistent_pct"]
        # RETRY converts aborts into commits.
        assert by_name["RETRY"]["aborted_pct"] < by_name["EVICT"]["aborted_pct"]
        assert by_name["RETRY"]["consistent_pct"] > by_name["ABORT"]["consistent_pct"]


class TestFig7Topologies:
    def test_amazon_is_more_clustered_than_orkut(self) -> None:
        rows = {row["workload"]: row for row in topology_rows(sample_nodes=400)}
        assert rows["amazon"]["mean_clustering"] > 3 * rows["orkut"]["mean_clustering"]
        assert rows["amazon"]["nodes"] == rows["orkut"]["nodes"] == 400


@pytest.mark.slow
class TestFig7cShape:
    def test_inconsistency_falls_with_deplist_size_hit_ratio_flat(self) -> None:
        rows = fig7_realistic.run_deplist_sweep(
            sizes=(0, 2, 5), duration=10.0, workloads=("amazon",)
        )
        ratios = [row["inconsistency_ratio_pct"] for row in rows]
        assert ratios[0] > ratios[1] > ratios[2]
        assert ratios[2] < 0.4 * ratios[0]
        hit_ratios = [row["hit_ratio"] for row in rows]
        assert max(hit_ratios) - min(hit_ratios) < 0.05  # "no visible effect"

    def test_amazon_benefits_more_than_orkut(self) -> None:
        rows = fig7_realistic.run_deplist_sweep(sizes=(0, 3), duration=10.0)
        remaining = {
            row["workload"]: row["vs_baseline_pct"]
            for row in rows
            if row["deplist_max"] == 3
        }
        assert remaining["amazon"] < remaining["orkut"]


@pytest.mark.slow
class TestFig7dShape:
    def test_ttl_trades_db_load_for_consistency(self) -> None:
        rows = fig7_realistic.run_ttl_sweep(
            ttls=(None, 3.0, 0.5), duration=10.0, workloads=("amazon",)
        )
        by_ttl = {row["ttl"]: row for row in rows}
        assert by_ttl[0.5]["inconsistency_ratio_pct"] < by_ttl["inf"]["inconsistency_ratio_pct"]
        assert by_ttl[0.5]["db_rate_normed_pct"] > 200.0
        assert by_ttl[3.0]["db_rate_normed_pct"] > by_ttl["inf"]["db_rate_normed_pct"]

    def test_tcache_dominates_ttl(self) -> None:
        """The paper's conclusion: T-Cache reaches lower inconsistency at a
        fraction of the TTL approach's database load."""
        tcache_rows = fig7_realistic.run_deplist_sweep(
            sizes=(0, 3), duration=10.0, workloads=("amazon",)
        )
        ttl_rows = fig7_realistic.run_ttl_sweep(
            ttls=(None, 1.0), duration=10.0, workloads=("amazon",)
        )
        tcache = next(r for r in tcache_rows if r["deplist_max"] == 3)
        ttl = next(r for r in ttl_rows if r["ttl"] == 1.0)
        assert tcache["inconsistency_ratio_pct"] <= ttl["inconsistency_ratio_pct"] * 1.5
        assert tcache["db_rate_normed_pct"] < ttl["db_rate_normed_pct"] / 1.5


@pytest.mark.slow
class TestFig8Shape:
    def test_detection_and_strategy_orderings(self) -> None:
        rows = fig8_strategies.run(duration=10.0)
        table = {(row["workload"], row["strategy"]): row for row in rows}
        # Amazon detects more than Orkut under ABORT (paper: 70% vs 43%).
        assert (
            table[("amazon", "ABORT")]["detection_ratio_pct"]
            > table[("orkut", "ABORT")]["detection_ratio_pct"]
        )
        assert table[("amazon", "ABORT")]["detection_ratio_pct"] > 55.0
        assert 25.0 < table[("orkut", "ABORT")]["detection_ratio_pct"] < 65.0
        for workload in ("amazon", "orkut"):
            assert (
                table[(workload, "EVICT")]["inconsistent_pct"]
                < table[(workload, "ABORT")]["inconsistent_pct"]
            )
            assert (
                table[(workload, "RETRY")]["aborted_pct"]
                < table[(workload, "EVICT")]["aborted_pct"]
            )


@pytest.mark.slow
class TestSweepParallelism:
    def test_jobs_do_not_change_figure_rows(self) -> None:
        """The acceptance bar for the sweep engine: fanning a figure's
        columns across processes is invisible in its output."""
        import json

        serial = fig3_alpha.run(alphas=(1 / 4, 2.0), duration=4.0, jobs=1)
        parallel = fig3_alpha.run(alphas=(1 / 4, 2.0), duration=4.0, jobs=4)
        assert json.dumps(serial) == json.dumps(parallel)


@pytest.mark.slow
class TestTheorem1EndToEnd:
    def test_zero_inconsistent_commits_everywhere(self) -> None:
        rows = theorem1.run(duration=8.0)
        for row in rows:
            assert row["inconsistent_commits"] == 0, row
            assert row["committed"] > 500
