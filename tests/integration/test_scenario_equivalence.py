"""Golden equivalence: the scenario layer reproduces the seed runner.

The scenario redesign rebuilt ``run_column``/``build_column`` as one-edge
shims over ``run_scenario``. These tests pin the contract that made that
safe: a hand-wired column using the *seed* wiring (the pre-scenario
``build_column`` body, inlined here) produces bit-identical results to a
one-edge :class:`ScenarioSpec` — for every cache kind and strategy — and
scenario sweeps are deterministic across executors.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict

import pytest

from repro.cache.base import CacheServer
from repro.cache.ttl import TTLCache
from repro.clients.read_client import ReadOnlyClient
from repro.clients.update_client import UpdateClient
from repro.core.multiversion import MultiversionTCache
from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.db.database import Database, DatabaseConfig
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.monitor.monitor import ConsistencyMonitor
from repro.monitor.stats import CLASSES, ClassCounts
from repro.scenario import (
    BackendSpec,
    ScenarioSpec,
    heterogeneous_loss_fleet,
    run_scenario,
)
from repro.sim.channel import Channel
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.workloads.synthetic import PerfectClusterWorkload

WORKLOAD = PerfectClusterWorkload(n_objects=200, cluster_size=5)


def legacy_run_column(config: ColumnConfig, workload) -> dict[str, object]:
    """The seed repo's ``run_column`` wiring, inlined verbatim.

    Kept as the golden reference: if the scenario layer's single-edge path
    ever drifts from this wiring (stream names, component order, id
    ranges), these tests fail.
    """
    sim = Simulator()
    streams = RngStreams(config.seed)
    database = Database(
        sim,
        DatabaseConfig(
            deplist_max=config.deplist_max,
            timing=config.timing,
            pruning_policy=config.pruning_policy,
        ),
    )
    database.load({key: f"init:{key}" for key in workload.all_keys()})

    if config.cache_kind is CacheKind.TCACHE:
        cache = TCache(
            sim, database, strategy=config.strategy, capacity=config.cache_capacity
        )
    elif config.cache_kind is CacheKind.MULTIVERSION:
        cache = MultiversionTCache(sim, database, capacity=config.cache_capacity)
    elif config.cache_kind is CacheKind.TTL:
        cache = TTLCache(sim, database, ttl=config.ttl, capacity=config.cache_capacity)
    else:
        cache = CacheServer(sim, database, capacity=config.cache_capacity)

    channel = Channel(
        sim,
        cache.handle_invalidation,
        latency=lambda rng: float(rng.exponential(config.invalidation_latency_mean)),
        loss_probability=config.invalidation_loss,
        rng=streams.stream("invalidation-channel"),
        name="invalidations",
    )
    database.register_invalidation_channel(channel)

    monitor = ConsistencyMonitor(sim, window=config.monitor_window)
    database.add_commit_listener(monitor.record_update)
    cache.add_transaction_listener(monitor.record_read_only)

    update_client = UpdateClient(
        sim,
        database,
        workload,
        rate=config.update_rate,
        rng=streams.stream("update-client"),
    )
    read_client = ReadOnlyClient(
        sim,
        cache,
        workload,
        rate=config.read_rate,
        rng=streams.stream("read-client"),
        txn_ids=itertools.count(1),
        read_gap=config.read_gap,
        retry_aborted=config.retry_aborted_reads,
    )
    sim.run(until=config.total_time)

    measured = ClassCounts()
    for start, counts in monitor.series.buckets():
        if start >= config.warmup:
            for label in CLASSES:
                setattr(measured, label, getattr(measured, label) + getattr(counts, label))
    return {
        "counts": measured.as_dict(),
        "series": monitor.series.rates(),
        "cache_stats": asdict(cache.stats),
        "db_stats": asdict(database.stats),
        "channel_stats": asdict(channel.stats),
        "update_client_stats": asdict(update_client.stats),
        "read_client_stats": asdict(read_client.stats),
        "detections": (
            getattr(cache, "detections_eq1", 0),
            getattr(cache, "detections_eq2", 0),
            getattr(cache, "retries_resolved", 0),
        ),
    }


def scenario_view(config: ColumnConfig, workload) -> dict[str, object]:
    """The same metrics via a one-edge scenario's per-edge result."""
    result = run_scenario(ScenarioSpec.from_column(config, workload))
    edge = result.edges[0]
    return {
        "counts": edge.counts.as_dict(),
        "series": edge.series,
        "cache_stats": asdict(edge.cache_stats),
        "db_stats": asdict(edge.db_stats),
        "channel_stats": asdict(edge.channel_stats),
        "update_client_stats": asdict(edge.update_client_stats),
        "read_client_stats": asdict(edge.read_client_stats),
        "detections": (
            edge.detections_eq1,
            edge.detections_eq2,
            edge.retries_resolved,
        ),
    }


def quick_config(**overrides) -> ColumnConfig:
    defaults = dict(seed=42, duration=3.0, warmup=1.0)
    defaults.update(overrides)
    return ColumnConfig(**defaults)


class TestGoldenEquivalence:
    @pytest.mark.parametrize(
        "overrides",
        [
            pytest.param(
                {
                    "cache_kind": kind,
                    "strategy": strategy,
                    **({"ttl": 0.5} if kind is CacheKind.TTL else {}),
                },
                id=f"{kind.name.lower()}-{strategy.name.lower()}",
            )
            for kind in CacheKind
            for strategy in Strategy
            # Only TCACHE consumes the strategy knob (MULTIVERSION pins
            # RETRY, PLAIN/TTL never abort); one strategy value covers each
            # of the other kinds.
            if kind is CacheKind.TCACHE or strategy is Strategy.ABORT
        ],
    )
    def test_one_edge_scenario_matches_seed_runner(self, overrides) -> None:
        config = quick_config(**overrides)
        golden = legacy_run_column(config, WORKLOAD)
        scenario = scenario_view(config, WORKLOAD)
        assert json.dumps(golden, sort_keys=True) == json.dumps(
            scenario, sort_keys=True
        )

    def test_quickstart_config_matches_seed_runner(self) -> None:
        """The README/quickstart configuration, at reduced duration."""
        workload = PerfectClusterWorkload(n_objects=1000, cluster_size=5)
        config = ColumnConfig(
            seed=7,
            duration=5.0,
            warmup=1.0,
            deplist_max=5,
            strategy=Strategy.EVICT,
            invalidation_loss=0.2,
        )
        golden = legacy_run_column(config, workload)
        scenario = scenario_view(config, workload)
        assert golden == scenario

    def test_explicit_default_backend_matches_seed_runner(self) -> None:
        """The backend-tier acceptance contract: a spec with one explicitly
        passed default ``BackendSpec`` (and an explicit placement) is
        bit-identical to the seed wiring — the tier refactor changed no
        observable behaviour of the single-backend path."""
        config = quick_config(strategy=Strategy.RETRY)
        golden = legacy_run_column(config, WORKLOAD)

        explicit = ScenarioSpec.from_column(
            config, WORKLOAD, backends=[BackendSpec(name="db")]
        )
        result = run_scenario(explicit)
        edge = result.edges[0]
        via_backends = {
            "counts": edge.counts.as_dict(),
            "series": edge.series,
            "cache_stats": asdict(edge.cache_stats),
            "db_stats": asdict(edge.db_stats),
            "channel_stats": asdict(edge.channel_stats),
            "update_client_stats": asdict(edge.update_client_stats),
            "read_client_stats": asdict(edge.read_client_stats),
            "detections": (
                edge.detections_eq1,
                edge.detections_eq2,
                edge.retries_resolved,
            ),
        }
        assert json.dumps(golden, sort_keys=True) == json.dumps(
            via_backends, sort_keys=True
        )
        # The per-backend view of the one-backend run agrees with the fleet.
        assert result.backends[0].counts.as_dict() == golden["counts"]
        assert result.fleet.inconsistency_by_backend == {
            "db": result.fleet.inconsistency_ratio
        }


class TestKernelEventOrderGolden:
    """The immediate-queue kernel reproduces the seed kernel's event order.

    The simulator replaced pure-heap zero-delay scheduling with a FIFO
    immediate queue merged by ``(time, sequence)``; these tests pin that the
    executed order — and therefore every derived artifact — is unchanged.
    """

    #: SHA-256 of the reference column's full result under the seed repo's
    #: pure-heap kernel (recorded before the immediate-queue change landed).
    #: Every per-window rate, counter and detection feeds this digest, so
    #: any event-order drift in the kernel fails here.
    SEED_KERNEL_DIGEST = (
        "feb4a8bb03f5df22a66590887c87074f6b9b0998d24b6d22d56afc14ae31efe7"
    )

    def test_reference_column_matches_seed_kernel_digest(self) -> None:
        import hashlib

        config = quick_config(strategy=Strategy.RETRY)
        golden = legacy_run_column(config, WORKLOAD)
        digest = hashlib.sha256(
            json.dumps(golden, sort_keys=True).encode()
        ).hexdigest()
        assert digest == self.SEED_KERNEL_DIGEST

    def test_chunked_run_matches_single_run(self) -> None:
        """run(until=...) in several chunks crosses the immediate/heap
        boundary repeatedly and must land on identical results."""
        from repro.scenario.runner import build_scenario, collect_column_result

        config = quick_config(strategy=Strategy.EVICT)
        single = legacy_run_column(config, WORKLOAD)

        scenario = build_scenario(ScenarioSpec.from_column(config, WORKLOAD))
        for fraction in (0.25, 0.5, 0.75, 1.0):
            scenario.sim.run(until=config.total_time * fraction)
        edge = scenario.edges[0]
        column = collect_column_result(
            config,
            scenario.monitor.series,
            config.warmup,
            cache=edge.cache,
            db_stats=scenario.database.stats,
            channel_stats=edge.channel.stats,
            update_client=edge.update_client,
            read_client=edge.read_client,
        )
        assert column.counts.as_dict() == single["counts"]
        assert column.series == single["series"]
        assert asdict(column.cache_stats) == single["cache_stats"]


class TestScenarioSweepDeterminism:
    def sweep_spec(self) -> SweepSpec:
        return SweepSpec(
            name="fleet-grid",
            root_seed=5,
            points=[
                SweepPoint(
                    label=f"loss={loss:g}",
                    scenario=heterogeneous_loss_fleet(
                        edges=3,
                        max_loss=loss,
                        n_objects=200,
                        duration=1.5,
                        warmup=0.5,
                        seed=5,
                        read_rate=200.0,
                        update_rate=50.0,
                    ),
                    params={"max_loss": loss},
                )
                for loss in (0.2, 0.6)
            ],
        )

    def test_serial_and_parallel_sweeps_identical(self) -> None:
        serial = run_sweep(self.sweep_spec(), jobs=1)
        parallel = run_sweep(self.sweep_spec(), jobs=2)
        left = [result.to_artifact() for result in serial.results]
        right = [result.to_artifact() for result in parallel.results]
        assert json.dumps(left, sort_keys=True) == json.dumps(right, sort_keys=True)

    def test_rerun_is_deterministic(self) -> None:
        first = run_scenario(
            heterogeneous_loss_fleet(
                edges=3, n_objects=200, duration=1.5, warmup=0.5
            )
        )
        second = run_scenario(
            heterogeneous_loss_fleet(
                edges=3, n_objects=200, duration=1.5, warmup=0.5
            )
        )
        assert first.to_artifact() == second.to_artifact()
