"""Byte-identity for the protocol race across every execution backend.

The ISSUE-7 acceptance bar: the race sweep covering **every registered
protocol** must produce byte-identical per-point artifacts whether it runs
serial (``jobs=1``), multiprocess (``jobs=2``) or through a fleet daemon
with auth and journaling enabled — and the schema'd race artifact built
from those results must be byte-identical too.
"""

from __future__ import annotations

import json
import threading

from repro.dispatch.client import FleetSpec
from repro.dispatch.daemon import FleetConfig, FleetDaemon
from repro.dispatch.worker import run_worker
from repro.experiments import protocol_race
from repro.experiments.sweep import run_sweep
from repro.protocols import protocol_names

SECRET = "integration-secret"
DURATION = 2.0
SEED = 11


def race_spec():
    return protocol_race.spec(
        protocols=protocol_names(), duration=DURATION, seed=SEED
    )


def point_artifacts(sweep) -> list[str]:
    return [json.dumps(r.to_artifact(), sort_keys=True) for r in sweep.results]


def race_payload(sweep) -> str:
    rows = protocol_race.race_rows(
        [(point.params, result) for point, result in sweep.pairs()]
    )
    ranking = protocol_race.ranking_rows(rows)
    payload = protocol_race.artifact(rows, ranking, duration=DURATION, seed=SEED)
    protocol_race.validate_artifact(payload)
    return json.dumps(payload, sort_keys=True)


class TestRaceDeterminism:
    def test_serial_parallel_and_fleet_agree(self, tmp_path) -> None:
        spec = race_spec()
        assert len(spec.points) == 3 * len(protocol_names())

        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(spec, jobs=2)
        assert point_artifacts(parallel) == point_artifacts(serial)
        assert race_payload(parallel) == race_payload(serial)

        daemon = FleetDaemon(
            FleetConfig(
                port=0,
                journal_dir=str(tmp_path),
                secret=SECRET,
                lease_timeout=60.0,
                poll_interval=0.05,
            )
        )
        daemon.start()
        server = threading.Thread(target=daemon.serve_forever, daemon=True)
        server.start()
        host, port = daemon.address
        try:
            worker = threading.Thread(
                target=run_worker,
                args=(host, port),
                kwargs={
                    "name": "race-worker",
                    "secret": SECRET,
                    "max_idle": 3.0,
                    "heartbeat_interval": 0.5,
                },
                daemon=True,
            )
            worker.start()
            fleet = run_sweep(
                spec,
                dispatch=FleetSpec(
                    host=host,
                    port=port,
                    secret=SECRET,
                    poll_interval=0.1,
                    wait_timeout=240.0,
                ),
            )
        finally:
            daemon.shutdown()
        worker.join(timeout=60.0)

        assert point_artifacts(fleet) == point_artifacts(serial)
        assert race_payload(fleet) == race_payload(serial)

    def test_run_helper_matches_manual_pipeline(self) -> None:
        spec = race_spec()
        sweep = run_sweep(spec, jobs=1)
        expected = race_payload(sweep)
        _, _, payload = protocol_race.run(
            protocols=protocol_names(), duration=DURATION, seed=SEED, jobs=1
        )
        assert json.dumps(payload, sort_keys=True) == expected
