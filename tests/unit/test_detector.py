"""Unit tests for the §III-B inconsistency checks (Equations 1 and 2)."""

from __future__ import annotations

from repro.core.deplist import DependencyList
from repro.core.detector import (
    check_equation1,
    check_equation2,
    check_read,
    check_repeated_read,
)
from repro.core.records import TransactionContext

EMPTY = DependencyList()


def context_with(*reads: tuple[str, int, DependencyList]) -> TransactionContext:
    context = TransactionContext(txn_id=1, start_time=0.0)
    for key, version, deps in reads:
        context.record_read(key, version, deps)
    return context


class TestEquation2:
    """The current read is older than what previous reads expect."""

    def test_violation_from_previous_deps(self) -> None:
        context = context_with(("a", 10, DependencyList.from_pairs([("b", 7)])))
        report = check_equation2(context, "b", 5)
        assert report is not None
        assert report.equation == 2
        assert report.stale_key == "b"
        assert report.found_version == 5
        assert report.required_version == 7
        assert report.demanding_key == "a"
        assert report.stale_read_is_current

    def test_exact_required_version_passes(self) -> None:
        context = context_with(("a", 10, DependencyList.from_pairs([("b", 7)])))
        assert check_equation2(context, "b", 7) is None

    def test_newer_version_passes(self) -> None:
        context = context_with(("a", 10, DependencyList.from_pairs([("b", 7)])))
        assert check_equation2(context, "b", 9) is None

    def test_no_requirement_passes(self) -> None:
        context = context_with(("a", 10, EMPTY))
        assert check_equation2(context, "b", 0) is None

    def test_violation_from_direct_previous_read(self) -> None:
        """Re-reading a key at an older version than before."""
        context = context_with(("b", 7, EMPTY))
        report = check_equation2(context, "b", 5)
        assert report is not None
        assert report.demanding_key == "b"

    def test_strongest_requirement_wins(self) -> None:
        context = context_with(
            ("a", 10, DependencyList.from_pairs([("x", 3)])),
            ("b", 11, DependencyList.from_pairs([("x", 8)])),
        )
        report = check_equation2(context, "x", 5)
        assert report is not None
        assert report.required_version == 8
        assert report.demanding_key == "b"


class TestEquation1:
    """The current read's dependency list proves an earlier read stale."""

    def test_violation(self) -> None:
        context = context_with(("b", 5, EMPTY))
        deps = DependencyList.from_pairs([("b", 7)])
        report = check_equation1(context, "a", deps)
        assert report is not None
        assert report.equation == 1
        assert report.stale_key == "b"
        assert report.found_version == 5
        assert report.required_version == 7
        assert report.demanding_key == "a"
        assert not report.stale_read_is_current

    def test_satisfied_dependency_passes(self) -> None:
        context = context_with(("b", 7, EMPTY))
        assert check_equation1(context, "a", DependencyList.from_pairs([("b", 7)])) is None
        assert check_equation1(context, "a", DependencyList.from_pairs([("b", 6)])) is None

    def test_dependency_on_unread_key_passes(self) -> None:
        context = context_with(("b", 5, EMPTY))
        assert check_equation1(context, "a", DependencyList.from_pairs([("c", 9)])) is None

    def test_empty_deps_pass(self) -> None:
        context = context_with(("b", 5, EMPTY))
        assert check_equation1(context, "a", EMPTY) is None


class TestRepeatedRead:
    def test_newer_version_of_previously_read_key(self) -> None:
        context = context_with(("a", 5, EMPTY))
        report = check_repeated_read(context, "a", 8)
        assert report is not None
        assert report.equation == 1
        assert report.stale_key == "a"
        assert report.found_version == 5
        assert report.required_version == 8

    def test_same_version_passes(self) -> None:
        context = context_with(("a", 5, EMPTY))
        assert check_repeated_read(context, "a", 5) is None

    def test_unread_key_passes(self) -> None:
        context = context_with(("a", 5, EMPTY))
        assert check_repeated_read(context, "b", 9) is None


class TestCheckRead:
    def test_first_read_always_passes(self) -> None:
        context = TransactionContext(txn_id=1, start_time=0.0)
        deps = DependencyList.from_pairs([("b", 7), ("c", 3)])
        assert check_read(context, "a", 10, deps) is None

    def test_equation2_takes_priority(self) -> None:
        """When both equations fire, Eq. 2 is reported first (RETRY can
        repair it by re-reading the current object)."""
        context = context_with(
            ("b", 5, DependencyList.from_pairs([("a", 10)])),
        )
        # Reading a@8: Eq2 fires (b's deps demand a>=10); its own deps also
        # prove b stale (Eq1), but Eq2 must win.
        report = check_read(context, "a", 8, DependencyList.from_pairs([("b", 9)]))
        assert report is not None
        assert report.equation == 2

    def test_consistent_sequence_passes(self) -> None:
        context = TransactionContext(txn_id=1, start_time=0.0)
        deps_a = DependencyList.from_pairs([("b", 7)])
        assert check_read(context, "a", 10, deps_a) is None
        context.record_read("a", 10, deps_a)
        assert check_read(context, "b", 7, EMPTY) is None

    def test_transitive_requirement_via_recorded_reads(self) -> None:
        context = TransactionContext(txn_id=1, start_time=0.0)
        context.record_read("a", 10, DependencyList.from_pairs([("b", 7)]))
        context.record_read("c", 2, EMPTY)
        report = check_read(context, "b", 6, EMPTY)
        assert report is not None
        assert report.equation == 2
        assert report.demanding_key == "a"
