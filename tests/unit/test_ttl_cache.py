"""Unit tests for the TTL cache baseline."""

from __future__ import annotations

import pytest

from repro.cache.ttl import TTLCache
from repro.errors import ConfigurationError
from tests.helpers import FakeBackend


@pytest.fixture
def backend() -> FakeBackend:
    return FakeBackend({"a": "a0", "b": "b0"})


class TestTTLCache:
    def test_requires_positive_ttl(self, sim, backend) -> None:
        with pytest.raises(ConfigurationError):
            TTLCache(sim, backend, ttl=0.0)
        with pytest.raises(ConfigurationError):
            TTLCache(sim, backend, ttl=-1.0)

    def test_entry_refetched_after_expiry(self, sim, backend) -> None:
        cache = TTLCache(sim, backend, ttl=5.0)
        cache.read(1, "a", last_op=True)
        backend.commit(["a"])  # invalidation lost
        sim.run(until=4.0)
        stale = cache.read(2, "a", last_op=True)
        assert stale.version == 0  # still stale within the TTL
        sim.run(until=5.5)
        fresh = cache.read(3, "a", last_op=True)
        assert fresh.version == 1  # expiry forced a re-fetch
        assert fresh.cache_miss is True
        assert cache.stats.ttl_expirations == 1

    def test_ttl_bounds_staleness_but_costs_db_reads(self, sim, backend) -> None:
        cache = TTLCache(sim, backend, ttl=1.0)
        for round_index in range(5):
            sim.run(until=float(round_index) * 1.1 + 0.01)
            cache.read(round_index + 1, "a", last_op=True)
        # Every read after the first expired and hit the backend.
        assert cache.stats.misses == 5
        assert backend.reads == 5

    def test_never_aborts(self, sim, backend) -> None:
        cache = TTLCache(sim, backend, ttl=100.0)
        cache.read(1, "a")
        backend.commit(["a", "b"])
        cache.read(1, "b", last_op=True)  # torn read, silently committed
        assert cache.stats.transactions_aborted == 0
        assert cache.stats.transactions_committed == 1

    def test_ttl_property_exposed(self, sim, backend) -> None:
        assert TTLCache(sim, backend, ttl=7.0).ttl == 7.0
