"""Unit tests for experiment configuration and the table renderer."""

from __future__ import annotations

import pytest

from repro.core.deplist import UNBOUNDED
from repro.errors import ConfigurationError
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.report import format_percent, format_table


class TestColumnConfig:
    def test_defaults_match_the_paper(self) -> None:
        config = ColumnConfig()
        assert config.update_rate == 100.0
        assert config.read_rate == 500.0
        assert config.invalidation_loss == 0.2
        assert config.deplist_max == 5

    def test_unbounded_deplist_accepted(self) -> None:
        assert ColumnConfig(deplist_max=UNBOUNDED).deplist_max == UNBOUNDED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration": 0.0},
            {"duration": -1.0},
            {"warmup": -1.0},
            {"read_rate": 0.0},
            {"invalidation_loss": 1.5},
            {"deplist_max": -2},
            {"cache_kind": CacheKind.TTL},          # missing ttl
            {"cache_kind": CacheKind.TTL, "ttl": 0.0},
        ],
    )
    def test_invalid_configurations_rejected(self, kwargs) -> None:
        with pytest.raises(ConfigurationError):
            ColumnConfig(**kwargs)

    def test_total_time(self) -> None:
        assert ColumnConfig(duration=30.0, warmup=5.0).total_time == 35.0


class TestReport:
    def test_format_percent(self) -> None:
        assert format_percent(0.1234) == "12.3%"
        assert format_percent(0.1234, digits=2) == "12.34%"

    def test_table_alignment_and_content(self) -> None:
        rows = [
            {"name": "alpha", "value": 1.23456, "flag": True},
            {"name": "b", "value": 20.0, "flag": False},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "1.235" in lines[3]  # four significant digits
        assert "True" in lines[3]

    def test_column_selection_and_order(self) -> None:
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty_rows(self) -> None:
        assert "(no rows)" in format_table([], title="t")
        assert format_table([]) == "(no rows)"

    def test_missing_cells_render_empty(self) -> None:
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=["a", "b"])
        assert "x" in text
