"""Unit tests for shared value types and the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors
from repro.types import (
    CommittedTransaction,
    DepEntry,
    VersionedValue,
    entries_from_pairs,
)


class TestVersionedValue:
    def test_dep_on_returns_max_version(self) -> None:
        entry = VersionedValue(
            key="a",
            value=1,
            version=5,
            deps=entries_from_pairs([("b", 3), ("c", 1), ("b", 7)]),
        )
        assert entry.dep_on("b") == 7
        assert entry.dep_on("c") == 1
        assert entry.dep_on("missing") is None

    def test_immutability(self) -> None:
        entry = VersionedValue(key="a", value=1, version=5)
        with pytest.raises(AttributeError):
            entry.version = 6  # type: ignore[misc]


class TestCommittedTransaction:
    def test_keys_union(self) -> None:
        txn = CommittedTransaction(txn_id=3, reads={"a": 1, "b": 2}, writes={"b": 3, "c": 3})
        assert txn.keys() == {"a", "b", "c"}


class TestErrors:
    def test_hierarchy(self) -> None:
        assert issubclass(errors.TransactionAborted, errors.TransactionError)
        assert issubclass(errors.InconsistencyDetected, errors.TransactionAborted)
        assert issubclass(errors.DeadlockDetected, errors.TransactionError)
        assert issubclass(errors.TransactionError, errors.ReproError)
        assert issubclass(errors.KeyNotFound, errors.ReproError)
        assert issubclass(errors.ConfigurationError, errors.ReproError)

    def test_catching_the_family(self) -> None:
        with pytest.raises(errors.ReproError):
            raise errors.InconsistencyDetected(
                1, "k", 1, 2, stale_read_is_current=True
            )

    def test_inconsistency_carries_structure(self) -> None:
        error = errors.InconsistencyDetected(
            7, "photo:1", found_version=3, required_version=9, stale_read_is_current=False
        )
        assert error.txn_id == 7
        assert error.key == "photo:1"
        assert error.found_version == 3
        assert error.required_version == 9
        assert not error.stale_read_is_current
        assert "photo:1" in str(error)
        assert "earlier read too old" in str(error)

    def test_key_not_found_names_the_key(self) -> None:
        error = errors.KeyNotFound("missing")
        assert error.key == "missing"
        assert "missing" in str(error)

    def test_participant_failure_names_participant(self) -> None:
        error = errors.ParticipantFailure("shard3", "crashed")
        assert error.participant == "shard3"


class TestDepEntry:
    def test_hashable_and_frozen(self) -> None:
        assert len({DepEntry("a", 1), DepEntry("a", 1), DepEntry("a", 2)}) == 2
        with pytest.raises(AttributeError):
            DepEntry("a", 1).version = 2  # type: ignore[misc]
