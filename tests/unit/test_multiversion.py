"""Unit tests for the multiversion T-Cache extension (§VI)."""

from __future__ import annotations

import pytest

from repro.core.multiversion import MultiversionTCache
from repro.db.invalidation import InvalidationRecord
from repro.errors import ConfigurationError, InconsistencyDetected
from tests.helpers import FakeBackend


@pytest.fixture
def backend() -> FakeBackend:
    return FakeBackend({"a": "a0", "b": "b0", "c": "c0"})


def invalidate(cache, key, version):
    cache.handle_invalidation(
        InvalidationRecord(key=key, version=version, txn_id=version, commit_time=0.0)
    )


class TestConstruction:
    def test_history_depth_validated(self, sim, backend) -> None:
        with pytest.raises(ConfigurationError):
            MultiversionTCache(sim, backend, history_depth=0)

    def test_history_accumulates_versions(self, sim, backend) -> None:
        cache = MultiversionTCache(sim, backend, history_depth=3)
        cache.read(1, "a", last_op=True)               # a@0
        committed = backend.commit(["a"])              # a -> 1
        invalidate(cache, "a", committed.txn_id)
        cache.read(2, "a", last_op=True)               # a@1
        versions = [e.version for e in cache.candidate_versions("a")]
        assert versions == [1, 0]

    def test_history_depth_bounds_retention(self, sim, backend) -> None:
        cache = MultiversionTCache(sim, backend, history_depth=2)
        cache.read(1, "a", last_op=True)
        for _ in range(4):
            committed = backend.commit(["a"])
            invalidate(cache, "a", committed.txn_id)
            cache.read(2, "a", last_op=True)
        assert len(cache.candidate_versions("a")) == 2


class TestVersionSelection:
    def make_torn_state(self, sim, backend):
        """Cache: stale b@0 (lost invalidation) plus history for a at 0, 1.

        One update writes {a, b}; the cache re-reads a (fresh) but keeps the
        old b. A transaction reading b@0 first and then a would abort under
        plain RETRY (Equation 1: fresh a's deps prove b stale) — but a@0 is
        in the history and is consistent with b@0.
        """
        cache = MultiversionTCache(sim, backend, history_depth=3)
        cache.read(900, "a", last_op=True)             # a@0 enters history
        cache.read(901, "b", last_op=True)             # b@0 cached
        committed = backend.commit(["a", "b"])         # a,b -> 1
        invalidate(cache, "a", committed.txn_id)       # b's invalidation lost
        cache.read(902, "a", last_op=True)             # a@1 cached + history
        return cache

    def test_old_version_saves_the_transaction(self, sim, backend) -> None:
        cache = self.make_torn_state(sim, backend)
        before = cache.stats.transactions_aborted
        result_b = cache.read(1, "b")
        assert result_b.version == 0                   # stale read delivered
        result_a = cache.read(1, "a", last_op=True)
        assert result_a.version == 0                   # older version served
        assert cache.multiversion_serves == 1
        assert cache.stats.transactions_aborted == before
        assert cache.stats.transactions_committed >= 1

    def test_snapshot_is_consistent(self, sim, backend) -> None:
        """The served combination (b@0, a@0) is serializable — before the
        update transaction."""
        from repro.monitor.sgt import SerializationGraphTester

        tester = SerializationGraphTester()
        cache = MultiversionTCache(sim, backend, history_depth=3)
        cache.read(900, "a", last_op=True)
        cache.read(901, "b", last_op=True)
        tester.record_update(backend.commit(["a", "b"]))
        invalidate(cache, "a", 1)
        cache.read(902, "a", last_op=True)
        result_b = cache.read(1, "b")
        result_a = cache.read(1, "a", last_op=True)
        assert result_b.version == 0
        assert tester.is_consistent({"b": 0, "a": result_a.version})

    def test_fresh_first_then_stale_still_retries(self, sim, backend) -> None:
        """Reading the fresh object first leaves Equation 2 on the stale
        one; that path re-reads from the database like RETRY."""
        cache = self.make_torn_state(sim, backend)
        cache.read(1, "a")              # fresh a@1 first
        result = cache.read(1, "b", last_op=True)
        assert result.version == 1      # read-through repaired b
        assert result.retried is True

    def test_no_candidate_falls_back_to_abort(self, sim, backend) -> None:
        """Without a usable old version the Equation 1 path aborts."""
        cache = MultiversionTCache(sim, backend, history_depth=3)
        committed = backend.commit(["a", "b"])          # a,b -> 1 (not cached)
        cache.read(900, "b", last_op=True)              # caches b@1... fresh
        second = backend.commit(["a", "b"])             # a,b -> 2
        invalidate(cache, "a", second.txn_id)
        # b stays at 1 (lost invalidation); a will come in fresh at 2.
        cache.read(1, "b")                              # b@1 delivered
        with pytest.raises(InconsistencyDetected):
            # a@2's deps demand b>=2; history has no a older than 2 that is
            # consistent with b@1 (a@... nothing cached before).
            cache.read(1, "a", last_op=True)
