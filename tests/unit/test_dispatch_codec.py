"""Unit tests for the result wire codec and the worker fault plans."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.dispatch.codec import decode_result, encode_result
from repro.dispatch.faults import FaultPlan
from repro.errors import ConfigurationError, ProtocolError
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import run_column
from repro.experiments.sweep import SweepPoint
from repro.scenario import run_scenario
from repro.scenario.library import heterogeneous_loss_fleet, region_failure_drill
from repro.workloads.synthetic import PerfectClusterWorkload


def wire_round_trip(payload: dict) -> dict:
    """What the protocol does to a result payload: JSON there and back."""
    return json.loads(json.dumps(payload))


class TestColumnResults:
    def test_column_result_survives_the_wire(self) -> None:
        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        config = ColumnConfig(seed=3, duration=1.0, warmup=0.5)
        point = SweepPoint(label="col", config=config, workload=workload)
        result = run_column(config, workload)

        decoded = decode_result(
            wire_round_trip(encode_result(result)), point
        )
        assert decoded.config is config  # reattached, not rebuilt
        assert decoded.counts == result.counts
        assert decoded.cache_stats == result.cache_stats
        assert decoded.db_stats == result.db_stats
        assert decoded.channel_stats == result.channel_stats
        assert decoded.update_client_stats == result.update_client_stats
        assert decoded.read_client_stats == result.read_client_stats
        assert json.dumps(decoded.series) == json.dumps(result.series)
        assert decoded.detections_eq1 == result.detections_eq1
        assert decoded.detections_eq2 == result.detections_eq2

    def test_kind_mismatch_rejected(self) -> None:
        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        config = ColumnConfig(seed=3, duration=1.0, warmup=0.5)
        column_point = SweepPoint(label="col", config=config, workload=workload)
        scenario_point = SweepPoint(
            label="fleet",
            scenario=heterogeneous_loss_fleet(edges=2, n_objects=100, duration=1.0),
        )
        result = run_column(config, workload)
        payload = wire_round_trip(encode_result(result))
        with pytest.raises(ProtocolError, match="column result"):
            decode_result(payload, scenario_point)
        payload["kind"] = "scenario"
        # A forged kind still cannot decode against a column point.
        with pytest.raises(ProtocolError, match="scenario result"):
            decode_result(payload, column_point)

    def test_unknown_kind_rejected(self) -> None:
        point = SweepPoint(
            label="col",
            config=ColumnConfig(seed=1),
            workload=PerfectClusterWorkload(n_objects=100, cluster_size=5),
        )
        with pytest.raises(ProtocolError, match="kind"):
            decode_result({"kind": "mystery"}, point)
        with pytest.raises(ProtocolError, match="kind"):
            decode_result({}, point)


class TestScenarioResults:
    def test_scenario_result_artifact_is_byte_identical(self) -> None:
        spec = region_failure_drill(
            regions=2, objects_per_region=100, duration=2.0, warmup=0.5
        )
        point = SweepPoint(label="drill", scenario=spec)
        result = run_scenario(spec)

        decoded = decode_result(wire_round_trip(encode_result(result)), point)
        assert decoded.spec is spec  # the coordinator's own spec object
        assert json.dumps(decoded.to_artifact()) == json.dumps(
            result.to_artifact()
        )
        assert asdict(decoded.fleet) == asdict(result.fleet)
        assert [asdict(b) for b in decoded.backends] == [
            asdict(b) for b in result.backends
        ]

    def test_edge_count_mismatch_rejected(self) -> None:
        spec = heterogeneous_loss_fleet(edges=2, n_objects=100, duration=1.0)
        point = SweepPoint(label="fleet", scenario=spec)
        result = run_scenario(spec)
        payload = wire_round_trip(encode_result(result))
        payload["edges"] = payload["edges"][:1]
        with pytest.raises(ProtocolError, match="edges"):
            decode_result(payload, point)


class TestFaultPlans:
    def test_parse_forms(self) -> None:
        plan = FaultPlan.parse("crash:3")
        assert (plan.kind, plan.after_points) == ("crash", 3)
        plan = FaultPlan.parse("stall:1:7.5")
        assert (plan.kind, plan.after_points, plan.stall_seconds) == (
            "stall", 1, 7.5,
        )
        assert FaultPlan.parse("disconnect:0").kind == "disconnect"

    @pytest.mark.parametrize(
        "text",
        ["", "crash", "crash:x", "explode:1", "crash:-1", "stall:1:0", "a:1:2:3"],
    )
    def test_bad_specs_rejected(self, text: str) -> None:
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(text)

    def test_trigger_threshold(self) -> None:
        plan = FaultPlan(kind="crash", after_points=2)
        assert not plan.triggers_after(1)
        assert plan.triggers_after(2)
        assert plan.triggers_after(3)
