"""Unit tests for the wound-wait lock manager."""

from __future__ import annotations

import pytest

from repro.db.locks import LockManager, LockMode
from repro.errors import DeadlockDetected, SimulationError
from repro.sim.core import Simulator


@pytest.fixture
def locks(sim: Simulator) -> LockManager:
    return LockManager(sim)


def register(locks: LockManager, txn_id: int, wounds: list[int] | None = None) -> None:
    sink = wounds if wounds is not None else []
    locks.register(txn_id, age=txn_id, on_wound=sink.append)


class TestGrants:
    def test_shared_locks_coexist(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        a = locks.acquire(1, "k", LockMode.SHARED)
        b = locks.acquire(2, "k", LockMode.SHARED)
        assert a.triggered and b.triggered
        assert set(locks.holders("k")) == {1, 2}

    def test_exclusive_excludes_shared(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        waiting = locks.acquire(2, "k", LockMode.SHARED)
        assert not waiting.triggered
        assert locks.queue_length("k") == 1

    def test_shared_blocks_exclusive(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        locks.acquire(1, "k", LockMode.SHARED)
        waiting = locks.acquire(2, "k", LockMode.EXCLUSIVE)
        assert not waiting.triggered

    def test_reacquire_same_mode_is_idempotent(self, sim, locks) -> None:
        register(locks, 1)
        locks.acquire(1, "k", LockMode.SHARED)
        again = locks.acquire(1, "k", LockMode.SHARED)
        assert again.triggered

    def test_exclusive_holder_may_request_shared(self, sim, locks) -> None:
        register(locks, 1)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        weaker = locks.acquire(1, "k", LockMode.SHARED)
        assert weaker.triggered

    def test_unregistered_transaction_rejected(self, sim, locks) -> None:
        with pytest.raises(SimulationError):
            locks.acquire(99, "k", LockMode.SHARED)

    def test_double_registration_rejected(self, sim, locks) -> None:
        register(locks, 1)
        with pytest.raises(SimulationError):
            register(locks, 1)


class TestReleaseAndPromotion:
    def test_release_grants_next_waiter(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        waiting = locks.acquire(2, "k", LockMode.EXCLUSIVE)
        locks.release_all(1)
        assert waiting.triggered
        assert set(locks.holders("k")) == {2}

    def test_release_grants_multiple_compatible_waiters(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        register(locks, 3)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        w2 = locks.acquire(2, "k", LockMode.SHARED)
        w3 = locks.acquire(3, "k", LockMode.SHARED)
        locks.release_all(1)
        assert w2.triggered and w3.triggered
        assert set(locks.holders("k")) == {2, 3}

    def test_fifo_no_overtaking_of_exclusive_waiter(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        register(locks, 3)
        locks.acquire(1, "k", LockMode.SHARED)
        blocked_writer = locks.acquire(2, "k", LockMode.EXCLUSIVE)
        late_reader = locks.acquire(3, "k", LockMode.SHARED)
        assert not blocked_writer.triggered
        # The late shared request must queue behind the exclusive waiter.
        assert not late_reader.triggered
        locks.release_all(1)
        assert blocked_writer.triggered
        assert not late_reader.triggered
        locks.release_all(2)
        assert late_reader.triggered

    def test_release_all_clears_held_keys(self, sim, locks) -> None:
        register(locks, 1)
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert locks.held_keys(1) == {"a", "b"}
        locks.release_all(1)
        assert locks.held_keys(1) == set()
        assert locks.holders("a") == {}


class TestUpgrade:
    def test_sole_holder_upgrades_in_place(self, sim, locks) -> None:
        register(locks, 1)
        locks.acquire(1, "k", LockMode.SHARED)
        upgrade = locks.acquire(1, "k", LockMode.EXCLUSIVE)
        assert upgrade.triggered
        assert locks.holders("k")[1] is LockMode.EXCLUSIVE

    def test_upgrade_waits_for_other_readers(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        locks.acquire(1, "k", LockMode.SHARED)
        locks.acquire(2, "k", LockMode.SHARED)
        # Txn 2 (younger) requests upgrade; txn 1 (older) still reads.
        upgrade = locks.acquire(2, "k", LockMode.EXCLUSIVE)
        assert not upgrade.triggered
        locks.release_all(1)
        assert upgrade.triggered
        assert locks.holders("k")[2] is LockMode.EXCLUSIVE

    def test_older_upgrader_wounds_younger_reader(self, sim, locks) -> None:
        wounds: list[int] = []
        locks.register(1, age=1, on_wound=wounds.append)
        locks.register(2, age=2, on_wound=wounds.append)
        locks.acquire(1, "k", LockMode.SHARED)
        locks.acquire(2, "k", LockMode.SHARED)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        sim.run()
        assert wounds == [2]


class TestWoundWait:
    def test_older_requester_wounds_younger_holder(self, sim, locks) -> None:
        wounds: list[int] = []
        locks.register(1, age=1, on_wound=wounds.append)
        locks.register(2, age=2, on_wound=wounds.append)
        locks.acquire(2, "k", LockMode.EXCLUSIVE)
        waiting = locks.acquire(1, "k", LockMode.EXCLUSIVE)
        sim.run()
        assert wounds == [2]
        assert locks.wounds == 1
        assert not waiting.triggered  # granted once the victim releases
        locks.release_all(2)
        assert waiting.triggered

    def test_younger_requester_waits(self, sim, locks) -> None:
        wounds: list[int] = []
        locks.register(1, age=1, on_wound=wounds.append)
        locks.register(2, age=2, on_wound=wounds.append)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        waiting = locks.acquire(2, "k", LockMode.EXCLUSIVE)
        sim.run()
        assert wounds == []
        assert not waiting.triggered

    def test_prepared_holder_is_immune(self, sim, locks) -> None:
        wounds: list[int] = []
        locks.register(1, age=1, on_wound=wounds.append)
        locks.register(2, age=2, on_wound=wounds.append)
        locks.acquire(2, "k", LockMode.EXCLUSIVE)
        locks.mark_prepared(2)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        sim.run()
        assert wounds == []

    def test_abort_cancels_queued_waits_with_deadlock_error(self, sim, locks) -> None:
        register(locks, 1)
        register(locks, 2)
        locks.acquire(1, "k", LockMode.EXCLUSIVE)
        waiting = locks.acquire(2, "k", LockMode.EXCLUSIVE)
        locks.release_all(2)  # victim aborts while queued
        assert waiting.triggered and not waiting.ok
        assert isinstance(waiting.value, DeadlockDetected)
        # The holder is unaffected and later release leaves a clean table.
        locks.release_all(1)
        assert locks.holders("k") == {}
