"""Unit tests for the journal directory index cache and compaction.

Satellite contract: ``fleet status`` over a directory of finished sweeps
must cost one ``stat`` per file, not one full replay — and finished
journals must be archivable so daemon restarts stop paying for them.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.dispatch import journal as journal_module
from repro.dispatch.journal import (
    ARCHIVE_DIRNAME,
    INDEX_FILENAME,
    SweepJournal,
    compact_finished,
    journal_index,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ColumnConfig
from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed
from repro.workloads.synthetic import PerfectClusterWorkload


def tiny_spec(n_points: int = 2, *, root_seed: int = 1) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=40, cluster_size=4)
    config = ColumnConfig(seed=1, duration=0.4, warmup=0.2)
    return SweepSpec(
        name="index-spec",
        root_seed=root_seed,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(root_seed, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_points)
        ],
    )


def write_journal(journal_dir, name: str, *, completed: int, total: int = 2):
    journal = SweepJournal.create(
        str(journal_dir), tiny_spec(total), name=name, priority=3
    )
    with journal:
        for index in range(completed):
            journal.record(index, {"kind": "column", "payload": {"i": index}})
    return journal.path


class TestJournalIndex:
    def test_summarises_every_journal(self, tmp_path) -> None:
        write_journal(tmp_path, "done", completed=2)
        write_journal(tmp_path, "half", completed=1)
        index = {entry.name: entry for entry in journal_index(str(tmp_path))}
        assert set(index) == {"done", "half"}
        assert index["done"].finished is True
        assert index["done"].completed == index["done"].total == 2
        assert index["half"].finished is False
        assert index["half"].completed == 1
        assert index["half"].priority == 3

    def test_cache_hit_skips_replay(self, tmp_path, monkeypatch) -> None:
        write_journal(tmp_path, "done", completed=2)
        journal_index(str(tmp_path))  # prime the sidecar cache
        assert os.path.exists(tmp_path / INDEX_FILENAME)

        def boom(*args, **kwargs):
            raise AssertionError("cached journal was replayed")

        monkeypatch.setattr(journal_module.SweepJournal, "replay", boom)
        [entry] = journal_index(str(tmp_path))
        assert entry.name == "done"
        assert entry.finished is True

    def test_appends_invalidate_the_cached_entry(self, tmp_path) -> None:
        path = write_journal(tmp_path, "half", completed=1)
        [before] = journal_index(str(tmp_path))
        assert before.completed == 1
        journal, _ = SweepJournal.attach(path)
        with journal:
            journal.record(1, {"kind": "column", "payload": {"i": 1}})
        [after] = journal_index(str(tmp_path))
        assert after.completed == 2
        assert after.finished is True

    def test_corrupt_cache_is_rebuilt(self, tmp_path) -> None:
        write_journal(tmp_path, "done", completed=2)
        journal_index(str(tmp_path))
        (tmp_path / INDEX_FILENAME).write_text("{not json", encoding="utf-8")
        [entry] = journal_index(str(tmp_path))
        assert entry.finished is True

    def test_empty_directory(self, tmp_path) -> None:
        assert journal_index(str(tmp_path)) == []


class TestCompactFinished:
    def test_moves_only_finished_journals(self, tmp_path) -> None:
        done_path = write_journal(tmp_path, "done", completed=2)
        half_path = write_journal(tmp_path, "half", completed=1)
        archived = compact_finished(str(tmp_path))
        assert len(archived) == 1
        assert not os.path.exists(done_path)
        assert os.path.exists(half_path)
        assert os.path.dirname(archived[0]).endswith(ARCHIVE_DIRNAME)
        # The archived journal remains replayable by hand.
        replayed = SweepJournal.replay(archived[0])
        assert sorted(replayed.results) == [0, 1]
        # The live index no longer lists it.
        assert [e.name for e in journal_index(str(tmp_path))] == ["half"]

    def test_older_than_spares_recent_journals(self, tmp_path) -> None:
        path = write_journal(tmp_path, "done", completed=2)
        mtime = os.stat(path).st_mtime
        assert (
            compact_finished(str(tmp_path), older_than=60.0, now=mtime + 10.0)
            == []
        )
        assert os.path.exists(path)
        archived = compact_finished(
            str(tmp_path), older_than=60.0, now=mtime + 120.0
        )
        assert len(archived) == 1

    def test_custom_archive_dir(self, tmp_path) -> None:
        write_journal(tmp_path, "done", completed=2)
        vault = tmp_path / "vault"
        [archived] = compact_finished(str(tmp_path), archive_dir=str(vault))
        assert os.path.dirname(archived) == str(vault)

    def test_negative_expiry_rejected(self, tmp_path) -> None:
        with pytest.raises(ConfigurationError, match="older_than"):
            compact_finished(str(tmp_path), older_than=-1.0)
