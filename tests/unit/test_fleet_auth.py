"""Unit tests for fleet authentication: HMAC primitives and the daemon gate.

The acceptance bar: an unauthenticated or wrong-secret ``hello``/``submit``
is rejected *before any queue mutation* — the daemon's queue must be
provably untouched after a refused connection.
"""

from __future__ import annotations

import socket

import pytest

from repro.dispatch.auth import (
    SECRET_ENV_VAR,
    compute_mac,
    issue_nonce,
    secret_from_env,
    verify_mac,
)
from repro.dispatch.client import FleetClient
from repro.dispatch.daemon import FleetConfig, FleetDaemon
from repro.dispatch.protocol import PROTOCOL_VERSION, recv_frame, send_frame
from repro.errors import AuthenticationError, DispatchError

SECRET = "unit-test-secret"


class TestPrimitives:
    def test_mac_round_trip(self) -> None:
        nonce = issue_nonce()
        mac = compute_mac(SECRET, nonce, "worker", "w0")
        assert verify_mac(SECRET, nonce, "worker", "w0", mac)

    def test_nonces_are_fresh(self) -> None:
        assert issue_nonce() != issue_nonce()
        assert len(issue_nonce()) == 64  # 32 bytes hex

    def test_wrong_secret_fails(self) -> None:
        nonce = issue_nonce()
        mac = compute_mac("other-secret", nonce, "worker", "w0")
        assert not verify_mac(SECRET, nonce, "worker", "w0", mac)

    def test_role_and_name_are_bound_into_the_mac(self) -> None:
        # A captured worker handshake must not authenticate a submitter,
        # and renamed peers must re-prove themselves.
        nonce = issue_nonce()
        mac = compute_mac(SECRET, nonce, "worker", "w0")
        assert not verify_mac(SECRET, nonce, "submitter", "w0", mac)
        assert not verify_mac(SECRET, nonce, "worker", "w1", mac)

    def test_nonce_is_bound_so_replays_fail(self) -> None:
        mac = compute_mac(SECRET, issue_nonce(), "worker", "w0")
        assert not verify_mac(SECRET, issue_nonce(), "worker", "w0", mac)

    def test_non_string_mac_is_just_wrong(self) -> None:
        assert not verify_mac(SECRET, issue_nonce(), "worker", "w0", None)
        assert not verify_mac(SECRET, issue_nonce(), "worker", "w0", 123)

    def test_empty_local_secret_is_a_bug(self) -> None:
        with pytest.raises(AuthenticationError):
            compute_mac("", issue_nonce(), "worker", "w0")

    def test_secret_from_env(self) -> None:
        assert secret_from_env({}) is None
        assert secret_from_env({SECRET_ENV_VAR: ""}) is None
        assert secret_from_env({SECRET_ENV_VAR: "s3"}) == "s3"


@pytest.fixture()
def daemon():
    instance = FleetDaemon(FleetConfig(port=0, secret=SECRET))
    instance.start()
    try:
        yield instance
    finally:
        instance.shutdown()


def handshake_frames(daemon, frames: list[dict]) -> list[dict]:
    """Drive a raw connection through ``frames``, collecting every reply."""
    host, port = daemon.address
    replies: list[dict] = []
    with socket.create_connection((host, port), timeout=10.0) as sock:
        for frame in frames:
            send_frame(sock, frame)
            reply = recv_frame(sock)
            if reply is None:
                break
            replies.append(reply)
            if reply.get("type") == "error":
                break
    return replies


def hello(role: str, name: str = "peer") -> dict:
    return {
        "type": "hello",
        "role": role,
        "worker": name,
        "protocol": PROTOCOL_VERSION,
    }


SPEC_PAYLOAD = {"spec": "x", "root_seed": 1, "columns": []}


class TestDaemonGate:
    def test_wrong_secret_rejected_before_queue_mutation(self, daemon) -> None:
        nonce_reply_then_error = handshake_frames(
            daemon,
            [
                hello("submitter"),
                {"type": "auth", "mac": "0" * 64},
                {"type": "submit", "sweep": "evil", "spec": SPEC_PAYLOAD},
            ],
        )
        assert [r["type"] for r in nonce_reply_then_error] == [
            "challenge",
            "error",
        ]
        assert "wrong" in nonce_reply_then_error[-1]["message"]
        assert daemon.queue.names() == []
        assert daemon.stats.submissions == 0
        assert daemon.stats.rejected_auth == 1

    def test_submit_without_answering_challenge_rejected(self, daemon) -> None:
        replies = handshake_frames(
            daemon,
            [
                hello("submitter"),
                {"type": "submit", "sweep": "evil", "spec": SPEC_PAYLOAD},
            ],
        )
        assert replies[-1]["type"] == "error"
        assert daemon.queue.names() == []
        assert daemon.stats.submissions == 0

    def test_wrong_secret_worker_never_registered(self, daemon) -> None:
        replies = handshake_frames(
            daemon,
            [
                hello("worker", "intruder"),
                {
                    "type": "auth",
                    "mac": compute_mac("bad-secret", "??", "worker", "intruder"),
                },
            ],
        )
        assert replies[-1]["type"] == "error"
        # Registration (and health tracking) happens strictly after auth.
        assert daemon.health.snapshot() == []
        assert daemon.stats.rejected_auth == 1

    def test_correct_secret_is_welcomed(self, daemon) -> None:
        host, port = daemon.address
        with socket.create_connection((host, port), timeout=10.0) as sock:
            send_frame(sock, hello("worker", "w0"))
            challenge = recv_frame(sock)
            assert challenge["type"] == "challenge"
            send_frame(
                sock,
                {
                    "type": "auth",
                    "mac": compute_mac(
                        SECRET, challenge["nonce"], "worker", "w0"
                    ),
                },
            )
            welcome = recv_frame(sock)
            assert welcome == {
                "type": "welcome",
                "service": "fleet",
                "role": "worker",
            }

    def test_protocol_version_mismatch_rejected(self, daemon) -> None:
        replies = handshake_frames(
            daemon, [{"type": "hello", "worker": "w", "protocol": 1}]
        )
        assert replies[-1]["type"] == "error"
        assert "version" in replies[-1]["message"]
        assert daemon.stats.rejected_protocol == 1

    def test_unknown_role_rejected(self, daemon) -> None:
        replies = handshake_frames(daemon, [hello("admin")])
        assert replies[-1]["type"] == "error"
        assert "role" in replies[-1]["message"]

    def test_client_with_wrong_secret_raises_authentication_error(
        self, daemon
    ) -> None:
        host, port = daemon.address
        client = FleetClient(host, port, secret="not-the-secret")
        with pytest.raises(AuthenticationError):
            client.status()
        assert daemon.queue.names() == []

    def test_client_with_no_secret_raises_before_dialing_frames(
        self, daemon
    ) -> None:
        host, port = daemon.address
        client = FleetClient(host, port, secret=None)
        with pytest.raises(AuthenticationError, match="REPRO_FLEET_SECRET"):
            client.status()

    def test_open_daemon_skips_the_challenge(self) -> None:
        open_daemon = FleetDaemon(FleetConfig(port=0, secret=None))
        # Construction must not silently pick up the test environment.
        open_daemon.config.secret = None
        open_daemon.start()
        try:
            host, port = open_daemon.address
            with socket.create_connection((host, port), timeout=10.0) as sock:
                send_frame(sock, hello("submitter"))
                assert recv_frame(sock)["type"] == "welcome"
        finally:
            open_daemon.shutdown()


class TestWorkerSide:
    def test_worker_with_wrong_secret_is_refused(self, daemon) -> None:
        from repro.dispatch.worker import run_worker

        host, port = daemon.address
        with pytest.raises(DispatchError):
            run_worker(host, port, secret="wrong", connect_timeout=5.0)
        assert daemon.stats.rejected_auth == 1

    def test_worker_with_no_secret_fails_loudly(self, daemon) -> None:
        from repro.dispatch.worker import run_worker

        host, port = daemon.address
        with pytest.raises(AuthenticationError, match="REPRO_FLEET_SECRET"):
            run_worker(host, port, secret="", connect_timeout=5.0)
