"""Unit tests for the bench baseline-series trajectory (satellite 3)."""

from __future__ import annotations

import json
import math

import pytest

from repro.bench.suite import baseline_series, trajectory_rows


def fake_payload(scale: float, rate: float) -> dict:
    """A structurally complete bench payload with every headline rate set
    to ``rate`` (the extractors only look at these fields)."""
    return {
        "scale": scale,
        "results": {
            "column_throughput": {"events_per_sec": rate},
            "sgt_checks": {
                "by_size": [
                    {"checks_per_sec": rate, "records_per_sec": rate},
                ]
            },
            "deplist_merge": {"merges_per_sec": rate},
            "scenario": {"transactions_per_wall_sec": rate},
        },
    }


class TestBaselineSeries:
    def test_numeric_ordering(self, tmp_path) -> None:
        for n in (10, 9, 2):
            (tmp_path / f"BENCH_{n}.json").write_text("{}", encoding="utf-8")
        (tmp_path / "BENCH_x.json").write_text("{}", encoding="utf-8")
        (tmp_path / "notes.md").write_text("", encoding="utf-8")
        series = baseline_series(str(tmp_path))
        assert [p.rsplit("/", 1)[-1] for p in series] == [
            "BENCH_2.json",
            "BENCH_9.json",
            "BENCH_10.json",
        ]

    def test_empty_directory(self, tmp_path) -> None:
        assert baseline_series(str(tmp_path)) == []


class TestTrajectoryRows:
    def test_one_row_per_metric_one_column_per_point(self) -> None:
        series = [
            ("BENCH_4", fake_payload(1.0, 100.0)),
            ("BENCH_5", fake_payload(1.0, 150.0)),
            ("current", fake_payload(1.0, 200.0)),
        ]
        rows = trajectory_rows(series)
        assert len(rows) == 5
        for row in rows:
            assert row["BENCH_4"] == 100.0
            assert row["BENCH_5"] == 150.0
            assert row["current"] == 200.0
            assert row["total_ratio"] == 2.0
            assert row["regressed"] is False

    def test_ratio_is_newest_over_oldest(self) -> None:
        series = [
            ("a", fake_payload(1.0, 100.0)),
            ("b", fake_payload(1.0, 500.0)),  # the middle point is ignored
            ("c", fake_payload(1.0, 40.0)),
        ]
        rows = trajectory_rows(series)
        assert rows[0]["total_ratio"] == 0.4
        assert rows[0]["regressed"] is True

    def test_tolerance_bounds_the_flag(self) -> None:
        series = [
            ("a", fake_payload(1.0, 100.0)),
            ("b", fake_payload(1.0, 60.0)),
        ]
        assert all(
            row["regressed"] is False
            for row in trajectory_rows(series, tolerance=0.5)
        )
        assert all(
            row["regressed"] is True
            for row in trajectory_rows(series, tolerance=0.2)
        )

    def test_zero_baseline_handled(self) -> None:
        both_zero = trajectory_rows(
            [("a", fake_payload(1.0, 0.0)), ("b", fake_payload(1.0, 0.0))]
        )
        assert all(row["total_ratio"] == 1.0 for row in both_zero)
        from_zero = trajectory_rows(
            [("a", fake_payload(1.0, 0.0)), ("b", fake_payload(1.0, 5.0))]
        )
        assert all(math.isinf(row["total_ratio"]) for row in from_zero)

    def test_mixed_scales_refused(self) -> None:
        with pytest.raises(ValueError, match="scales differ"):
            trajectory_rows(
                [("a", fake_payload(1.0, 1.0)), ("b", fake_payload(0.5, 1.0))]
            )

    def test_empty_series_refused(self) -> None:
        with pytest.raises(ValueError, match="at least one"):
            trajectory_rows([])

    def test_single_point_is_a_valid_trajectory(self) -> None:
        rows = trajectory_rows([("only", fake_payload(1.0, 10.0))])
        assert all(row["total_ratio"] == 1.0 for row in rows)

    def test_committed_baseline_parses(self, tmp_path) -> None:
        """The repo's own committed series must feed the trajectory."""
        import os

        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        series = baseline_series(repo_root)
        assert series, "the repo should commit at least one BENCH_<n>.json"
        loaded = []
        for path in series:
            with open(path, encoding="utf-8") as handle:
                name = os.path.basename(path).rsplit(".", 1)[0]
                loaded.append((name, json.load(handle)))
        rows = trajectory_rows(loaded)
        assert len(rows) == 5
