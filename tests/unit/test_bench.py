"""Unit tests for the tracked performance suite (repro.bench)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import BENCH_SCHEMA, compare_payloads, run_suite
from repro.bench.suite import sgt_history, sgt_read_sets
from repro.experiments.__main__ import main

#: Small enough for unit-test latency, big enough that every probe runs.
SCALE = 0.05


@pytest.fixture(scope="module")
def payload() -> dict:
    return run_suite(scale=SCALE)


class TestSuitePayload:
    def test_schema_and_sections(self, payload: dict) -> None:
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["scale"] == SCALE
        results = payload["results"]
        assert set(results) == {
            "column_throughput",
            "sgt_checks",
            "deplist_merge",
            "scenario",
            "telemetry_overhead",
        }

    def test_column_probe_measures_events(self, payload: dict) -> None:
        column = payload["results"]["column_throughput"]
        assert column["events"] > 0
        assert column["events_per_sec"] > 0
        assert column["cache_reads"] > 0

    def test_sgt_probe_covers_three_sizes(self, payload: dict) -> None:
        by_size = payload["results"]["sgt_checks"]["by_size"]
        assert [entry["history_size"] < entry2["history_size"]
                for entry, entry2 in zip(by_size, by_size[1:])] == [True, True]
        for entry in by_size:
            assert entry["checks_per_sec"] > 0
            assert entry["records_per_sec"] > 0

    def test_telemetry_overhead_probe(self, payload: dict) -> None:
        probe = payload["results"]["telemetry_overhead"]
        assert probe["events_match"], "tracing changed the simulated work"
        assert probe["trace_records"] > 0
        assert probe["untraced_events_per_sec"] > 0
        assert probe["traced_events_per_sec"] > 0
        assert probe["overhead_ratio"] > 0

    def test_payload_is_json_serialisable(self, payload: dict) -> None:
        json.dumps(payload)

    def test_workload_is_deterministic(self, payload: dict) -> None:
        """Two runs at one scale measure the same work: every determinism
        witness (event counts, verdict counts) matches."""
        again = run_suite(scale=SCALE)
        assert (
            payload["results"]["column_throughput"]["events"]
            == again["results"]["column_throughput"]["events"]
        )
        first = [e["inconsistent"] for e in payload["results"]["sgt_checks"]["by_size"]]
        second = [e["inconsistent"] for e in again["results"]["sgt_checks"]["by_size"]]
        assert first == second

    def test_bad_scale_rejected(self) -> None:
        with pytest.raises(ValueError):
            run_suite(scale=0.0)
        with pytest.raises(ValueError):
            run_suite(scale=99.0)


class TestHistoryBuilders:
    def test_history_reads_see_current_versions(self) -> None:
        txns, current, previous = sgt_history(200)
        assert len(txns) == 200
        state: dict[str, int] = {}
        for txn in txns:
            for key, version in txn.reads.items():
                assert version == state.get(key, 0)
            for key, version in txn.writes.items():
                state[key] = version
        assert state == current
        for key, version in previous.items():
            assert version < current[key]

    def test_read_sets_are_bounded_staleness(self) -> None:
        _, current, previous = sgt_history(500)
        read_sets = sgt_read_sets(current, previous, 50)
        assert len(read_sets) == 50
        for reads in read_sets:
            for key, version in reads.items():
                assert version in (current[key], previous.get(key, 0))


class TestCompare:
    def test_identical_payloads_never_regress(self, payload: dict) -> None:
        rows = compare_payloads(payload, copy.deepcopy(payload))
        assert rows and all(not row["regressed"] for row in rows)
        assert all(row["ratio"] == 1.0 for row in rows)

    def test_big_slowdown_is_flagged(self, payload: dict) -> None:
        slower = copy.deepcopy(payload)
        slower["results"]["column_throughput"]["events_per_sec"] /= 10.0
        rows = compare_payloads(slower, payload)
        flagged = {row["metric"]: row["regressed"] for row in rows}
        assert flagged["column events/sec"] is True

    def test_mismatched_scales_refused(self, payload: dict) -> None:
        other = copy.deepcopy(payload)
        other["scale"] = 1.0
        with pytest.raises(ValueError, match="scales differ"):
            compare_payloads(payload, other)


class TestBenchCommand:
    def test_bench_writes_payload_and_diffs_baseline(
        self, tmp_path, capsys
    ) -> None:
        out = tmp_path / "bench.json"
        assert main(["bench", "--bench-scale", str(SCALE), "--json", str(out)]) == 0
        written = json.loads(out.read_text())
        assert written["schema"] == BENCH_SCHEMA

        # Report-only drift: exits 0 even if rates moved.
        assert (
            main(
                [
                    "bench",
                    "--bench-scale",
                    str(SCALE),
                    "--baseline",
                    str(out),
                ]
            )
            == 0
        )
        captured = capsys.readouterr().out
        assert "Drift vs" in captured

    def test_bench_scale_mismatch_fails_loudly(self, tmp_path) -> None:
        out = tmp_path / "bench.json"
        assert main(["bench", "--bench-scale", str(SCALE), "--json", str(out)]) == 0
        assert (
            main(["bench", "--bench-scale", "0.1", "--baseline", str(out)]) == 1
        )

    def test_baseline_outside_bench_rejected(self) -> None:
        with pytest.raises(SystemExit):
            main(["fig3", "--baseline", "whatever.json"])

    def test_profile_writes_stats_file(self, tmp_path) -> None:
        import pstats

        profile_path = tmp_path / "bench.prof"
        assert (
            main(
                [
                    "bench",
                    "--bench-scale",
                    str(SCALE),
                    "--profile",
                    str(profile_path),
                ]
            )
            == 0
        )
        stats = pstats.Stats(str(profile_path))
        assert stats.total_calls > 0
