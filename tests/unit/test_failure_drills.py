"""Unit tests for declarative invalidation outages and the drill fleets."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenario import (
    EdgeSpec,
    ScenarioSpec,
    capacity_planning_sweep,
    region_failure_drill,
    run_scenario,
)
from repro.workloads.synthetic import PerfectClusterWorkload


def one_edge_spec(**edge_overrides) -> ScenarioSpec:
    return ScenarioSpec(
        name="outage-test",
        seed=3,
        duration=6.0,
        warmup=0.0,
        edges=[
            EdgeSpec(
                name="edge0",
                workload=PerfectClusterWorkload(n_objects=120, cluster_size=5),
                **edge_overrides,
            )
        ],
    )


class TestInvalidationOutages:
    def test_windows_validated(self) -> None:
        with pytest.raises(ConfigurationError, match="outage window"):
            one_edge_spec(invalidation_outages=((3.0, 2.0),))
        with pytest.raises(ConfigurationError, match="outage window"):
            one_edge_spec(invalidation_outages=((-1.0, 2.0),))
        spec = one_edge_spec(invalidation_outages=((1.0, 2.0), (4.0, 5.0)))
        assert spec.edges[0].invalidation_outages == ((1.0, 2.0), (4.0, 5.0))

    def test_round_trips_through_json(self) -> None:
        spec = one_edge_spec(invalidation_outages=((1.5, 2.5),))
        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert back.edges[0].invalidation_outages == ((1.5, 2.5),)
        assert back.as_dict() == spec.as_dict()

    def test_runner_applies_windows_to_the_channel(self) -> None:
        # Lossless channel + full-run outage window: nothing may deliver.
        blacked_out = run_scenario(
            one_edge_spec(
                invalidation_loss=0.0, invalidation_outages=((0.0, 6.0),)
            )
        )
        clean = run_scenario(one_edge_spec(invalidation_loss=0.0))
        assert blacked_out.edges[0].channel_stats.delivered == 0
        assert blacked_out.edges[0].channel_stats.dropped > 0
        assert clean.edges[0].channel_stats.dropped == 0

    def test_window_outside_run_changes_nothing(self) -> None:
        base = run_scenario(one_edge_spec())
        gated = run_scenario(one_edge_spec(invalidation_outages=((100.0, 200.0),)))
        assert gated.edges[0].counts == base.edges[0].counts
        assert gated.edges[0].channel_stats == base.edges[0].channel_stats


class TestRegionFailureDrill:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError, match="2 regions"):
            region_failure_drill(regions=1)
        with pytest.raises(ConfigurationError, match="failed_region"):
            region_failure_drill(regions=2, failed_region=2)
        with pytest.raises(ConfigurationError, match="takeover_fraction"):
            region_failure_drill(takeover_fraction=1.5)
        with pytest.raises(ConfigurationError, match="fail_at"):
            region_failure_drill(fail_at=10.0, recover_at=5.0)

    def test_topology_shape(self) -> None:
        spec = region_failure_drill(regions=3, duration=10.0, warmup=2.0)
        assert len(spec.backends) == 3
        assert len(spec.edges) == 3
        assert spec.placement == {
            "region0": "region0-db",
            "region1": "region1-db",
            "region2": "region2-db",
        }
        # Only the failed region's channel blacks out; the default window
        # sits inside the measured part of the run.
        (window,) = spec.edge("region0").invalidation_outages
        assert 2.0 <= window[0] < window[1] <= 12.0
        assert spec.edge("region1").invalidation_outages == ()

    def test_spec_is_portable(self) -> None:
        spec = region_failure_drill(
            regions=2, objects_per_region=80, duration=2.0, warmup=0.5
        )
        back = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert back.as_dict() == spec.as_dict()

    def test_survivors_absorb_displaced_load(self) -> None:
        """After the failure the surviving backend serves reads of the
        failed region's replica keys, so its key universe must include them
        and its commits keep flowing."""
        from repro.scenario.runner import _initial_objects

        spec = region_failure_drill(
            regions=2,
            objects_per_region=60,
            duration=4.0,
            warmup=0.5,
            takeover_fraction=0.8,
        )
        # Replica slice (keys o000000..o000059 belong to region0) loaded on
        # the survivor's independent namespace at build time.
        survivor_keys = _initial_objects(spec, spec.backend("region1-db"))
        assert "o000000" in survivor_keys  # failed region's replica
        assert "o000060" in survivor_keys  # its own slice
        result = run_scenario(spec)
        for aggregate in result.backends:
            assert aggregate.update_commits > 0
        assert result.fleet.counts.total > 0


class TestCapacityPlanningSweep:
    def test_grid_shape_and_labels(self) -> None:
        sweep = capacity_planning_sweep(
            load_factors=(0.5, 1.0), shard_options=(1, 2), duration=2.0
        )
        assert len(sweep) == 4
        labels = [point.label for point in sweep.points]
        assert labels == [
            "load0.5x-shards1",
            "load0.5x-shards2",
            "load1x-shards1",
            "load1x-shards2",
        ]
        assert sweep.points[0].params == {"load_factor": 0.5, "shards": 1}
        # One shared seed: capacity comparisons hold the randomness fixed.
        assert len({point.scenario.seed for point in sweep.points}) == 1

    def test_load_factor_scales_rates(self) -> None:
        sweep = capacity_planning_sweep(
            load_factors=(1.0, 2.0), shard_options=(1,), base_read_rate=100.0
        )
        low, high = sweep.points
        assert high.scenario.edges[0].read_rate == 2 * low.scenario.edges[0].read_rate

    def test_shards_reach_the_backend_spec(self) -> None:
        sweep = capacity_planning_sweep(load_factors=(1.0,), shard_options=(3,))
        (point,) = sweep.points
        assert all(backend.shards == 3 for backend in point.scenario.backends)

    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            capacity_planning_sweep(load_factors=())
        with pytest.raises(ConfigurationError):
            capacity_planning_sweep(shard_options=())
        with pytest.raises(ConfigurationError):
            capacity_planning_sweep(load_factors=(0.0,))

    def test_points_are_dispatchable(self) -> None:
        """The capacity grid is advertised as a natural dispatch workload —
        every point must be portable."""
        from repro.experiments.sweep import SweepSpec

        sweep = capacity_planning_sweep(load_factors=(1.0,), shard_options=(1,))
        back = SweepSpec.from_dict(json.loads(json.dumps(sweep.as_dict())))
        assert back.points[0].scenario.as_dict() == (
            sweep.points[0].scenario.as_dict()
        )
