"""Unit tests for the open-loop update and read-only clients."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.clients.read_client import ReadOnlyClient
from repro.clients.update_client import UpdateClient
from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.sim.core import Simulator
from repro.workloads.synthetic import PerfectClusterWorkload, UniformWorkload
from tests.helpers import FakeBackend


@pytest.fixture
def db(sim: Simulator) -> Database:
    database = Database(
        sim, DatabaseConfig(deplist_max=5, timing=TimingConfig(0.0, 0.001, 0.0, 0.0))
    )
    workload = UniformWorkload(n_objects=50)
    database.load({key: 0 for key in workload.all_keys()})
    return database


class TestUpdateClient:
    def test_rate_is_respected(self, sim, db) -> None:
        workload = UniformWorkload(n_objects=50)
        client = UpdateClient(
            sim, db, workload, rate=100.0, rng=np.random.default_rng(1), poisson=False
        )
        sim.run(until=1.0)
        # Open loop at 100 txn/s for 1 s.
        assert client.stats.launched == pytest.approx(100, abs=2)
        assert client.stats.committed > 90

    def test_poisson_arrivals_average_to_rate(self, sim, db) -> None:
        workload = UniformWorkload(n_objects=50)
        client = UpdateClient(
            sim, db, workload, rate=200.0, rng=np.random.default_rng(2)
        )
        sim.run(until=2.0)
        assert client.stats.launched == pytest.approx(400, rel=0.15)

    def test_updates_actually_write(self, sim, db) -> None:
        workload = UniformWorkload(n_objects=50)
        UpdateClient(sim, db, workload, rate=50.0, rng=np.random.default_rng(3))
        sim.run(until=1.0)
        versions = [
            db.read_entry(key).version for key in workload.all_keys()
        ]
        assert max(versions) > 0

    def test_commit_accounting_is_consistent(self, sim, db) -> None:
        workload = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        client = UpdateClient(
            sim, db, workload, rate=300.0, rng=np.random.default_rng(4)
        )
        sim.run(until=1.5)  # bounded drain: client processes never exit
        stats = client.stats
        assert stats.committed + stats.aborted - stats.retries <= stats.launched
        assert stats.committed == db.stats.committed


class TestReadOnlyClient:
    def make_cache(self, sim, db) -> TCache:
        return TCache(sim, db, strategy=Strategy.ABORT)

    def test_rate_and_commits(self, sim, db) -> None:
        workload = UniformWorkload(n_objects=50)
        cache = self.make_cache(sim, db)
        client = ReadOnlyClient(
            sim,
            cache,
            workload,
            rate=100.0,
            rng=np.random.default_rng(5),
            txn_ids=itertools.count(1),
            poisson=False,
        )
        sim.run(until=1.0)
        assert client.stats.launched == pytest.approx(100, abs=2)
        assert client.stats.committed == cache.stats.transactions_committed
        assert client.stats.reads > 400

    def test_aborts_are_counted(self, sim) -> None:
        backend = FakeBackend({"a": "a0", "b": "b0"})
        cache = TCache(sim, backend, strategy=Strategy.ABORT)
        # Poison the cache: stale a, fresh b from the same update.
        cache.read(999, "a", last_op=True)
        backend.commit(["a", "b"])
        cache.storage.evict("b")

        class PairWorkload:
            def access_set(self, rng, now):
                return ["b", "a"]

            def all_keys(self):
                return ["a", "b"]

        client = ReadOnlyClient(
            sim,
            cache,
            PairWorkload(),
            rate=10.0,
            rng=np.random.default_rng(6),
            txn_ids=itertools.count(1),
            read_gap=0.0,
            poisson=False,
        )
        sim.run(until=0.35)
        assert client.stats.aborted >= 1

    def test_retry_aborted_reads(self, sim) -> None:
        backend = FakeBackend({"a": "a0", "b": "b0"})
        cache = TCache(sim, backend, strategy=Strategy.EVICT)
        cache.read(999, "a", last_op=True)
        backend.commit(["a", "b"])
        cache.storage.evict("b")

        class PairWorkload:
            def access_set(self, rng, now):
                return ["b", "a"]

            def all_keys(self):
                return ["a", "b"]

        client = ReadOnlyClient(
            sim,
            cache,
            PairWorkload(),
            rate=10.0,
            rng=np.random.default_rng(7),
            txn_ids=itertools.count(1),
            read_gap=0.0,
            poisson=False,
            retry_aborted=True,
        )
        sim.run(until=0.25)
        # EVICT removed the stale entry, so the retry commits.
        assert client.stats.retried_transactions >= 1
        assert client.stats.committed >= 1

    def test_retry_accounting_counts_logical_transactions_once(self, sim) -> None:
        """A retried transaction launches once; retries show up in attempts.

        Regression test: launches used to be re-counted per attempt, so
        ``committed + aborted`` could exceed ``launched``.
        """
        backend = FakeBackend({"a": "a0", "b": "b0"})
        cache = TCache(sim, backend, strategy=Strategy.EVICT)
        cache.read(999, "a", last_op=True)
        backend.commit(["a", "b"])
        cache.storage.evict("b")

        class PairWorkload:
            def access_set(self, rng, now):
                return ["b", "a"]

            def all_keys(self):
                return ["a", "b"]

        client = ReadOnlyClient(
            sim,
            cache,
            PairWorkload(),
            rate=10.0,
            rng=np.random.default_rng(9),
            txn_ids=itertools.count(1),
            read_gap=0.0,
            poisson=False,
            retry_aborted=True,
        )
        sim.run(until=0.55)
        stats = client.stats
        assert stats.retried_transactions >= 1
        assert stats.attempts == stats.launched + stats.retried_transactions
        assert stats.committed + stats.aborted <= stats.launched
        assert stats.attempts > stats.launched

    def test_aborted_counts_only_exhausted_transactions(self, sim) -> None:
        """With retries disabled every abort is final: the legacy equality
        ``committed + aborted == launched`` (for finished transactions) and
        ``attempts == launched`` still hold."""
        backend = FakeBackend({"a": "a0", "b": "b0"})
        cache = TCache(sim, backend, strategy=Strategy.ABORT)
        cache.read(999, "a", last_op=True)
        backend.commit(["a", "b"])
        cache.storage.evict("b")

        class PairWorkload:
            def access_set(self, rng, now):
                return ["b", "a"]

            def all_keys(self):
                return ["a", "b"]

        client = ReadOnlyClient(
            sim,
            cache,
            PairWorkload(),
            rate=10.0,
            rng=np.random.default_rng(10),
            txn_ids=itertools.count(1),
            read_gap=0.0,
            poisson=False,
        )
        sim.run(until=0.55)
        stats = client.stats
        assert stats.aborted >= 1
        assert stats.attempts == stats.launched
        assert stats.committed + stats.aborted == stats.launched

    def test_txn_ids_are_unique(self, sim, db) -> None:
        workload = UniformWorkload(n_objects=50)
        cache = self.make_cache(sim, db)
        ids = itertools.count(100)
        records = []
        cache.add_transaction_listener(records.append)
        ReadOnlyClient(
            sim, cache, workload, rate=50.0, rng=np.random.default_rng(8),
            txn_ids=ids, poisson=False,
        )
        sim.run(until=1.2)
        seen = [record.txn_id for record in records]
        assert len(seen) == len(set(seen))
