"""Unit tests for lossy/delaying channels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.channel import Channel
from repro.sim.core import Simulator


def make_channel(sim, received, **kwargs):
    return Channel(sim, received.append, **kwargs)


class TestDelivery:
    def test_message_delivered_after_fixed_latency(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, latency=0.5)
        channel.send("hello")
        sim.run(until=0.4)
        assert received == []
        sim.run()
        assert received == ["hello"]
        assert sim.now == 0.5

    def test_delivery_is_never_synchronous(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, latency=0.0)
        channel.send("m")
        assert received == []  # not yet: async even at zero latency
        sim.run()
        assert received == ["m"]

    def test_order_preserved_with_constant_latency(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, latency=0.1)
        for i in range(5):
            channel.send(i)
        sim.run()
        assert received == [0, 1, 2, 3, 4]
        assert channel.stats.reordered == 0

    def test_random_latency_can_reorder(self, sim: Simulator) -> None:
        rng = np.random.default_rng(7)
        received = []
        channel = make_channel(
            sim, received, latency=lambda r: float(r.exponential(1.0)), rng=rng
        )
        for i in range(200):
            channel.send(i)
        sim.run()
        assert sorted(received) == list(range(200))
        assert channel.stats.reordered > 0

    def test_stats_track_latency(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, latency=0.25)
        channel.send("a")
        channel.send("b")
        sim.run()
        assert channel.stats.delivered == 2
        assert channel.stats.mean_latency == pytest.approx(0.25)


class TestLoss:
    def test_loss_probability_zero_delivers_everything(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, latency=0.0, loss_probability=0.0,
                               rng=np.random.default_rng(1))
        for i in range(100):
            channel.send(i)
        sim.run()
        assert len(received) == 100
        assert channel.stats.dropped == 0

    def test_loss_probability_one_drops_everything(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, loss_probability=1.0,
                               rng=np.random.default_rng(1))
        for i in range(50):
            assert channel.send(i) is False
        sim.run()
        assert received == []
        assert channel.stats.dropped == 50

    def test_twenty_percent_loss_is_roughly_twenty_percent(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, loss_probability=0.2,
                               rng=np.random.default_rng(42))
        n = 5000
        for i in range(n):
            channel.send(i)
        sim.run()
        assert channel.stats.loss_ratio == pytest.approx(0.2, abs=0.02)
        assert len(received) + channel.stats.dropped == n

    def test_send_reports_drop(self, sim: Simulator) -> None:
        channel = make_channel(sim, [], loss_probability=1.0,
                               rng=np.random.default_rng(1))
        assert channel.send("x") is False


class TestValidation:
    def test_invalid_loss_probability_rejected(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError):
            make_channel(sim, [], loss_probability=1.5, rng=np.random.default_rng(1))

    def test_randomness_without_rng_rejected(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError):
            make_channel(sim, [], loss_probability=0.5)
        with pytest.raises(ConfigurationError):
            make_channel(sim, [], latency=lambda r: 1.0)

    def test_negative_sampled_latency_rejected(self, sim: Simulator) -> None:
        channel = make_channel(sim, [], latency=lambda r: -1.0,
                               rng=np.random.default_rng(1))
        with pytest.raises(ConfigurationError):
            channel.send("x")


class TestBurstyLoss:
    def test_outage_window_drops_everything(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, latency=0.0)
        channel.outage(1.0, 2.0)

        sent_results = []

        def sender():
            for _ in range(30):
                sent_results.append(channel.send(sim.now))
                yield sim.timeout(0.1)

        sim.process(sender())
        sim.run()
        # Messages timestamped within [1.0, 2.0) were dropped.
        assert all(m < 1.01 or m >= 1.99 for m in received if not 1.01 <= m <= 1.99)
        assert channel.stats.dropped == sum(1 for ok in sent_results if not ok)
        # ~10 of the 30 sends land in the window (float boundary slack).
        assert 9 <= channel.stats.dropped <= 11
        assert not any(1.05 <= m <= 1.95 for m in received)

    def test_outage_composes_with_base_loss(self, sim: Simulator) -> None:
        received = []
        channel = make_channel(sim, received, loss_probability=0.5,
                               rng=np.random.default_rng(3))
        channel.outage(0.0, 10.0)
        for i in range(20):
            assert channel.send(i) is False
        sim.run()
        assert received == []

    def test_empty_outage_rejected(self, sim: Simulator) -> None:
        channel = make_channel(sim, [])
        with pytest.raises(ConfigurationError):
            channel.outage(2.0, 2.0)

    def test_callable_loss_probability(self, sim: Simulator) -> None:
        received = []
        # Total loss during [1, 2), clean otherwise.
        channel = make_channel(
            sim, received,
            loss_probability=lambda now: 1.0 if 1.0 <= now < 2.0 else 0.0,
            rng=np.random.default_rng(4),
        )

        def sender():
            for _ in range(30):
                channel.send(sim.now)
                yield sim.timeout(0.1)

        sim.process(sender())
        sim.run()
        assert all(m < 1.0 or m >= 2.0 for m in received)

    def test_invalid_callable_result_rejected(self, sim: Simulator) -> None:
        channel = make_channel(sim, [], loss_probability=lambda now: 1.5,
                               rng=np.random.default_rng(5))
        with pytest.raises(ConfigurationError):
            channel.send("x")
