"""Unit tests for cache storage: TTL expiry, capacity LRU, invalidation."""

from __future__ import annotations

from repro.cache.base import CacheStorage
from repro.types import VersionedValue


def entry(key: str, version: int = 1, value: object = None) -> VersionedValue:
    return VersionedValue(key=key, value=value if value is not None else key, version=version)


class TestBasicOperations:
    def test_put_then_get(self) -> None:
        storage = CacheStorage()
        storage.put(entry("a", 1), now=0.0)
        cached = storage.get("a", now=1.0)
        assert cached is not None and cached.version == 1

    def test_get_missing_returns_none(self) -> None:
        assert CacheStorage().get("ghost", now=0.0) is None

    def test_put_newer_version_replaces(self) -> None:
        storage = CacheStorage()
        storage.put(entry("a", 1), now=0.0)
        storage.put(entry("a", 5), now=0.0)
        assert storage.version_of("a") == 5

    def test_put_older_version_is_ignored(self) -> None:
        """A racing re-fetch must never roll the cache backwards."""
        storage = CacheStorage()
        storage.put(entry("a", 5), now=0.0)
        storage.put(entry("a", 3), now=0.0)
        assert storage.version_of("a") == 5

    def test_len_and_contains(self) -> None:
        storage = CacheStorage()
        storage.put(entry("a"), now=0.0)
        assert len(storage) == 1
        assert "a" in storage and "b" not in storage


class TestInvalidation:
    def test_invalidation_removes_older_entry(self) -> None:
        storage = CacheStorage()
        storage.put(entry("a", 3), now=0.0)
        assert storage.invalidate("a", version=5) is True
        assert storage.get("a", now=0.0) is None

    def test_late_invalidation_ignored(self) -> None:
        """Reordered invalidations for versions the cache already has (or
        newer) must not evict fresh data."""
        storage = CacheStorage()
        storage.put(entry("a", 7), now=0.0)
        assert storage.invalidate("a", version=7) is False
        assert storage.invalidate("a", version=5) is False
        assert storage.version_of("a") == 7

    def test_invalidation_of_uncached_key_ignored(self) -> None:
        assert CacheStorage().invalidate("ghost", version=1) is False

    def test_explicit_evict(self) -> None:
        storage = CacheStorage()
        storage.put(entry("a"), now=0.0)
        assert storage.evict("a") is True
        assert storage.evict("a") is False


class TestTTL:
    def test_entry_expires_after_ttl(self) -> None:
        storage = CacheStorage(ttl=10.0)
        storage.put(entry("a"), now=0.0)
        assert storage.get("a", now=9.9) is not None
        assert storage.get("a", now=10.0) is None
        assert storage.stats.ttl_expirations == 1

    def test_reinsert_resets_ttl(self) -> None:
        storage = CacheStorage(ttl=10.0)
        storage.put(entry("a", 1), now=0.0)
        storage.put(entry("a", 2), now=8.0)
        assert storage.get("a", now=15.0) is not None

    def test_reads_do_not_extend_ttl(self) -> None:
        """TTL measures residence time since insertion, not since last use;
        otherwise hot stale entries would never expire."""
        storage = CacheStorage(ttl=10.0)
        storage.put(entry("a"), now=0.0)
        storage.get("a", now=9.0)
        assert storage.get("a", now=10.5) is None


class TestCapacity:
    def test_capacity_evicts_least_recently_used(self) -> None:
        storage = CacheStorage(capacity=2)
        storage.put(entry("a"), now=0.0)
        storage.put(entry("b"), now=0.0)
        storage.get("a", now=0.0)  # a is now more recent than b
        storage.put(entry("c"), now=0.0)
        assert "b" not in storage
        assert "a" in storage and "c" in storage
        assert storage.stats.capacity_evictions == 1

    def test_capacity_one(self) -> None:
        storage = CacheStorage(capacity=1)
        storage.put(entry("a"), now=0.0)
        storage.put(entry("b"), now=0.0)
        assert "a" not in storage and "b" in storage
