"""Unit tests for the parallel sweep engine.

The load-bearing property: a sweep's results are a pure function of its
spec — the executor (serial or process pool) must never show through.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError, DispatchError
from repro.experiments.config import ColumnConfig
from repro.experiments.sweep import (
    SweepPoint,
    SweepSpec,
    config_as_dict,
    config_from_dict,
    derive_seed,
    ordered_results,
    resolve_jobs,
    run_sweep,
    spec_artifact,
)
from repro.workloads.synthetic import PerfectClusterWorkload, UniformWorkload


def tiny_spec(n_points: int = 3, duration: float = 1.0) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
    config = ColumnConfig(seed=1, duration=duration, warmup=0.5)
    return SweepSpec(
        name="tiny",
        root_seed=1,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(1, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_points)
        ],
    )


class TestPointValidation:
    def test_column_point_requires_config_and_workload(self) -> None:
        with pytest.raises(ConfigurationError):
            SweepPoint(label="bare")
        with pytest.raises(ConfigurationError):
            SweepPoint(label="no-workload", config=ColumnConfig(seed=1))

    def test_scenario_point_excludes_column_fields(self) -> None:
        from repro.scenario import heterogeneous_loss_fleet

        scenario = heterogeneous_loss_fleet(edges=2, duration=1.0)
        point = SweepPoint(label="fleet", scenario=scenario)
        assert point.scenario is scenario
        with pytest.raises(ConfigurationError):
            SweepPoint(
                label="both",
                scenario=scenario,
                config=ColumnConfig(seed=1),
                workload=PerfectClusterWorkload(n_objects=100, cluster_size=5),
            )


class TestScenarioPoints:
    def test_mixed_sweep_executes_both_point_kinds(self) -> None:
        from repro.scenario import ScenarioResult, heterogeneous_loss_fleet
        from repro.experiments.runner import ColumnResult

        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        spec = SweepSpec(
            name="mixed",
            points=[
                SweepPoint(
                    label="column",
                    config=ColumnConfig(seed=1, duration=1.0, warmup=0.5),
                    workload=workload,
                ),
                SweepPoint(
                    label="fleet",
                    scenario=heterogeneous_loss_fleet(
                        edges=2, n_objects=100, duration=1.0, warmup=0.5
                    ),
                ),
            ],
        )
        sweep = run_sweep(spec, jobs=1)
        assert isinstance(sweep.result_for("column"), ColumnResult)
        assert isinstance(sweep.result_for("fleet"), ScenarioResult)

        artifact = json.loads(json.dumps(sweep.to_artifact()))
        column, fleet = artifact["columns"]
        assert "counts" in column and "config" in column
        assert "result" in fleet and "scenario" in fleet
        assert len(fleet["result"]["edges"]) == 2


class TestSpecValidation:
    def test_duplicate_labels_rejected(self) -> None:
        point = tiny_spec(1).points[0]
        with pytest.raises(ConfigurationError):
            SweepSpec(name="dup", points=[point, replace(point)])

    def test_len_counts_points(self) -> None:
        assert len(tiny_spec(3)) == 3

    def test_derive_seed_is_deterministic_and_distinct(self) -> None:
        seeds = [derive_seed(11, index) for index in range(8)]
        assert seeds == [derive_seed(11, index) for index in range(8)]
        assert len(set(seeds)) == 8

    def test_derive_seed_rejects_negative_index(self) -> None:
        with pytest.raises(ConfigurationError):
            derive_seed(1, -1)


class TestResolveJobs:
    def test_none_means_all_cpus(self) -> None:
        assert resolve_jobs(None) >= 1

    def test_explicit_value_passes_through(self) -> None:
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_non_positive_rejected(self, jobs) -> None:
        with pytest.raises(ConfigurationError):
            resolve_jobs(jobs)


class TestExecution:
    def test_serial_results_in_spec_order(self) -> None:
        sweep = run_sweep(tiny_spec(3), jobs=1)
        assert [point.label for point, _ in sweep.pairs()] == [
            "col0", "col1", "col2",
        ]
        assert len(sweep.results) == 3
        assert sweep.jobs == 1
        assert sweep.wall_clock_seconds > 0.0
        for result in sweep.results:
            assert result.counts.total > 0

    def test_parallel_matches_serial_byte_for_byte(self) -> None:
        spec = tiny_spec(3)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(tiny_spec(3), jobs=4)
        for left, right in zip(serial.results, parallel.results):
            assert json.dumps(left.series) == json.dumps(right.series)
            assert left.counts == right.counts
            assert left.cache_stats == right.cache_stats

    def test_result_for_label(self) -> None:
        sweep = run_sweep(tiny_spec(2), jobs=1)
        assert sweep.result_for("col1") is sweep.results[1]
        with pytest.raises(KeyError):
            sweep.result_for("missing")

    def test_empty_spec_runs_to_empty_result(self) -> None:
        sweep = run_sweep(SweepSpec(name="empty", points=[]), jobs=4)
        assert sweep.results == []


class OpaqueWorkload:
    """A workload outside the portable synthetic families."""

    def access_set(self, rng, now):  # pragma: no cover - never executed
        return []

    def all_keys(self):
        return ["o%06d" % index for index in range(10)]


class TestOrderedResults:
    def test_restores_index_order(self) -> None:
        assert ordered_results(3, {2: "c", 0: "a", 1: "b"}) == ["a", "b", "c"]
        assert ordered_results(0, {}) == []

    def test_missing_indices_fail_loudly(self) -> None:
        with pytest.raises(DispatchError, match=r"\[1\]"):
            ordered_results(2, {0: "a"})


class TestSpecRoundTrip:
    def test_column_spec_round_trips_through_json(self) -> None:
        spec = tiny_spec(3)
        payload = json.loads(json.dumps(spec.as_dict()))
        back = SweepSpec.from_dict(payload)
        assert back.as_dict() == spec.as_dict()
        assert [p.label for p in back.points] == [p.label for p in spec.points]
        assert back.points[1].config == spec.points[1].config

    def test_rebuilt_spec_runs_identically(self) -> None:
        spec = tiny_spec(2)
        back = SweepSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        original = run_sweep(spec, jobs=1)
        replayed = run_sweep(back, jobs=1)
        for left, right in zip(original.results, replayed.results):
            assert json.dumps(left.series) == json.dumps(right.series)
            assert left.counts == right.counts

    def test_scenario_point_round_trips(self) -> None:
        from repro.scenario import heterogeneous_loss_fleet

        point = SweepPoint(
            label="fleet",
            scenario=heterogeneous_loss_fleet(edges=2, duration=1.0),
            params={"edges": 2},
        )
        back = SweepPoint.from_dict(json.loads(json.dumps(point.as_dict())))
        assert back.scenario.as_dict() == point.scenario.as_dict()
        assert back.params == {"edges": 2}

    def test_read_workload_travels(self) -> None:
        point = SweepPoint(
            label="split",
            config=ColumnConfig(seed=1, duration=1.0),
            workload=PerfectClusterWorkload(n_objects=100, cluster_size=5),
            read_workload=UniformWorkload(n_objects=100),
        )
        back = SweepPoint.from_dict(json.loads(json.dumps(point.as_dict())))
        assert isinstance(back.read_workload, UniformWorkload)
        assert back.read_workload.n_objects == 100

    def test_non_portable_workload_recorded_as_null(self) -> None:
        point = SweepPoint(
            label="opaque",
            config=ColumnConfig(seed=1, duration=1.0),
            workload=OpaqueWorkload(),
        )
        payload = point.as_dict()
        assert payload["workload"] == "OpaqueWorkload"
        assert payload["workload_spec"] is None
        json.dumps(payload)  # still a valid, descriptive artifact

    def test_non_portable_point_fails_loudly_on_rebuild(self) -> None:
        point = SweepPoint(
            label="opaque",
            config=ColumnConfig(seed=1, duration=1.0),
            workload=OpaqueWorkload(),
        )
        with pytest.raises(ConfigurationError, match="portable"):
            SweepPoint.from_dict(point.as_dict())
        spec = SweepSpec(name="s", points=[point])
        with pytest.raises(ConfigurationError, match="portable"):
            SweepSpec.from_dict(spec_artifact(spec))

    def test_non_portable_read_workload_fails_loudly(self) -> None:
        point = SweepPoint(
            label="opaque-read",
            config=ColumnConfig(seed=1, duration=1.0),
            workload=PerfectClusterWorkload(n_objects=100, cluster_size=5),
            read_workload=OpaqueWorkload(),
        )
        payload = point.as_dict()
        assert payload["read_workload_spec"] is None
        with pytest.raises(ConfigurationError, match="read_workload_spec"):
            SweepPoint.from_dict(payload)

    def test_payload_without_columns_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="columns"):
            SweepSpec.from_dict({"spec": "x"})


class TestConfigRoundTrip:
    def test_defaults_and_enums_round_trip(self) -> None:
        from repro.core.strategies import Strategy

        config = ColumnConfig(
            seed=5, duration=3.0, strategy=Strategy.EVICT, deplist_max=7
        )
        back = config_from_dict(json.loads(json.dumps(config_as_dict(config))))
        assert back == config

    def test_unknown_enum_name_rejected(self) -> None:
        payload = config_as_dict(ColumnConfig(seed=1))
        payload["strategy"] = "PANIC"
        with pytest.raises(ConfigurationError, match="enum"):
            config_from_dict(payload)

    def test_misspelled_field_rejected(self) -> None:
        payload = config_as_dict(ColumnConfig(seed=1))
        payload["seeed"] = 3
        with pytest.raises(ConfigurationError, match="seeed"):
            config_from_dict(payload)


class TestArtifacts:
    def test_config_as_dict_is_json_safe(self) -> None:
        payload = config_as_dict(ColumnConfig(seed=3, duration=2.0))
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["seed"] == 3
        assert back["strategy"] == "ABORT"
        assert back["cache_kind"] == "TCACHE"
        assert isinstance(back["timing"], dict)

    def test_artifact_round_trips_through_json(self) -> None:
        sweep = run_sweep(tiny_spec(2), jobs=1)
        artifact = sweep.to_artifact()
        back = json.loads(json.dumps(artifact))
        assert back["spec"] == "tiny"
        assert back["jobs"] == 1
        assert len(back["columns"]) == 2
        column = back["columns"][0]
        assert column["label"] == "col0"
        assert column["params"] == {"index": 0}
        assert column["config"]["seed"] == 1
        assert isinstance(column["series"], list)
        assert column["counts"]["consistent"] >= 0
