"""Unit tests for the parallel sweep engine.

The load-bearing property: a sweep's results are a pure function of its
spec — the executor (serial or process pool) must never show through.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ColumnConfig
from repro.experiments.sweep import (
    SweepPoint,
    SweepSpec,
    config_as_dict,
    derive_seed,
    resolve_jobs,
    run_sweep,
)
from repro.workloads.synthetic import PerfectClusterWorkload


def tiny_spec(n_points: int = 3, duration: float = 1.0) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
    config = ColumnConfig(seed=1, duration=duration, warmup=0.5)
    return SweepSpec(
        name="tiny",
        root_seed=1,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(1, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_points)
        ],
    )


class TestPointValidation:
    def test_column_point_requires_config_and_workload(self) -> None:
        with pytest.raises(ConfigurationError):
            SweepPoint(label="bare")
        with pytest.raises(ConfigurationError):
            SweepPoint(label="no-workload", config=ColumnConfig(seed=1))

    def test_scenario_point_excludes_column_fields(self) -> None:
        from repro.scenario import heterogeneous_loss_fleet

        scenario = heterogeneous_loss_fleet(edges=2, duration=1.0)
        point = SweepPoint(label="fleet", scenario=scenario)
        assert point.scenario is scenario
        with pytest.raises(ConfigurationError):
            SweepPoint(
                label="both",
                scenario=scenario,
                config=ColumnConfig(seed=1),
                workload=PerfectClusterWorkload(n_objects=100, cluster_size=5),
            )


class TestScenarioPoints:
    def test_mixed_sweep_executes_both_point_kinds(self) -> None:
        from repro.scenario import ScenarioResult, heterogeneous_loss_fleet
        from repro.experiments.runner import ColumnResult

        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        spec = SweepSpec(
            name="mixed",
            points=[
                SweepPoint(
                    label="column",
                    config=ColumnConfig(seed=1, duration=1.0, warmup=0.5),
                    workload=workload,
                ),
                SweepPoint(
                    label="fleet",
                    scenario=heterogeneous_loss_fleet(
                        edges=2, n_objects=100, duration=1.0, warmup=0.5
                    ),
                ),
            ],
        )
        sweep = run_sweep(spec, jobs=1)
        assert isinstance(sweep.result_for("column"), ColumnResult)
        assert isinstance(sweep.result_for("fleet"), ScenarioResult)

        artifact = json.loads(json.dumps(sweep.to_artifact()))
        column, fleet = artifact["columns"]
        assert "counts" in column and "config" in column
        assert "result" in fleet and "scenario" in fleet
        assert len(fleet["result"]["edges"]) == 2


class TestSpecValidation:
    def test_duplicate_labels_rejected(self) -> None:
        point = tiny_spec(1).points[0]
        with pytest.raises(ConfigurationError):
            SweepSpec(name="dup", points=[point, replace(point)])

    def test_len_counts_points(self) -> None:
        assert len(tiny_spec(3)) == 3

    def test_derive_seed_is_deterministic_and_distinct(self) -> None:
        seeds = [derive_seed(11, index) for index in range(8)]
        assert seeds == [derive_seed(11, index) for index in range(8)]
        assert len(set(seeds)) == 8

    def test_derive_seed_rejects_negative_index(self) -> None:
        with pytest.raises(ConfigurationError):
            derive_seed(1, -1)


class TestResolveJobs:
    def test_none_means_all_cpus(self) -> None:
        assert resolve_jobs(None) >= 1

    def test_explicit_value_passes_through(self) -> None:
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_non_positive_rejected(self, jobs) -> None:
        with pytest.raises(ConfigurationError):
            resolve_jobs(jobs)


class TestExecution:
    def test_serial_results_in_spec_order(self) -> None:
        sweep = run_sweep(tiny_spec(3), jobs=1)
        assert [point.label for point, _ in sweep.pairs()] == [
            "col0", "col1", "col2",
        ]
        assert len(sweep.results) == 3
        assert sweep.jobs == 1
        assert sweep.wall_clock_seconds > 0.0
        for result in sweep.results:
            assert result.counts.total > 0

    def test_parallel_matches_serial_byte_for_byte(self) -> None:
        spec = tiny_spec(3)
        serial = run_sweep(spec, jobs=1)
        parallel = run_sweep(tiny_spec(3), jobs=4)
        for left, right in zip(serial.results, parallel.results):
            assert json.dumps(left.series) == json.dumps(right.series)
            assert left.counts == right.counts
            assert left.cache_stats == right.cache_stats

    def test_result_for_label(self) -> None:
        sweep = run_sweep(tiny_spec(2), jobs=1)
        assert sweep.result_for("col1") is sweep.results[1]
        with pytest.raises(KeyError):
            sweep.result_for("missing")

    def test_empty_spec_runs_to_empty_result(self) -> None:
        sweep = run_sweep(SweepSpec(name="empty", points=[]), jobs=4)
        assert sweep.results == []


class TestArtifacts:
    def test_config_as_dict_is_json_safe(self) -> None:
        payload = config_as_dict(ColumnConfig(seed=3, duration=2.0))
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["seed"] == 3
        assert back["strategy"] == "ABORT"
        assert back["cache_kind"] == "TCACHE"
        assert isinstance(back["timing"], dict)

    def test_artifact_round_trips_through_json(self) -> None:
        sweep = run_sweep(tiny_spec(2), jobs=1)
        artifact = sweep.to_artifact()
        back = json.loads(json.dumps(artifact))
        assert back["spec"] == "tiny"
        assert back["jobs"] == 1
        assert len(back["columns"]) == 2
        column = back["columns"][0]
        assert column["label"] == "col0"
        assert column["params"] == {"index": 0}
        assert column["config"]["seed"] == 1
        assert isinstance(column["series"], list)
        assert column["counts"]["consistent"] >= 0
