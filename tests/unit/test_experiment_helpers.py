"""Unit tests for the experiment modules' pure helpers and wiring."""

from __future__ import annotations

import pytest

from repro.core.strategies import Strategy
from repro.experiments import fig4_convergence, fig5_drift
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.realistic import realistic_workload, sampled_topology
from repro.experiments.runner import build_column
from repro.workloads.synthetic import PerfectClusterWorkload


class TestPhaseSummaries:
    def make_rows(self):
        rows = []
        for t in range(0, 50):
            if t < 25:
                rows.append({"time": float(t), "consistent_tps": 300.0,
                             "inconsistent_tps": 100.0, "aborted_tps": 10.0})
            else:
                rows.append({"time": float(t), "consistent_tps": 350.0,
                             "inconsistent_tps": 10.0, "aborted_tps": 80.0})
        return rows

    def test_means_split_at_switch(self) -> None:
        summaries = fig4_convergence.phase_summaries(self.make_rows(), switch_time=25.0)
        assert summaries["before"]["inconsistent_tps"] == pytest.approx(100.0)
        assert summaries["after"]["inconsistent_tps"] == pytest.approx(10.0)
        assert summaries["after"]["aborted_tps"] == pytest.approx(80.0)

    def test_transition_windows_excluded(self) -> None:
        rows = self.make_rows()
        # Poison the transition seconds; they must not affect the means.
        rows[24]["inconsistent_tps"] = 1e9
        rows[26]["inconsistent_tps"] = 1e9
        summaries = fig4_convergence.phase_summaries(rows, switch_time=25.0)
        assert summaries["before"]["inconsistent_tps"] < 1e6
        assert summaries["after"]["inconsistent_tps"] < 1e6

    def test_empty_selection_yields_zero(self) -> None:
        summaries = fig4_convergence.phase_summaries([], switch_time=25.0)
        assert summaries["before"]["consistent_tps"] == 0.0


class TestSpikeProfile:
    def test_post_shift_vs_settled(self) -> None:
        rows = []
        for t in range(60, 240, 5):
            phase = t % 60
            value = 3.0 if phase < 15 else 0.2
            rows.append({"time": float(t), "inconsistency_ratio_pct": value,
                         "aborted_tps": 0.0})
        profile = fig5_drift.shift_spike_profile(rows, 60.0, settle=15.0)
        assert profile["post_shift_mean_pct"] == pytest.approx(3.0)
        assert profile["settled_mean_pct"] == pytest.approx(0.2)

    def test_first_epoch_skipped(self) -> None:
        rows = [{"time": 5.0, "inconsistency_ratio_pct": 50.0, "aborted_tps": 0.0}]
        profile = fig5_drift.shift_spike_profile(rows, 60.0)
        assert profile["post_shift_mean_pct"] == 0.0


class TestRealisticCache:
    def test_topologies_are_cached_per_parameters(self) -> None:
        first = sampled_topology("amazon", sample_nodes=300)
        second = sampled_topology("amazon", sample_nodes=300)
        assert first is second

    def test_unknown_workload_rejected(self) -> None:
        with pytest.raises(ValueError):
            sampled_topology("facebook")

    def test_workload_txn_size_is_five(self) -> None:
        workload = realistic_workload("orkut", sample_nodes=300)
        assert workload.txn_size == 5


class TestRunnerWiring:
    def test_build_column_wires_everything(self) -> None:
        workload = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        config = ColumnConfig(seed=1, duration=1.0, warmup=0.0)
        column = build_column(config, workload)
        # The database knows the invalidation channel.
        assert column.channel in column.database._invalidation_channels
        # Monitor taps both streams (the cache side through the scenario
        # layer's source-tagging wrapper, so assert behaviourally).
        assert column.monitor.record_update in column.database._commit_listeners
        from repro.types import ReadOnlyTransactionRecord, TransactionOutcome

        record = ReadOnlyTransactionRecord(
            txn_id=999_999, outcome=TransactionOutcome.COMMITTED
        )
        before = column.monitor.summary.read_only.total
        for listener in column.cache._txn_listeners:
            listener(record)
        assert column.monitor.summary.read_only.total == before + 1
        # The wrapper tags the records with the (single) edge's name.
        assert set(column.monitor.source_summaries) == {"edge0"}
        # All keys are loaded.
        assert column.database.read_entry(workload.all_keys()[0]).version == 0

    @pytest.mark.parametrize(
        "kind,expected",
        [
            (CacheKind.TCACHE, "TCache"),
            (CacheKind.PLAIN, "CacheServer"),
            (CacheKind.TTL, "TTLCache"),
        ],
    )
    def test_cache_kind_selection(self, kind, expected) -> None:
        workload = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        config = ColumnConfig(
            seed=1, duration=1.0, warmup=0.0, cache_kind=kind,
            ttl=10.0 if kind is CacheKind.TTL else None,
        )
        column = build_column(config, workload)
        assert type(column.cache).__name__ == expected

    def test_strategy_propagates(self) -> None:
        workload = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        config = ColumnConfig(seed=1, duration=1.0, warmup=0.0, strategy=Strategy.RETRY)
        column = build_column(config, workload)
        assert column.cache.strategy is Strategy.RETRY

    def test_separate_read_workload(self) -> None:
        updates = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        reads = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        config = ColumnConfig(seed=1, duration=1.0, warmup=0.0)
        column = build_column(config, updates, read_workload=reads)
        assert column.read_client._workload is reads
        assert column.update_client._workload is updates