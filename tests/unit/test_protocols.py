"""Unit tests for the protocol registry and the three zoo protocols."""

from __future__ import annotations

import pytest

from repro.cache.base import CacheServer
from repro.core.tcache import TCache
from repro.db.invalidation import InvalidationRecord
from repro.errors import ConfigurationError, TransactionAborted
from repro.protocols import (
    CausalCache,
    CausalService,
    LockCoherentCache,
    LockingService,
    ProtocolSpec,
    VerifiedReadCache,
    VerifiedReadService,
    get_protocol,
    protocol_for_edge,
    protocol_names,
    register_protocol,
)
from repro.protocols import registry as registry_module
from repro.scenario.spec import EdgeSpec
from repro.sim.core import Simulator
from repro.cache.kinds import CacheKind
from repro.workloads.synthetic import PerfectClusterWorkload
from tests.helpers import FakeBackend

WORKLOAD = PerfectClusterWorkload(n_objects=50, cluster_size=5)


def edge(**overrides) -> EdgeSpec:
    defaults = dict(name="edge0", workload=WORKLOAD)
    defaults.update(overrides)
    return EdgeSpec(**defaults)


class ListenedBackend(FakeBackend):
    """FakeBackend plus the commit-listener surface backend services need."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._listeners = []

    def add_commit_listener(self, listener) -> None:
        self._listeners.append(listener)

    def commit(self, keys, value=None):
        txn = super().commit(keys, value)
        for listener in self._listeners:
            listener(txn)
        return txn


class TestRegistry:
    def test_builtins_registered(self) -> None:
        names = protocol_names()
        for expected in (
            "tcache-detector",
            "multiversion",
            "ttl",
            "plain",
            "causal",
            "verified-read",
            "locking",
        ):
            assert expected in names

    def test_unknown_name_lists_registered(self) -> None:
        with pytest.raises(ConfigurationError) as excinfo:
            get_protocol("paxos")
        message = str(excinfo.value)
        assert "paxos" in message
        assert "tcache-detector" in message and "locking" in message

    def test_duplicate_registration_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol(get_protocol("causal"))

    def test_custom_registration_resolves(self) -> None:
        spec = ProtocolSpec(
            name="unit-test-protocol",
            family="test",
            description="registered by the unit suite",
            build_cache=lambda sim, db, edge_spec, service: CacheServer(
                sim, db, name=edge_spec.name
            ),
        )
        try:
            assert register_protocol(spec) is spec
            assert get_protocol("unit-test-protocol") is spec
        finally:
            registry_module._REGISTRY.pop("unit-test-protocol")

    def test_protocol_for_edge_defaults_to_cache_kind(self) -> None:
        assert protocol_for_edge(edge()).name == "tcache-detector"
        assert (
            protocol_for_edge(edge(cache_kind=CacheKind.PLAIN)).name == "plain"
        )
        assert (
            protocol_for_edge(edge(cache_kind=CacheKind.TTL, ttl=1.0)).name
            == "ttl"
        )

    def test_explicit_protocol_overrides_cache_kind(self) -> None:
        spec = protocol_for_edge(edge(protocol="locking"))
        assert spec.name == "locking"
        assert spec.zero_inconsistency is True

    def test_empty_name_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="non-empty"):
            ProtocolSpec(
                name="",
                family="test",
                description="",
                build_cache=lambda *a: None,
            )


class TestEdgeSpecIntegration:
    def test_unknown_protocol_fails_at_construction(self) -> None:
        with pytest.raises(ConfigurationError) as excinfo:
            edge(protocol="made-up")
        assert "made-up" in str(excinfo.value)
        assert "registered protocols" in str(excinfo.value)

    def test_protocol_round_trips_through_json(self) -> None:
        original = edge(protocol="verified-read", ttl=0.25)
        rebuilt = EdgeSpec.from_dict(original.as_dict())
        assert rebuilt.protocol == "verified-read"
        assert rebuilt.ttl == 0.25

    def test_legacy_payload_without_protocol_key(self) -> None:
        payload = edge().as_dict()
        payload.pop("protocol")
        assert EdgeSpec.from_dict(payload).protocol is None

    def test_unknown_cache_kind_lists_valid_names(self) -> None:
        payload = edge().as_dict()
        payload["cache_kind"] = "QUANTUM"
        with pytest.raises(ConfigurationError) as excinfo:
            EdgeSpec.from_dict(payload)
        message = str(excinfo.value)
        assert "QUANTUM" in message
        assert "TCACHE" in message and "MULTIVERSION" in message

    def test_unknown_strategy_lists_valid_names(self) -> None:
        payload = edge().as_dict()
        payload["strategy"] = "PANIC"
        with pytest.raises(ConfigurationError) as excinfo:
            EdgeSpec.from_dict(payload)
        message = str(excinfo.value)
        assert "PANIC" in message
        assert "ABORT" in message and "RETRY" in message

    def test_unknown_protocol_in_payload_lists_registered(self) -> None:
        payload = edge().as_dict()
        payload["protocol"] = "gossip"
        with pytest.raises(ConfigurationError) as excinfo:
            EdgeSpec.from_dict(payload)
        assert "gossip" in str(excinfo.value)

    def test_ttl_protocol_requires_ttl(self) -> None:
        with pytest.raises(ConfigurationError, match="positive ttl"):
            edge(protocol="ttl")

    def test_builders_match_historical_kinds(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0"})
        built = get_protocol("tcache-detector").build_cache(
            sim, backend, edge(deplist_limit=3), None
        )
        assert isinstance(built, TCache)
        assert built.deplist_limit == 3
        assert built.name == "edge0"


class TestCausalProtocol:
    def test_refuses_read_below_session_floor(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0", "b": "b0"})
        service = CausalService(sim, backend, sessions=1)
        cache = CausalCache(sim, backend, service=service)
        cache.read(1, "a", last_op=True)  # caches a@0, floor a>=0
        backend.commit(["a", "b"])  # a,b -> 1; cache keeps stale a@0
        # Reading b misses and serves b@1, whose deps pull a@1 into the floor.
        cache.read(2, "b", last_op=True)
        result = cache.read(3, "a", last_op=True)
        assert result.version == 1
        assert cache.causal_rejections == 1
        assert cache.served_below_floor == 0

    def test_sessions_span_caches_on_one_backend(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0", "b": "b0"})
        service = CausalService(sim, backend, sessions=1)
        east = CausalCache(sim, backend, service=service, name="east")
        west = CausalCache(sim, backend, service=service, name="west")
        east.read(1, "a", last_op=True)
        backend.commit(["a", "b"])
        east.read(2, "b", last_op=True)  # east learns a@1 via deps
        # West has stale a@0 cached? No — west never read a. Prime it stale:
        # serve the session at west; the shared floor forbids a@0 anywhere.
        west.read(3, "a", last_op=True)
        assert west.storage.version_of("a") == 1
        assert service.migrations >= 1

    def test_never_aborts(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0"})
        service = CausalService(sim, backend, sessions=2)
        cache = CausalCache(sim, backend, service=service)
        for txn in range(1, 20):
            backend.commit(["a"])
            cache.read(txn, "a", last_op=True)
        assert cache.stats.transactions_aborted == 0

    def test_session_count_validated(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError, match="sessions"):
            CausalService(sim, FakeBackend(), sessions=0)


class TestVerifiedReadProtocol:
    def test_every_serve_is_verified(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0"})
        service = VerifiedReadService(sim, backend)
        cache = VerifiedReadCache(sim, backend, service=service, freshness=10.0)
        cache.read(1, "a", last_op=True)
        cache.read(2, "a", last_op=True)
        assert cache.signatures_verified == 2
        assert cache.signature_failures == 0
        assert service.signatures_issued == 1  # one proof covers both

    def test_expired_proof_forces_resign(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0"})
        service = VerifiedReadService(sim, backend)
        cache = VerifiedReadCache(sim, backend, service=service, freshness=0.5)
        cache.read(1, "a", last_op=True)
        sim.schedule(1.0, lambda _: None, None)
        sim.run()  # advance past the freshness bound
        result = cache.read(2, "a", last_op=True)
        assert result.retried is True
        assert cache.proof_refreshes == 1
        assert service.signatures_issued == 2

    def test_invalidation_drops_proof(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0"})
        service = VerifiedReadService(sim, backend)
        cache = VerifiedReadCache(sim, backend, service=service, freshness=10.0)
        cache.read(1, "a", last_op=True)
        backend.commit(["a"])
        cache.handle_invalidation(
            InvalidationRecord(key="a", version=1, txn_id=1, commit_time=0.0)
        )
        result = cache.read(2, "a", last_op=True)
        assert result.version == 1
        assert cache.signature_failures == 0

    def test_tampered_mac_detected(self, sim: Simulator) -> None:
        backend = FakeBackend({"a": "a0"})
        service = VerifiedReadService(sim, backend)
        assert service.verify("a", 0, 0.0, "not-a-real-mac") is False
        assert service.verify("a", 0, 0.0, None) is False
        mac = service.sign("a", 0, 0.0)
        assert service.verify("a", 0, 0.0, mac) is True
        assert service.verify("a", 1, 0.0, mac) is False

    def test_freshness_validated(self, sim: Simulator) -> None:
        with pytest.raises(ConfigurationError, match="freshness"):
            VerifiedReadCache(
                sim,
                FakeBackend(),
                service=VerifiedReadService(sim, FakeBackend()),
                freshness=0.0,
            )


class TestLockingProtocol:
    def test_reads_always_current(self, sim: Simulator) -> None:
        backend = ListenedBackend({"a": "a0"})
        service = LockingService(sim, backend)
        cache = LockCoherentCache(sim, backend, service=service)
        cache.read(1, "a", last_op=True)
        backend.commit(["a"])
        sim.schedule(1.0, lambda _: None, None)
        sim.run()  # deliver wounds and advance past the validation stamp
        result = cache.read(2, "a", last_op=True)
        assert result.version == 1
        assert cache.validation_refreshes == 1

    def test_overwritten_read_set_wounds_the_reader(self, sim: Simulator) -> None:
        backend = ListenedBackend({"a": "a0", "b": "b0"})
        service = LockingService(sim, backend)
        cache = LockCoherentCache(sim, backend, service=service)
        cache.read(5, "a")  # open txn holds S(a)
        backend.commit(["a"])  # writer X(a) wounds txn 5
        sim.run()
        with pytest.raises(TransactionAborted):
            cache.read(5, "b", last_op=True)
        assert cache.wound_aborts == 1
        assert cache.stats.transactions_aborted == 1

    def test_commit_releases_locks(self, sim: Simulator) -> None:
        backend = ListenedBackend({"a": "a0"})
        service = LockingService(sim, backend)
        cache = LockCoherentCache(sim, backend, service=service)
        cache.read(9, "a", last_op=True)
        assert service.locks.holders("a") == {}
        assert cache.stats.transactions_committed == 1

    def test_writers_never_blocked_by_readers(self, sim: Simulator) -> None:
        backend = ListenedBackend({"a": "a0"})
        service = LockingService(sim, backend)
        cache = LockCoherentCache(sim, backend, service=service)
        cache.read(3, "a")  # reader holds S(a) in an open txn
        backend.commit(["a"])  # must not deadlock or queue forever
        assert service.write_locks_replayed == 1
        assert backend.version_of("a") == 1
