"""Unit tests for the serialization-graph tester on hand-built histories."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.monitor.sgt import SerializationGraphTester
from repro.types import CommittedTransaction


def txn(version: int, reads: dict, writes: dict) -> CommittedTransaction:
    return CommittedTransaction(txn_id=version, reads=reads, writes=writes)


def write_all(version: int, keys: list[str], read_versions: dict) -> CommittedTransaction:
    return txn(version, read_versions, {k: version for k in keys})


class TestHistoryConstruction:
    def test_duplicate_transaction_rejected(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a"], {"a": 0}))
        with pytest.raises(SimulationError):
            tester.record_update(write_all(1, ["a"], {"a": 0}))

    def test_write_version_must_match_txn_version(self) -> None:
        tester = SerializationGraphTester()
        with pytest.raises(SimulationError):
            tester.record_update(txn(2, {}, {"a": 3}))

    def test_writer_lookup(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        assert tester.writer_of("a", 1) == 1
        assert tester.writer_of("a", 0) is None
        with pytest.raises(SimulationError):
            tester.writer_of("a", 99)

    def test_next_writer_chain(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a"], {"a": 0}))
        tester.record_update(write_all(2, ["a"], {"a": 1}))
        assert tester.next_writer("a", 0) == 1
        assert tester.next_writer("a", 1) == 2
        assert tester.next_writer("a", 2) is None
        assert tester.next_writer("never-written", 0) is None


class TestConsistency:
    def test_empty_and_single_reads_are_consistent(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a"], {"a": 0}))
        assert tester.is_consistent({})
        assert tester.is_consistent({"a": 0})
        assert tester.is_consistent({"a": 1})

    def test_snapshot_of_initial_versions_is_consistent(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        assert tester.is_consistent({"a": 0, "b": 0})

    def test_snapshot_of_latest_versions_is_consistent(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        assert tester.is_consistent({"a": 1, "b": 1})

    def test_torn_read_across_one_transaction_is_inconsistent(self) -> None:
        """Reading one object before and one after the same update."""
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        assert not tester.is_consistent({"a": 0, "b": 1})
        assert not tester.is_consistent({"a": 1, "b": 0})

    def test_independent_updates_allow_mixed_versions(self) -> None:
        """Updates with no conflict can be ordered either way around the
        reader — mixed versions serialize fine."""
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a"], {"a": 0}))
        tester.record_update(write_all(2, ["b"], {"b": 0}))
        assert tester.is_consistent({"a": 0, "b": 2})
        assert tester.is_consistent({"a": 1, "b": 0})
        assert tester.is_consistent({"a": 1, "b": 2})

    def test_dependent_chain_orders_reads(self) -> None:
        """T1 writes a; T2 reads a and writes b: reading b's new version
        with a's old one is inconsistent (T2 observed T1)."""
        tester = SerializationGraphTester()
        tester.record_update(txn(1, {"a": 0}, {"a": 1}))
        tester.record_update(txn(2, {"a": 1, "b": 0}, {"b": 2}))
        assert not tester.is_consistent({"a": 0, "b": 2})
        # The other mix is fine: T between T1 and T2.
        assert tester.is_consistent({"a": 1, "b": 0})

    def test_transitive_chain(self) -> None:
        """Chain a -> b -> c across three transactions."""
        tester = SerializationGraphTester()
        tester.record_update(txn(1, {"a": 0}, {"a": 1}))
        tester.record_update(txn(2, {"a": 1, "b": 0}, {"b": 2}))
        tester.record_update(txn(3, {"b": 2, "c": 0}, {"c": 3}))
        assert not tester.is_consistent({"a": 0, "c": 3})
        assert tester.is_consistent({"a": 1, "c": 0})
        assert tester.is_consistent({"a": 1, "c": 3})

    def test_anti_dependency_cycle_detected(self) -> None:
        """The RW-edge case dependency lists cannot see (Theorem 1 boundary):
        U2 reads m (does not write it), U3 overwrites m, U1 reads U3's m and
        writes o1. Reading stale o2 with fresh o1 is non-serializable."""
        tester = SerializationGraphTester()
        tester.record_update(txn(1, {"o2": 0, "m": 0}, {"o2": 1}))   # U2
        tester.record_update(txn(2, {"m": 0}, {"m": 2}))             # U3
        tester.record_update(txn(3, {"m": 2, "o1": 0}, {"o1": 3}))   # U1
        assert not tester.is_consistent({"o2": 0, "o1": 3})
        assert tester.is_consistent({"o2": 1, "o1": 3})

    def test_write_write_chain_on_same_key(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        tester.record_update(write_all(2, ["a"], {"a": 1}))
        tester.record_update(write_all(3, ["b", "c"], {"b": 1, "c": 0}))
        # b@1 was overwritten by 3, which also wrote c@3; reading b@1 with
        # c@3 is torn across transaction 3.
        assert not tester.is_consistent({"b": 1, "c": 3})
        # Reading a@1 and c@3 serializes (2 and 3 conflict with 1, not each
        # other... a@1 -> next writer 2; path 2 -> 3? 2 wrote a, read a;
        # 3 touches b, c: no shared key, no path).
        assert tester.is_consistent({"a": 1, "c": 3})

    def test_explain_returns_witness_pair(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        witness = tester.explain_inconsistency({"a": 0, "b": 1})
        assert witness == ("a", "b")
        assert tester.explain_inconsistency({"a": 1, "b": 1}) is None

    def test_update_dag_verification(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(txn(1, {"a": 0}, {"a": 1}))
        tester.record_update(txn(2, {"a": 1, "b": 0}, {"b": 2}))
        tester.record_update(txn(3, {"b": 2}, {"b": 3}))
        assert tester.verify_update_dag()

    def test_counters(self) -> None:
        tester = SerializationGraphTester()
        tester.record_update(write_all(1, ["a", "b"], {"a": 0, "b": 0}))
        tester.is_consistent({"a": 0, "b": 1})
        tester.is_consistent({"a": 1, "b": 1})
        assert tester.checks == 2
        assert tester.update_count == 1
