"""Unit tests for the 2PC storage participant."""

from __future__ import annotations

import pytest

from repro.core.deplist import DependencyList
from repro.db.locks import LockMode
from repro.db.participant import Participant
from repro.db.wal import RecordType
from repro.errors import InvalidTransactionState, ParticipantFailure
from repro.sim.core import Simulator


@pytest.fixture
def participant(sim: Simulator) -> Participant:
    p = Participant(sim, "shard0")
    p.store.load({"a": "a0", "b": "b0"})
    return p


def start_txn(participant: Participant, txn_id: int = 1) -> None:
    participant.register_txn(txn_id, age=txn_id, on_wound=lambda _: None)


NO_DEPS: dict = {}


class TestExecution:
    def test_read_requires_lock(self, participant: Participant) -> None:
        start_txn(participant)
        with pytest.raises(InvalidTransactionState):
            participant.read(1, "a")

    def test_read_under_lock(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.SHARED)
        assert participant.read(1, "a").value == "a0"

    def test_read_latest_is_lock_free(self, participant: Participant) -> None:
        assert participant.read_latest("a").value == "a0"

    def test_write_requires_exclusive_lock(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.SHARED)
        with pytest.raises(InvalidTransactionState):
            participant.buffer_write(1, "a", "new")

    def test_write_without_lock_rejected(self, participant: Participant) -> None:
        start_txn(participant)
        with pytest.raises(InvalidTransactionState):
            participant.buffer_write(1, "a", "new")

    def test_buffered_write_invisible_until_commit(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.EXCLUSIVE)
        participant.buffer_write(1, "a", "new")
        assert participant.read_latest("a").value == "a0"


class TestTwoPhase:
    def _execute(self, participant: Participant, txn_id: int = 1) -> None:
        start_txn(participant, txn_id)
        participant.lock(txn_id, "a", LockMode.EXCLUSIVE)
        participant.buffer_write(txn_id, "a", f"new-{txn_id}")

    def test_prepare_votes_yes_and_logs(self, participant: Participant) -> None:
        self._execute(participant)
        assert participant.prepare(1) is True
        assert participant.votes_yes == 1
        prepared = [r for r in participant.wal if r.record_type is RecordType.PREPARE]
        assert len(prepared) == 1
        assert prepared[0].payload == {"a": "new-1"}

    def test_commit_installs_and_releases(self, participant: Participant) -> None:
        self._execute(participant)
        participant.prepare(1)
        installed = participant.commit(1, version=10, deps_per_key={"a": DependencyList()})
        assert [e.key for e in installed] == ["a"]
        assert participant.read_latest("a").value == "new-1"
        assert participant.read_latest("a").version == 10
        assert participant.locks.holders("a") == {}

    def test_commit_before_prepare_rejected(self, participant: Participant) -> None:
        self._execute(participant)
        with pytest.raises(InvalidTransactionState):
            participant.commit(1, version=10, deps_per_key=NO_DEPS)

    def test_prepare_without_registration_rejected(self, participant: Participant) -> None:
        with pytest.raises(InvalidTransactionState):
            participant.prepare(99)

    def test_abort_discards_buffered_writes(self, participant: Participant) -> None:
        self._execute(participant)
        participant.abort(1)
        assert participant.read_latest("a").value == "a0"
        assert participant.locks.holders("a") == {}
        aborts = [r for r in participant.wal if r.record_type is RecordType.ABORT]
        assert len(aborts) == 1

    def test_abort_after_prepare_allowed(self, participant: Participant) -> None:
        self._execute(participant)
        participant.prepare(1)
        participant.abort(1)
        assert participant.read_latest("a").value == "a0"


class TestCrashRecovery:
    def test_crashed_participant_votes_no(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.EXCLUSIVE)
        participant.buffer_write(1, "a", "new")
        participant.crash()
        assert participant.prepare(1) is False
        assert participant.votes_no == 1

    def test_crashed_participant_rejects_reads(self, participant: Participant) -> None:
        participant.crash()
        with pytest.raises(ParticipantFailure):
            participant.read_latest("a")

    def test_recover_aborts_undecided_by_presumed_abort(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.EXCLUSIVE)
        participant.buffer_write(1, "a", "new")
        participant.prepare(1)
        participant.crash()
        resolutions = participant.recover(decisions={})
        assert resolutions == {1: "aborted (presumed abort)"}
        assert participant.read_latest("a").value == "a0"

    def test_recover_completes_committed_in_doubt(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.EXCLUSIVE)
        participant.buffer_write(1, "a", "decided")
        participant.prepare(1)
        participant.crash()
        participant.recover(decisions={1: True})
        installed = participant.complete_recovered_commit(
            1, version=42, deps_per_key={"a": DependencyList()}
        )
        assert [e.value for e in installed] == ["decided"]
        assert participant.read_latest("a").version == 42

    def test_recover_while_alive_rejected(self, participant: Participant) -> None:
        with pytest.raises(ParticipantFailure):
            participant.recover(decisions={})

    def test_crash_loses_volatile_locks(self, participant: Participant) -> None:
        start_txn(participant)
        participant.lock(1, "a", LockMode.EXCLUSIVE)
        participant.crash()
        participant.recover(decisions={})
        # A fresh transaction can lock immediately: the old lock is gone.
        participant.register_txn(2, age=2, on_wound=lambda _: None)
        grant = participant.lock(2, "a", LockMode.EXCLUSIVE)
        assert grant.triggered
