"""Unit tests for the T-Cache server: detection wiring and the three
strategies (§III-B)."""

from __future__ import annotations

import pytest

from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.db.invalidation import InvalidationRecord
from repro.errors import InconsistencyDetected
from repro.types import TransactionOutcome
from tests.helpers import FakeBackend


@pytest.fixture
def backend() -> FakeBackend:
    return FakeBackend({"a": "a0", "b": "b0", "c": "c0"})


def make_cache(sim, backend, strategy=Strategy.ABORT) -> TCache:
    return TCache(sim, backend, strategy=strategy)


def stale_pair(cache: TCache, backend: FakeBackend) -> None:
    """Make the cache hold a stale 'a' while 'b' is fresh.

    One update transaction writes both; the invalidation for 'a' is lost,
    the one for 'b' arrives.
    """
    cache.read(100, "a", last_op=True)   # caches a@0
    committed = backend.commit(["a", "b"])
    cache.handle_invalidation(
        InvalidationRecord(key="b", version=committed.txn_id, txn_id=committed.txn_id,
                           commit_time=0.0)
    )


class TestDetection:
    def test_fresh_then_stale_raises_equation2(self, sim, backend) -> None:
        cache = make_cache(sim, backend)
        stale_pair(cache, backend)
        cache.read(1, "b")  # fresh b@1, deps demand a>=1
        with pytest.raises(InconsistencyDetected) as excinfo:
            cache.read(1, "a", last_op=True)  # stale a@0
        assert excinfo.value.stale_read_is_current is True
        assert excinfo.value.key == "a"
        assert cache.detections_eq2 == 1

    def test_stale_then_fresh_raises_equation1(self, sim, backend) -> None:
        cache = make_cache(sim, backend)
        stale_pair(cache, backend)
        cache.read(1, "a")  # stale a@0 returned to the client
        with pytest.raises(InconsistencyDetected) as excinfo:
            cache.read(1, "b", last_op=True)  # fresh b@1 proves a stale
        assert excinfo.value.stale_read_is_current is False
        assert cache.detections_eq1 == 1

    def test_consistent_transaction_commits(self, sim, backend) -> None:
        cache = make_cache(sim, backend)
        backend.commit(["a", "b"])
        cache.read(1, "a")
        cache.read(1, "b")
        result = cache.read(1, "c", last_op=True)
        assert result.version == 0
        assert cache.stats.transactions_committed == 1
        assert cache.detections == 0

    def test_aborted_transaction_record_includes_violating_read(self, sim, backend) -> None:
        cache = make_cache(sim, backend)
        records = []
        cache.add_transaction_listener(records.append)
        stale_pair(cache, backend)
        cache.read(1, "b")
        with pytest.raises(InconsistencyDetected):
            cache.read(1, "a", last_op=True)
        record = records[-1]
        assert record.outcome is TransactionOutcome.ABORTED
        assert record.reads["a"] == 0  # the stale observation is evidence
        assert record.reads["b"] == 1

    def test_transaction_context_cleared_after_abort(self, sim, backend) -> None:
        cache = make_cache(sim, backend)
        stale_pair(cache, backend)
        cache.read(1, "b")
        with pytest.raises(InconsistencyDetected):
            cache.read(1, "a", last_op=True)
        assert cache.open_transactions == 0
        # The same txn id starts a clean transaction afterwards.
        cache.read(1, "b", last_op=True)
        assert cache.stats.transactions_committed == 2  # setup txn + this one


class TestAbortStrategy:
    def test_abort_keeps_stale_entry_cached(self, sim, backend) -> None:
        cache = make_cache(sim, backend, Strategy.ABORT)
        stale_pair(cache, backend)
        cache.read(1, "b")
        with pytest.raises(InconsistencyDetected):
            cache.read(1, "a", last_op=True)
        # The stale entry remains: a future transaction hits it again.
        assert cache.storage.version_of("a") == 0
        assert cache.stats.strategy_evictions == 0


class TestEvictStrategy:
    def test_evict_removes_stale_current_read(self, sim, backend) -> None:
        cache = make_cache(sim, backend, Strategy.EVICT)
        stale_pair(cache, backend)
        cache.read(1, "b")
        with pytest.raises(InconsistencyDetected):
            cache.read(1, "a", last_op=True)
        assert "a" not in cache.storage
        assert cache.stats.strategy_evictions == 1
        # The next transaction reads fresh and commits.
        cache.read(2, "b")
        result = cache.read(2, "a", last_op=True)
        assert result.version == 1
        assert cache.stats.transactions_committed == 2  # setup txn + this one

    def test_evict_removes_stale_earlier_read(self, sim, backend) -> None:
        cache = make_cache(sim, backend, Strategy.EVICT)
        stale_pair(cache, backend)
        cache.read(1, "a")
        with pytest.raises(InconsistencyDetected):
            cache.read(1, "b", last_op=True)
        assert "a" not in cache.storage
        assert "b" in cache.storage  # the fresh entry stays


class TestRetryStrategy:
    def test_equation2_served_fresh_without_abort(self, sim, backend) -> None:
        cache = make_cache(sim, backend, Strategy.RETRY)
        stale_pair(cache, backend)
        committed_before = cache.stats.transactions_committed
        cache.read(1, "b")
        result = cache.read(1, "a", last_op=True)  # read-through repairs
        assert result.version == 1
        assert result.retried is True
        assert cache.stats.transactions_committed == committed_before + 1
        assert cache.retries_resolved == 1
        assert cache.stats.retries == 1
        # The fresh value replaced the stale entry.
        assert cache.storage.version_of("a") == 1

    def test_equation1_still_aborts_and_evicts(self, sim, backend) -> None:
        cache = make_cache(sim, backend, Strategy.RETRY)
        stale_pair(cache, backend)
        cache.read(1, "a")  # stale value already returned: unfixable
        with pytest.raises(InconsistencyDetected):
            cache.read(1, "b", last_op=True)
        assert "a" not in cache.storage
        assert cache.stats.transactions_aborted == 1

    def test_retry_counts_as_database_access(self, sim, backend) -> None:
        cache = make_cache(sim, backend, Strategy.RETRY)
        stale_pair(cache, backend)
        reads_before = backend.reads
        cache.read(1, "b")
        cache.read(1, "a", last_op=True)
        # One backend read for the retry (b was already cached? b is a miss
        # here, so expect retry + possible miss fetches).
        assert backend.reads > reads_before
        assert cache.stats.db_accesses >= 1

    def test_retry_then_equation1_on_fresh_deps(self, sim, backend) -> None:
        """The re-fetched value's dependency list can prove an *earlier*
        read stale; RETRY must then evict and abort."""
        cache = make_cache(sim, backend, Strategy.RETRY)
        # Cache c@0 and a@0; commit T1(a,c) lost for both, then T2(a,b).
        cache.read(100, "c", last_op=True)
        cache.read(101, "a", last_op=True)
        backend.commit(["a", "c"])   # version 1, both invalidations lost
        t2 = backend.commit(["a", "b"])  # version 2
        cache.handle_invalidation(
            InvalidationRecord(key="b", version=t2.txn_id, txn_id=t2.txn_id, commit_time=0.0)
        )
        cache.read(1, "c")   # stale c@0 returned
        # Fresh b@2 inherits (c, 1) through a@1's list: its dependency list
        # proves the earlier read of c stale -> Eq1 aborts; the read-through
        # repair is impossible because the stale value already reached the
        # client.
        with pytest.raises(InconsistencyDetected) as excinfo:
            cache.read(1, "b", last_op=True)
        assert excinfo.value.stale_read_is_current is False
        assert "c" not in cache.storage  # the repeat offender was evicted


class TestDetectionLimits:
    def test_bounded_lists_can_miss(self, sim) -> None:
        """With deplist_max=0 at the backend, nothing is ever detected."""
        backend = FakeBackend({"a": "a0", "b": "b0"}, deplist_max=0)
        cache = make_cache(sim, backend)
        cache.read(100, "a", last_op=True)
        backend.commit(["a", "b"])
        cache.read(1, "b")
        result = cache.read(1, "a", last_op=True)  # stale slips through
        assert result.version == 0
        assert cache.detections == 0
        assert cache.stats.transactions_committed == 2  # setup txn + this one
