"""Unit tests for generator-based simulation processes."""

from __future__ import annotations

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim.core import Simulator


class TestBasicExecution:
    def test_process_advances_through_timeouts(self, sim: Simulator) -> None:
        trace = []

        def body():
            trace.append(("start", sim.now))
            yield sim.timeout(1.0)
            trace.append(("mid", sim.now))
            yield sim.timeout(2.0)
            trace.append(("end", sim.now))

        sim.process(body())
        sim.run()
        assert trace == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]

    def test_return_value_becomes_event_value(self, sim: Simulator) -> None:
        def body():
            yield sim.timeout(1.0)
            return "result"

        process = sim.process(body())
        sim.run()
        assert process.triggered and process.ok
        assert process.value == "result"

    def test_yield_value_is_event_value(self, sim: Simulator) -> None:
        received = []

        def body():
            value = yield sim.timeout(1.0, value="payload")
            received.append(value)

        sim.process(body())
        sim.run()
        assert received == ["payload"]

    def test_processes_start_in_creation_order(self, sim: Simulator) -> None:
        order = []

        def body(tag):
            order.append(tag)
            yield sim.timeout(0.0)

        sim.process(body("a"))
        sim.process(body("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_non_generator_rejected(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self, sim: Simulator) -> None:
        def body():
            yield 42  # type: ignore[misc]

        process = sim.process(body())
        sim.run()
        assert process.triggered and not process.ok
        assert isinstance(process.value, SimulationError)


class TestErrorPropagation:
    def test_exception_fails_the_process_event(self, sim: Simulator) -> None:
        def body():
            yield sim.timeout(1.0)
            raise RuntimeError("inner failure")

        process = sim.process(body())
        sim.run()
        assert process.triggered and not process.ok
        assert isinstance(process.value, RuntimeError)

    def test_failed_event_raises_inside_generator(self, sim: Simulator) -> None:
        caught = []
        failing = None

        def body():
            try:
                yield failing
            except ValueError as error:
                caught.append(error)

        failing = sim.event()
        sim.process(body())
        failing.fail(ValueError("delivered"))
        sim.run()
        assert len(caught) == 1

    def test_uncaught_failure_from_event_fails_process(self, sim: Simulator) -> None:
        failing = sim.event()

        def body():
            yield failing

        process = sim.process(body())
        failing.fail(KeyError("kaboom"))
        sim.run()
        assert process.triggered and not process.ok
        assert isinstance(process.value, KeyError)


class TestJoinAndKill:
    def test_waiting_on_another_process(self, sim: Simulator) -> None:
        def child():
            yield sim.timeout(2.0)
            return "child-result"

        results = []

        def parent():
            value = yield sim.process(child())
            results.append((value, sim.now))

        sim.process(parent())
        sim.run()
        assert results == [("child-result", 2.0)]

    def test_kill_interrupts_waiting_process(self, sim: Simulator) -> None:
        cleanup = []

        def body():
            try:
                yield sim.timeout(100.0)
            except ProcessKilled:
                cleanup.append(sim.now)
                raise

        process = sim.process(body())
        sim.run(until=1.0)
        process.kill()
        sim.run(until=2.0)
        assert cleanup == [1.0]
        assert not process.alive
        assert process.triggered

    def test_kill_after_completion_is_noop(self, sim: Simulator) -> None:
        def body():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(body())
        sim.run()
        process.kill()
        assert process.value == "done"

    def test_alive_tracks_lifecycle(self, sim: Simulator) -> None:
        def body():
            yield sim.timeout(5.0)

        process = sim.process(body())
        assert process.alive
        sim.run()
        assert not process.alive
