"""Unit tests for workload characterisation: the stand-ins land in the
regimes that drive T-Cache's behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.stats import pair_affinity, profile_workload
from repro.workloads.synthetic import (
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    UniformWorkload,
)


def profile(workload, samples=1500, seed=3):
    return profile_workload(
        workload, samples=samples, rng=np.random.default_rng(seed)
    )


class TestProfiles:
    def test_uniform_workload_profile(self) -> None:
        # A universe large enough that birthday collisions between random
        # pairs stay rare over the sample budget.
        result = profile(UniformWorkload(n_objects=1000))
        assert result.coverage > 0.99
        assert result.popularity_gini < 0.25          # near-uniform popularity
        assert result.pair_recurrence < 0.1           # pairs rarely repeat

    def test_perfect_clusters_have_high_pair_recurrence(self) -> None:
        result = profile(PerfectClusterWorkload(n_objects=200, cluster_size=5))
        # Only 10 pairs exist within each 5-cluster: co-access repeats a lot.
        assert result.pair_recurrence > 0.9
        assert result.mean_txn_size < 5.0              # draws with repetition

    def test_pareto_alpha_orders_recurrence(self) -> None:
        spiked = profile(ParetoClusterWorkload(n_objects=500, cluster_size=5, alpha=4.0))
        flat = profile(ParetoClusterWorkload(n_objects=500, cluster_size=5, alpha=1 / 16))
        assert spiked.pair_recurrence > flat.pair_recurrence + 0.3

    def test_realistic_standins_order_as_intended(self) -> None:
        """Amazon-like must out-cluster Orkut-like in *co-access* terms —
        the property Fig. 7/8 results hinge on."""
        from repro.experiments.realistic import realistic_workload

        amazon = profile(realistic_workload("amazon", sample_nodes=400), samples=1000)
        orkut = profile(realistic_workload("orkut", sample_nodes=400), samples=1000)
        assert amazon.pair_recurrence > orkut.pair_recurrence

    def test_sample_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            profile_workload(UniformWorkload(10), samples=1)


class TestPairAffinity:
    def test_top_pairs_are_intra_cluster(self) -> None:
        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        top = pair_affinity(workload, samples=800, rng=np.random.default_rng(4))
        assert top
        from repro.workloads.base import index_of

        for (a, b), count in top:
            assert index_of(a) // 5 == index_of(b) // 5
            assert count > 1

    def test_returns_at_most_top(self) -> None:
        workload = UniformWorkload(n_objects=50)
        assert len(pair_affinity(workload, samples=100, top=5)) <= 5
