"""Unit tests for named random streams and the bounded Pareto sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import BoundedPareto, RngStreams


class TestRngStreams:
    def test_same_name_returns_same_generator(self) -> None:
        streams = RngStreams(seed=7)
        assert streams.stream("a") is streams.stream("a")

    def test_different_names_are_independent(self) -> None:
        streams = RngStreams(seed=7)
        a = streams.stream("a").random(100)
        b = streams.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_draws(self) -> None:
        first = RngStreams(seed=11).stream("workload").random(50)
        second = RngStreams(seed=11).stream("workload").random(50)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self) -> None:
        first = RngStreams(seed=11).stream("workload").random(50)
        second = RngStreams(seed=12).stream("workload").random(50)
        assert not np.allclose(first, second)

    def test_new_consumer_does_not_perturb_existing_stream(self) -> None:
        plain = RngStreams(seed=5)
        baseline = plain.stream("clients").random(20)

        with_extra = RngStreams(seed=5)
        with_extra.stream("a-brand-new-consumer").random(100)
        perturbed = with_extra.stream("clients").random(20)
        np.testing.assert_array_equal(baseline, perturbed)

    def test_fork_gives_distinct_family(self) -> None:
        base = RngStreams(seed=5)
        forked = base.fork(1)
        assert forked.seed != base.seed
        a = base.stream("x").random(10)
        b = forked.stream("x").random(10)
        assert not np.allclose(a, b)


class TestBoundedPareto:
    def test_samples_respect_bounds(self) -> None:
        dist = BoundedPareto(alpha=1.0, low=1.0, high=100.0)
        rng = np.random.default_rng(3)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert min(samples) >= 1.0
        assert max(samples) <= 100.0

    def test_cdf_endpoints(self) -> None:
        dist = BoundedPareto(alpha=2.0, low=1.0, high=50.0)
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.0
        assert dist.cdf(50.0) == 1.0
        assert dist.cdf(1000.0) == 1.0

    def test_cdf_is_monotone(self) -> None:
        dist = BoundedPareto(alpha=0.5, low=1.0, high=2000.0)
        xs = np.linspace(1.0, 2000.0, 64)
        values = [dist.cdf(x) for x in xs]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_empirical_cdf_matches_analytic(self) -> None:
        dist = BoundedPareto(alpha=1.0, low=1.0, high=2000.0)
        rng = np.random.default_rng(9)
        samples = np.array([dist.sample(rng) for _ in range(20000)])
        for x in (2.0, 5.0, 20.0, 200.0):
            empirical = float(np.mean(samples <= x))
            assert empirical == pytest.approx(dist.cdf(x), abs=0.02)

    def test_high_alpha_concentrates_at_cluster_head(self) -> None:
        """Paper: at alpha=4 almost all accesses fall within the cluster."""
        dist = BoundedPareto(alpha=4.0, low=1.0, high=2000.0)
        rng = np.random.default_rng(2)
        offsets = [dist.sample_offset(rng) for _ in range(5000)]
        within_cluster = sum(1 for o in offsets if o < 5) / len(offsets)
        assert within_cluster > 0.99

    def test_low_alpha_spreads_over_the_whole_range(self) -> None:
        """Paper: at alpha=1/32 the distribution is "almost uniform".

        A bounded Pareto at alpha -> 0 converges to log-uniform, so the exact
        within-cluster mass is ln(6)/ln(2000) ~ 26 %, far below the >99 % of
        alpha=4 — that spread is what the paper's statement captures.
        """
        dist = BoundedPareto(alpha=1 / 32, low=1.0, high=2000.0)
        rng = np.random.default_rng(2)
        offsets = [dist.sample_offset(rng) for _ in range(5000)]
        within_cluster = sum(1 for o in offsets if o < 5) / len(offsets)
        assert within_cluster < 0.30
        # Mass genuinely reaches the far end of the range.
        assert max(offsets) > 1000

    def test_sample_offset_zero_based(self) -> None:
        dist = BoundedPareto(alpha=4.0, low=1.0, high=10.0)
        rng = np.random.default_rng(5)
        offsets = {dist.sample_offset(rng) for _ in range(500)}
        assert 0 in offsets
        assert min(offsets) == 0

    @pytest.mark.parametrize("alpha,low,high", [(0.0, 1, 10), (-1, 1, 10), (1, 0, 10), (1, 10, 10), (1, 20, 10)])
    def test_invalid_parameters_rejected(self, alpha, low, high) -> None:
        with pytest.raises(ConfigurationError):
            BoundedPareto(alpha=alpha, low=low, high=high)
