"""Unit tests for 2PC coordination: conflicts, wounds, serial behaviour."""

from __future__ import annotations

import pytest

from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.db.wal import RecordType
from repro.errors import TransactionAborted
from repro.sim.core import Simulator


@pytest.fixture
def slow_db(sim: Simulator) -> Database:
    """Database whose transactions span simulated time, enabling overlap."""
    timing = TimingConfig(lock_delay=0.0, execute_delay=0.01, prepare_delay=0.002,
                          commit_delay=0.002)
    db = Database(sim, DatabaseConfig(deplist_max=5, timing=timing))
    db.load({"a": 0, "b": 0, "c": 0})
    return db


class TestConflicts:
    def test_conflicting_transactions_serialize(self, sim, slow_db) -> None:
        first = slow_db.execute_update(read_keys=["a"], writes={"a": "t1"})
        second = slow_db.execute_update(read_keys=["a"], writes={"a": "t2"})
        sim.run()
        assert first.ok and second.ok
        # The second transaction read the first one's write.
        assert second.value.reads["a"] == first.value.txn_id
        assert slow_db.read_entry("a").value == "t2"

    def test_younger_waits_for_older_holder(self, sim, slow_db) -> None:
        first = slow_db.execute_update(read_keys=["a"], writes={"a": 1})
        second = slow_db.execute_update(read_keys=["a"], writes={"a": 2})
        sim.run()
        assert first.value.commit_time < second.value.commit_time

    def test_wound_wait_aborts_younger_holder(self, sim, slow_db) -> None:
        """An older transaction wounds a younger transaction holding its lock.

        Acquisition interleaves across event-loop turns: txn1 (older) locks
        "b" first, txn2 (younger) sneaks in and takes "c", then txn1 requests
        "c" and — being older — wounds txn2. Wound-wait guarantees the older
        transaction always makes progress.
        """
        first = slow_db.execute_update(read_keys=["b", "c"], writes={"b": 1, "c": 1})
        second = slow_db.execute_update(read_keys=["c"], writes={"c": 2})
        sim.run()
        assert first.ok
        assert second.triggered and not second.ok
        assert isinstance(second.value, TransactionAborted)
        assert "wounded" in str(second.value)
        assert slow_db.participants[0].locks.wounds == 1
        assert slow_db.read_entry("c").value == 1  # only txn1's write landed

    def test_aborted_process_raises_transaction_aborted(self, sim, slow_db) -> None:
        outcome = []

        def watcher():
            process = slow_db.execute_update(read_keys=["ghost"], writes={"ghost": 1})
            try:
                yield process
            except TransactionAborted as error:
                outcome.append(error)

        sim.process(watcher())
        sim.run()
        assert len(outcome) == 1

    def test_abort_releases_locks_for_waiters(self, sim, slow_db) -> None:
        # txn1 reads a key that does not exist -> aborts after locking "a".
        first = slow_db.execute_update(read_keys=["a", "ghost"], writes={"a": 1})
        second = slow_db.execute_update(read_keys=["a"], writes={"a": 2})
        sim.run()
        assert not first.ok
        assert second.ok
        assert slow_db.read_entry("a").value == 2


class TestDecisions:
    def test_commit_decision_logged(self, sim, slow_db) -> None:
        process = slow_db.execute_update(read_keys=["a"], writes={"a": 1})
        sim.run()
        assert process.ok
        wal_types = [r.record_type for r in slow_db.coordinator.wal]
        assert RecordType.DECISION_COMMIT in wal_types
        assert slow_db.coordinator.decisions[1] is True

    def test_abort_decision_logged(self, sim, slow_db) -> None:
        process = slow_db.execute_update(read_keys=["ghost"], writes={"ghost": 1})
        sim.run()
        assert not process.ok
        wal_types = [r.record_type for r in slow_db.coordinator.wal]
        assert RecordType.DECISION_ABORT in wal_types
        assert slow_db.coordinator.decisions[1] is False

    def test_counts(self, sim, slow_db) -> None:
        slow_db.execute_update(read_keys=["a"], writes={"a": 1})
        slow_db.execute_update(read_keys=["ghost"], writes={"ghost": 1})
        sim.run()
        assert slow_db.coordinator.committed_count == 1
        assert slow_db.coordinator.aborted_count == 1


class TestVoteNo:
    def test_crashed_participant_aborts_transaction(self, sim, slow_db) -> None:
        process = slow_db.execute_update(read_keys=["a"], writes={"a": 1})
        slow_db.participants[0].crash()
        sim.run()
        assert process.triggered and not process.ok
        assert isinstance(process.value, TransactionAborted)
