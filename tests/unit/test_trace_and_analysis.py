"""Unit tests for trace record/replay and the staleness analysis probe."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.monitor.analysis import StalenessProbe
from repro.types import CommittedTransaction, ReadOnlyTransactionRecord
from repro.workloads.synthetic import PerfectClusterWorkload
from repro.workloads.trace import (
    TraceRecorder,
    TraceWorkload,
    load_trace,
    save_trace,
)


class TestTraceRecorder:
    def test_passthrough_and_recording(self, rng) -> None:
        inner = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        recorder = TraceRecorder(inner)
        produced = [recorder.access_set(rng, now=float(i)) for i in range(20)]
        assert [accesses for _, accesses in recorder.records] == produced
        assert recorder.records[3][0] == 3.0
        assert list(recorder.all_keys()) == list(inner.all_keys())

    def test_frozen_trace_replays_exactly(self, rng) -> None:
        inner = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        recorder = TraceRecorder(inner)
        produced = [recorder.access_set(rng, float(i)) for i in range(10)]
        trace = recorder.trace()
        replayed = [trace.access_set(rng, 0.0) for _ in range(10)]
        assert replayed == produced


class TestTraceWorkload:
    def test_cycles_when_exhausted(self, rng) -> None:
        trace = TraceWorkload([["a"], ["b"]], cycle=True)
        out = [trace.access_set(rng, 0.0)[0] for _ in range(5)]
        assert out == ["a", "b", "a", "b", "a"]
        assert trace.wraps == 2

    def test_non_cycling_raises_on_exhaustion(self, rng) -> None:
        trace = TraceWorkload([["a"]], cycle=False)
        trace.access_set(rng, 0.0)
        with pytest.raises(ConfigurationError):
            trace.access_set(rng, 0.0)

    def test_reset(self, rng) -> None:
        trace = TraceWorkload([["a"], ["b"]])
        trace.access_set(rng, 0.0)
        trace.reset()
        assert trace.access_set(rng, 0.0) == ["a"]
        assert trace.wraps == 0

    def test_all_keys_inferred_in_order(self) -> None:
        trace = TraceWorkload([["b", "a"], ["a", "c"]])
        assert list(trace.all_keys()) == ["b", "a", "c"]

    def test_empty_trace_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            TraceWorkload([])

    def test_returns_copies(self, rng) -> None:
        trace = TraceWorkload([["a", "b"]])
        first = trace.access_set(rng, 0.0)
        first.append("mutated")
        trace.reset()
        assert trace.access_set(rng, 0.0) == ["a", "b"]


class TestTraceSerialisation:
    def test_round_trip(self, tmp_path, rng) -> None:
        original = TraceWorkload([["a", "b"], ["c"]], all_keys=["a", "b", "c", "d"])
        path = tmp_path / "trace.jsonl"
        save_trace(original, path)
        loaded = load_trace(path)
        assert len(loaded) == 2
        assert list(loaded.all_keys()) == ["a", "b", "c", "d"]
        assert loaded.access_set(rng, 0.0) == ["a", "b"]
        assert loaded.access_set(rng, 0.0) == ["c"]

    def test_recorder_saves_directly(self, tmp_path, rng) -> None:
        inner = PerfectClusterWorkload(n_objects=10, cluster_size=5)
        recorder = TraceRecorder(inner)
        recorder.access_set(rng, 0.0)
        path = tmp_path / "trace.jsonl"
        save_trace(recorder, path)
        assert len(load_trace(path)) == 1


class TestStalenessProbe:
    def make_probe(self) -> StalenessProbe:
        probe = StalenessProbe()
        # History: k written at versions 1, 3, 7; m at 2.
        for version, keys in ((1, ["k"]), (2, ["m"]), (3, ["k"]), (7, ["k"])):
            probe.record_update(
                CommittedTransaction(
                    txn_id=version,
                    reads={key: 0 for key in keys},
                    writes={key: version for key in keys},
                )
            )
        return probe

    def record(self, probe, reads) -> None:
        probe.record_read_only(
            ReadOnlyTransactionRecord(txn_id=1, reads=reads)
        )

    def test_fresh_reads_not_stale(self) -> None:
        probe = self.make_probe()
        self.record(probe, {"k": 7, "m": 2})
        report = probe.report()
        assert report.stale_reads == 0
        assert report.stale_ratio == 0.0

    def test_depth_counts_skipped_versions(self) -> None:
        probe = self.make_probe()
        self.record(probe, {"k": 1})   # behind versions 3 and 7 -> depth 2
        self.record(probe, {"k": 3})   # behind version 7 -> depth 1
        report = probe.report()
        assert report.depth_histogram == {1: 1, 2: 1}
        assert report.mean_depth == pytest.approx(1.5)
        assert report.shallow_fraction == pytest.approx(0.5)

    def test_worst_keys_ranked(self) -> None:
        probe = self.make_probe()
        for _ in range(3):
            self.record(probe, {"k": 1})
        self.record(probe, {"m": 0})
        report = probe.report()
        assert report.worst_keys[0] == ("k", 3)
        assert report.worst_keys[1] == ("m", 1)

    def test_unknown_key_is_not_stale(self) -> None:
        probe = self.make_probe()
        self.record(probe, {"never-written": 0})
        assert probe.report().stale_reads == 0

    def test_integration_with_column(self) -> None:
        """The probe runs alongside a real column and sees staleness."""
        from repro.experiments.config import ColumnConfig
        from repro.experiments.runner import build_column

        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        column = build_column(
            ColumnConfig(seed=3, duration=4.0, warmup=0.0, deplist_max=0), workload
        )
        probe = StalenessProbe()
        column.database.add_commit_listener(probe.record_update)
        column.cache.add_transaction_listener(probe.record_read_only)
        column.sim.run(until=column.config.total_time)
        report = probe.report()
        assert report.reads_observed > 1000
        assert report.stale_reads > 0
        assert 0.0 < report.shallow_fraction <= 1.0
