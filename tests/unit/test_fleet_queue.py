"""Unit tests for the fleet daemon's multi-sweep queue and health tracker."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.dispatch.fleet import FleetQueue
from repro.dispatch.health import HealthTracker
from repro.dispatch.journal import sweep_fingerprint
from repro.errors import ConfigurationError, DispatchError
from repro.experiments.config import ColumnConfig
from repro.experiments.sweep import (
    SweepPoint,
    SweepSpec,
    derive_seed,
    spec_artifact,
)
from repro.workloads.synthetic import PerfectClusterWorkload


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_spec(n_points: int = 4, *, name: str = "fleet-spec", root_seed: int = 1):
    workload = PerfectClusterWorkload(n_objects=40, cluster_size=4)
    config = ColumnConfig(seed=1, duration=0.4, warmup=0.2)
    return SweepSpec(
        name=name,
        root_seed=root_seed,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(root_seed, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_points)
        ],
    )


def make_queue(lease_timeout: float = 10.0):
    clock = FakeClock()
    return FleetQueue(lease_timeout=lease_timeout, clock=clock), clock


def submit(queue: FleetQueue, name: str, spec=None, **kwargs):
    spec = spec if spec is not None else tiny_spec(name=name)
    return queue.submit(
        name,
        spec,
        spec_artifact(spec)["columns"],
        sweep_fingerprint(spec),
        **kwargs,
    )


def wire(index: int) -> dict:
    return {"kind": "column", "payload": {"index": index}}


class TestValidation:
    def test_bad_lease_timeout_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            FleetQueue(lease_timeout=0.0)

    def test_empty_name_rejected(self) -> None:
        queue, _ = make_queue()
        with pytest.raises(ConfigurationError):
            submit(queue, "")

    def test_bad_max_points_rejected(self) -> None:
        queue, _ = make_queue()
        submit(queue, "a")
        with pytest.raises(ConfigurationError):
            queue.acquire("w", 0)

    def test_result_for_unknown_sweep_raises(self) -> None:
        queue, _ = make_queue()
        with pytest.raises(DispatchError, match="unknown sweep"):
            queue.complete("ghost", 0, wire(0), "w")

    def test_result_outside_grid_raises(self) -> None:
        queue, _ = make_queue()
        submit(queue, "a", tiny_spec(2, name="a"))
        with pytest.raises(DispatchError, match="outside"):
            queue.complete("a", 2, wire(2), "w")

    def test_resumed_indices_outside_grid_raise(self) -> None:
        queue, _ = make_queue()
        with pytest.raises(DispatchError, match="outside sweep"):
            submit(
                queue,
                "a",
                tiny_spec(2, name="a"),
                resumed_results={5: wire(5)},
            )


class TestPriorities:
    def test_highest_priority_drains_first(self) -> None:
        queue, _ = make_queue()
        submit(queue, "bulk", priority=0)
        submit(queue, "urgent", priority=5)
        lease = queue.acquire("w", 2)
        assert lease.sweep == "urgent"

    def test_fifo_among_equal_priorities(self) -> None:
        queue, _ = make_queue()
        submit(queue, "first", priority=1)
        submit(queue, "second", priority=1)
        assert queue.acquire("w", 2).sweep == "first"

    def test_urgent_submission_overtakes_mid_drain(self) -> None:
        queue, _ = make_queue()
        submit(queue, "bulk", tiny_spec(4, name="bulk"), priority=0)
        first = queue.acquire("w", 1)
        assert first.sweep == "bulk"
        submit(queue, "urgent", tiny_spec(2, name="urgent"), priority=9)
        assert queue.acquire("w", 4).sweep == "urgent"

    def test_chunk_size_is_per_acquire(self) -> None:
        queue, _ = make_queue()
        submit(queue, "a")
        assert len(queue.acquire("w", 1).indices) == 1
        assert len(queue.acquire("w", 3).indices) == 3


class TestCompletionAndResume:
    def test_every_index_served_once_and_done(self) -> None:
        queue, _ = make_queue()
        entry, created = submit(queue, "a")
        assert created
        seen: list[int] = []
        while (lease := queue.acquire("w", 2)) is not None:
            for index in lease.indices:
                assert queue.complete("a", index, wire(index), "w")
            seen.extend(lease.indices)
        assert seen == [0, 1, 2, 3]
        assert entry.state == "done"
        assert entry.executed == 4
        assert queue.results_for("a") == {i: wire(i) for i in range(4)}

    def test_duplicate_results_dropped_first_writer_wins(self) -> None:
        queue, _ = make_queue()
        entry, _ = submit(queue, "a")
        lease = queue.acquire("w1", 4)
        assert queue.complete("a", lease.indices[0], wire(0), "w1")
        assert not queue.complete("a", lease.indices[0], {"other": 1}, "w2")
        assert entry.duplicates == 1
        assert queue.results_for("a")[lease.indices[0]] == wire(0)

    def test_resumed_results_seed_completion(self) -> None:
        queue, _ = make_queue()
        entry, _ = submit(
            queue,
            "a",
            resumed_results={0: wire(0), 2: wire(2)},
        )
        assert entry.completed == 2
        assert entry.resumed == frozenset({0, 2})
        served: list[int] = []
        while (lease := queue.acquire("w", 4)) is not None:
            for index in lease.indices:
                queue.complete("a", index, wire(index), "w")
            served.extend(lease.indices)
        # Journaled points are never handed out again.
        assert served == [1, 3]
        assert entry.state == "done"
        assert entry.executed == 2

    def test_fully_resumed_sweep_is_done_without_workers(self) -> None:
        queue, _ = make_queue()
        entry, _ = submit(
            queue,
            "a",
            tiny_spec(2, name="a"),
            resumed_results={0: wire(0), 1: wire(1)},
        )
        assert entry.state == "done"
        assert queue.acquire("w", 4) is None

    def test_resubmission_attaches_by_fingerprint(self) -> None:
        queue, _ = make_queue()
        first, created = submit(queue, "a")
        again, created_again = submit(queue, "a")
        assert created and not created_again
        assert again is first

    def test_name_collision_with_different_grid_refused(self) -> None:
        queue, _ = make_queue()
        submit(queue, "a", tiny_spec(name="a", root_seed=1))
        with pytest.raises(DispatchError, match="already exists"):
            submit(queue, "a", tiny_spec(name="a", root_seed=2))


class TestCancellation:
    def test_cancel_drops_pending_and_leases(self) -> None:
        queue, _ = make_queue()
        entry, _ = submit(queue, "a")
        queue.acquire("w", 2)
        assert queue.cancel("a")
        assert entry.state == "cancelled"
        assert queue.acquire("w", 4) is None
        assert queue.status_rows()[0]["leased"] == 0

    def test_cancel_unknown_sweep_is_false(self) -> None:
        queue, _ = make_queue()
        assert not queue.cancel("ghost")

    def test_late_results_for_cancelled_sweep_ignored(self) -> None:
        queue, _ = make_queue()
        entry, _ = submit(queue, "a")
        lease = queue.acquire("w", 2)
        queue.cancel("a")
        assert not queue.complete("a", lease.indices[0], wire(0), "w")
        assert entry.completed == 0

    def test_resubmission_revives_cancelled_sweep(self) -> None:
        queue, _ = make_queue()
        entry, _ = submit(queue, "a")
        lease = queue.acquire("w", 2)
        for index in lease.indices:
            queue.complete("a", index, wire(index), "w")
        queue.cancel("a")
        revived, created = submit(queue, "a")
        assert revived is entry and not created
        assert revived.state == "running"
        # Completed work survives the cancel/revive cycle.
        assert revived.completed == 2
        remaining: list[int] = []
        while (lease := queue.acquire("w", 4)) is not None:
            remaining.extend(lease.indices)
            for index in lease.indices:
                queue.complete("a", index, wire(index), "w")
        assert sorted(remaining) == [2, 3]


class TestLeaseRecovery:
    def test_expired_lease_requeues_unfinished_at_front(self) -> None:
        queue, clock = make_queue(lease_timeout=10.0)
        submit(queue, "a")
        lease = queue.acquire("dead", 3)
        queue.complete("a", lease.indices[0], wire(lease.indices[0]), "dead")
        clock.advance(11.0)
        recovered = queue.acquire("alive", 4)
        # The dead worker's unfinished indices come back first, ahead of
        # the never-leased tail.
        assert recovered.indices[:2] == lease.indices[1:]

    def test_heartbeat_extends_leases(self) -> None:
        queue, clock = make_queue(lease_timeout=10.0)
        submit(queue, "a")
        queue.acquire("w", 2)
        clock.advance(8.0)
        assert queue.heartbeat("w") == 1
        clock.advance(8.0)
        assert queue.expire_stale_leases() == 0

    def test_release_on_disconnect_requeues(self) -> None:
        queue, _ = make_queue()
        submit(queue, "a")
        lease = queue.acquire("w", 4)
        assert queue.release("w") == 1
        assert queue.acquire("other", 4).indices == lease.indices

    def test_completed_results_survive_lease_expiry(self) -> None:
        queue, clock = make_queue(lease_timeout=10.0)
        submit(queue, "a")
        lease = queue.acquire("w", 4)
        queue.complete("a", lease.indices[0], wire(lease.indices[0]), "w")
        clock.advance(11.0)
        queue.expire_stale_leases()
        again = queue.acquire("w2", 4)
        assert lease.indices[0] not in again.indices


class TestStatusRows:
    def test_rows_in_submission_order_with_counters(self) -> None:
        queue, _ = make_queue()
        submit(queue, "b", priority=2)
        submit(queue, "a", priority=5)
        queue.acquire("w", 1)  # leases one point of "a" (priority 5)
        rows = queue.status_rows()
        assert [row["sweep"] for row in rows] == ["b", "a"]
        by_name = {row["sweep"]: row for row in rows}
        assert by_name["a"]["leased"] == 1
        assert by_name["b"]["pending"] == 4
        assert by_name["a"]["state"] == "running"


class TestHealthTracker:
    def test_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            HealthTracker(target_chunk_seconds=0.0)
        with pytest.raises(ConfigurationError):
            HealthTracker(probe_chunk_points=0)
        with pytest.raises(ConfigurationError):
            HealthTracker(probe_chunk_points=8, max_chunk_points=4)

    def test_unknown_worker_gets_probe_chunk(self) -> None:
        tracker = HealthTracker(probe_chunk_points=2)
        assert tracker.chunk_points_for("ghost") == 2
        tracker.on_connect("w")
        assert tracker.chunk_points_for("w") == 2

    def test_throughput_scales_chunks(self) -> None:
        clock = FakeClock()
        tracker = HealthTracker(
            target_chunk_seconds=5.0, max_chunk_points=64, clock=clock
        )
        tracker.on_connect("w")
        tracker.on_result("w")  # first result: no interval yet
        assert tracker.chunk_points_for("w") == tracker.probe_chunk_points
        for _ in range(6):
            clock.advance(0.5)  # steady 2 points/sec
            tracker.on_result("w")
        assert tracker.chunk_points_for("w") == 10  # 2 pts/s x 5 s target

    def test_chunks_clamped_to_max(self) -> None:
        clock = FakeClock()
        tracker = HealthTracker(
            target_chunk_seconds=5.0, max_chunk_points=8, clock=clock
        )
        tracker.on_connect("w")
        tracker.on_result("w")
        for _ in range(8):
            clock.advance(0.01)  # 100 points/sec
            tracker.on_result("w")
        assert tracker.chunk_points_for("w") == 8

    def test_slow_worker_gets_small_chunks(self) -> None:
        clock = FakeClock()
        tracker = HealthTracker(target_chunk_seconds=5.0, clock=clock)
        tracker.on_connect("w")
        tracker.on_result("w")
        for _ in range(4):
            clock.advance(20.0)  # 0.05 points/sec
            tracker.on_result("w")
        assert tracker.chunk_points_for("w") == 1

    def test_snapshot_rows_track_liveness(self) -> None:
        clock = FakeClock()
        tracker = HealthTracker(alive_after=15.0, clock=clock)
        tracker.on_connect("w")
        tracker.on_heartbeat("w")
        clock.advance(20.0)
        (row,) = tracker.snapshot()
        assert row["worker"] == "w"
        assert row["heartbeats"] == 1
        assert row["connected"] and not row["alive"]
        assert row["silence_seconds"] == 20.0

    def test_disconnect_marks_row_and_resets_interval(self) -> None:
        clock = FakeClock()
        tracker = HealthTracker(clock=clock)
        tracker.on_connect("w")
        tracker.on_result("w")
        tracker.on_disconnect("w")
        (row,) = tracker.snapshot()
        assert not row["connected"] and not row["alive"]
        # A reconnect must not compute a rate across the gap.
        tracker.on_connect("w")
        clock.advance(1.0)
        tracker.on_result("w")
        assert tracker.snapshot()[0]["points_per_sec"] is None
