"""Unit tests for the lease-based dispatch work queue."""

from __future__ import annotations

import pytest

from repro.dispatch.queue import WorkQueue
from repro.errors import ConfigurationError


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_queue(total=6, chunk_size=2, lease_timeout=10.0):
    clock = FakeClock()
    queue = WorkQueue(
        total, chunk_size=chunk_size, lease_timeout=lease_timeout, clock=clock
    )
    return queue, clock


class TestValidation:
    def test_bad_parameters_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            WorkQueue(-1, chunk_size=1, lease_timeout=1.0)
        with pytest.raises(ConfigurationError):
            WorkQueue(3, chunk_size=0, lease_timeout=1.0)
        with pytest.raises(ConfigurationError):
            WorkQueue(3, chunk_size=1, lease_timeout=0.0)

    def test_out_of_range_result_rejected(self) -> None:
        queue, _ = make_queue(total=3, chunk_size=1)
        with pytest.raises(ConfigurationError):
            queue.complete(3, "r", "w")
        with pytest.raises(ConfigurationError):
            queue.complete(-1, "r", "w")


class TestHappyPath:
    def test_chunking_covers_every_index_once(self) -> None:
        queue, _ = make_queue(total=5, chunk_size=2)
        seen: list[int] = []
        while (chunk := queue.acquire("w")) is not None:
            seen.extend(chunk.indices)
        assert seen == [0, 1, 2, 3, 4]

    def test_empty_queue_is_done_immediately(self) -> None:
        queue, _ = make_queue(total=0)
        assert queue.done
        assert queue.acquire("w") is None

    def test_done_only_when_every_result_in(self) -> None:
        queue, _ = make_queue(total=2, chunk_size=2)
        chunk = queue.acquire("w")
        queue.complete(chunk.indices[0], "r0", "w")
        assert not queue.done
        queue.complete(chunk.indices[1], "r1", "w")
        assert queue.done
        assert queue.results_by_index() == {0: "r0", 1: "r1"}

    def test_duplicate_result_ignored_first_writer_wins(self) -> None:
        queue, _ = make_queue(total=1, chunk_size=1)
        queue.acquire("a")
        assert queue.complete(0, "first", "a") is True
        assert queue.complete(0, "second", "b") is False
        assert queue.results_by_index() == {0: "first"}
        assert queue.stats.duplicate_results == 1


class TestFailureRecovery:
    def test_release_requeues_only_unfinished_indices(self) -> None:
        queue, _ = make_queue(total=4, chunk_size=4)
        chunk = queue.acquire("dead")
        queue.complete(0, "r0", "dead")  # streamed before the crash
        assert queue.release("dead") == 1
        reassigned = queue.acquire("alive")
        assert reassigned.indices == (1, 2, 3)  # finished work not re-run
        assert queue.stats.chunks_reassigned == 1
        assert chunk.chunk_id == reassigned.chunk_id

    def test_lease_expiry_reassigns_on_next_acquire(self) -> None:
        queue, clock = make_queue(total=2, chunk_size=2, lease_timeout=5.0)
        queue.acquire("stalled")
        clock.advance(5.1)
        chunk = queue.acquire("alive")
        assert chunk is not None and chunk.indices == (0, 1)
        assert queue.stats.leases_expired == 1

    def test_explicit_expiry_sweep(self) -> None:
        queue, clock = make_queue(total=2, chunk_size=2, lease_timeout=5.0)
        queue.acquire("stalled")
        assert queue.expire_stale_leases() == 0
        clock.advance(5.1)
        assert queue.expire_stale_leases() == 1

    def test_heartbeat_keeps_lease_alive(self) -> None:
        queue, clock = make_queue(total=2, chunk_size=2, lease_timeout=5.0)
        queue.acquire("busy")
        clock.advance(4.0)
        assert queue.heartbeat("busy") == 1
        clock.advance(4.0)  # 8s total, but re-armed at 4s
        assert queue.acquire("other") is None  # nothing expired, nothing pending
        clock.advance(5.1)
        assert queue.acquire("other").indices == (0, 1)

    def test_results_extend_lease_like_heartbeats(self) -> None:
        queue, clock = make_queue(total=3, chunk_size=3, lease_timeout=5.0)
        queue.acquire("busy")
        clock.advance(4.0)
        queue.complete(0, "r0", "busy")
        clock.advance(4.0)
        assert queue.acquire("other") is None

    def test_late_result_after_reassignment_is_duplicate(self) -> None:
        queue, clock = make_queue(total=1, chunk_size=1, lease_timeout=5.0)
        queue.acquire("slow")
        clock.advance(6.0)
        chunk = queue.acquire("fast")
        queue.complete(0, "fast-result", "fast")
        assert queue.complete(0, "slow-result", "slow") is False
        assert queue.results_by_index() == {0: "fast-result"}
        assert chunk.indices == (0,)

    def test_fully_completed_chunk_not_requeued_on_release(self) -> None:
        queue, _ = make_queue(total=2, chunk_size=2)
        queue.acquire("w")
        queue.complete(0, "r0", "w")
        queue.complete(1, "r1", "w")
        assert queue.release("w") == 0
        assert queue.acquire("other") is None
        assert queue.done
