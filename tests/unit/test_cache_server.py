"""Unit tests for the consistency-unaware cache server baseline."""

from __future__ import annotations

import pytest

from repro.cache.base import CacheServer
from repro.db.invalidation import InvalidationRecord
from repro.sim.core import Simulator
from repro.types import TransactionOutcome
from tests.helpers import FakeBackend


@pytest.fixture
def backend() -> FakeBackend:
    return FakeBackend({"a": "a0", "b": "b0", "c": "c0"})


@pytest.fixture
def cache(sim: Simulator, backend: FakeBackend) -> CacheServer:
    return CacheServer(sim, backend)


def invalidation(key: str, version: int) -> InvalidationRecord:
    return InvalidationRecord(key=key, version=version, txn_id=version, commit_time=0.0)


class TestReadPath:
    def test_miss_fetches_from_backend(self, cache, backend) -> None:
        result = cache.read(1, "a", last_op=True)
        assert result.value == "a0"
        assert result.cache_miss is True
        assert backend.reads == 1
        assert cache.stats.misses == 1

    def test_hit_serves_from_storage(self, cache, backend) -> None:
        cache.read(1, "a", last_op=True)
        result = cache.read(2, "a", last_op=True)
        assert result.cache_miss is False
        assert backend.reads == 1
        assert cache.stats.hits == 1

    def test_hit_ratio(self, cache) -> None:
        cache.read(1, "a", last_op=True)
        cache.read(2, "a", last_op=True)
        cache.read(3, "a", last_op=True)
        assert cache.stats.hit_ratio == pytest.approx(2 / 3)

    def test_baseline_never_aborts_on_stale_data(self, cache, backend) -> None:
        cache.read(1, "a")          # caches a@0
        backend.commit(["a", "b"])  # a, b -> version 1
        # Stale a@0 plus fresh b@1: the baseline happily returns both.
        result_b = cache.read(1, "b", last_op=True)
        assert result_b.version == 1
        assert cache.stats.transactions_committed == 1


class TestTransactionReporting:
    def test_committed_record_reaches_listener(self, cache) -> None:
        records = []
        cache.add_transaction_listener(records.append)
        cache.read(7, "a")
        cache.read(7, "b", last_op=True)
        assert len(records) == 1
        record = records[0]
        assert record.txn_id == 7
        assert set(record.reads) == {"a", "b"}
        assert record.outcome is TransactionOutcome.COMMITTED

    def test_client_abort_reported(self, cache) -> None:
        records = []
        cache.add_transaction_listener(records.append)
        cache.read(7, "a")
        cache.abort_transaction(7)
        assert records[0].outcome is TransactionOutcome.ABORTED
        assert cache.stats.transactions_aborted == 1

    def test_abort_of_unknown_transaction_is_noop(self, cache) -> None:
        cache.abort_transaction(999)
        assert cache.stats.transactions_aborted == 0

    def test_txn_id_reuse_after_last_op_starts_fresh(self, cache) -> None:
        records = []
        cache.add_transaction_listener(records.append)
        cache.read(7, "a", last_op=True)
        cache.read(7, "b", last_op=True)
        assert len(records) == 2
        assert set(records[0].reads) == {"a"}
        assert set(records[1].reads) == {"b"}

    def test_open_transactions_tracked(self, cache) -> None:
        cache.read(1, "a")
        cache.read(2, "a")
        assert cache.open_transactions == 2
        cache.read(1, "b", last_op=True)
        assert cache.open_transactions == 1

    def test_non_repeatable_read_flagged(self, cache, backend) -> None:
        records = []
        cache.add_transaction_listener(records.append)
        cache.read(1, "a")
        backend.commit(["a"])
        cache.handle_invalidation(invalidation("a", 1))
        cache.read(1, "a", last_op=True)  # re-fetches version 1
        assert records[0].non_repeatable is True


class TestInvalidations:
    def test_invalidation_evicts_stale_entry(self, cache, backend) -> None:
        cache.read(1, "a", last_op=True)
        backend.commit(["a"])
        cache.handle_invalidation(invalidation("a", 1))
        assert cache.stats.invalidations_applied == 1
        result = cache.read(2, "a", last_op=True)
        assert result.cache_miss is True
        assert result.version == 1

    def test_stale_invalidation_ignored(self, cache, backend) -> None:
        backend.commit(["a"])
        cache.read(1, "a", last_op=True)  # caches a@1
        cache.handle_invalidation(invalidation("a", 1))
        assert cache.stats.invalidations_ignored == 1
        assert cache.read(2, "a", last_op=True).cache_miss is False

    def test_invalidation_for_uncached_key_ignored(self, cache) -> None:
        cache.handle_invalidation(invalidation("never-read", 3))
        assert cache.stats.invalidations_ignored == 1

    def test_lost_invalidation_leaves_stale_entry(self, cache, backend) -> None:
        """The root cause of the paper's problem: no invalidation, no
        eviction, so the cache keeps serving the old version."""
        cache.read(1, "a", last_op=True)
        backend.commit(["a"])
        # No invalidation delivered.
        result = cache.read(2, "a", last_op=True)
        assert result.version == 0
        assert backend.version_of("a") == 1

    def test_foreign_namespace_invalidation_rejected(self, sim) -> None:
        """Versions are incomparable across backends: a record stamped with
        another backend's namespace means crossed wiring, not staleness."""
        from repro.db.database import Database, DatabaseConfig
        from repro.errors import SimulationError

        database = Database(sim, DatabaseConfig(name="eu-db"))
        database.load({"a": 0})
        cache = CacheServer(sim, database)
        assert cache.backend_namespace == "eu-db"
        cache.handle_invalidation(
            InvalidationRecord(
                key="a", version=1, txn_id=1, commit_time=0.0, namespace="eu-db"
            )
        )
        with pytest.raises(SimulationError, match="namespace"):
            cache.handle_invalidation(
                InvalidationRecord(
                    key="a", version=1, txn_id=1, commit_time=0.0,
                    namespace="us-db",
                )
            )

    def test_namespace_guard_skipped_for_plain_backends(self, cache) -> None:
        """Test doubles without a namespace keep working untagged."""
        assert cache.backend_namespace is None
        cache.handle_invalidation(
            InvalidationRecord(
                key="a", version=1, txn_id=1, commit_time=0.0, namespace="db"
            )
        )
