"""Unit tests for the database facade: transactions, versions, dependency
lists, invalidation fan-out."""

from __future__ import annotations

import pytest

from repro.core.deplist import UNBOUNDED
from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.errors import ConfigurationError, KeyNotFound
from repro.sim.channel import Channel
from tests.conftest import commit_update


class TestExecuteUpdate:
    def test_commit_installs_values_and_versions(self, sim, database) -> None:
        database.load({"a": 0, "b": 0})
        committed = commit_update(sim, database, ["a", "b"], value="x")
        assert committed.txn_id == 1
        assert committed.writes == {"a": 1, "b": 1}
        assert committed.reads == {"a": 0, "b": 0}
        assert database.read_entry("a").value == "x"
        assert database.read_entry("a").version == 1

    def test_versions_increase_per_commit(self, sim, database) -> None:
        database.load({"a": 0})
        first = commit_update(sim, database, ["a"])
        second = commit_update(sim, database, ["a"])
        assert (first.txn_id, second.txn_id) == (1, 2)
        assert second.reads == {"a": 1}
        assert database.latest_version == 2

    def test_transaction_version_exceeds_accessed_versions(self, sim, database) -> None:
        """§III-A: a transaction's version is larger than the versions of
        all objects it accessed."""
        database.load({"a": 0, "b": 0})
        for _ in range(5):
            committed = commit_update(sim, database, ["a", "b"])
            assert all(committed.txn_id > v for v in committed.reads.values())

    def test_read_set_may_exceed_write_set(self, sim, database) -> None:
        database.load({"a": 0, "b": 0})
        committed = commit_update(sim, database, ["a", "b"], write_keys=["a"])
        assert set(committed.writes) == {"a"}
        assert set(committed.reads) == {"a", "b"}
        assert database.read_entry("b").version == 0

    def test_compute_function_receives_read_entries(self, sim, database) -> None:
        database.load({"counter": 10})
        process = database.execute_update(
            read_keys=["counter"],
            write_keys=["counter"],
            compute=lambda reads: {"counter": reads["counter"].value + 1},
        )
        sim.run()
        assert process.ok
        assert database.read_entry("counter").value == 11

    def test_writes_and_compute_are_mutually_exclusive(self, sim, database) -> None:
        with pytest.raises(ConfigurationError):
            database.execute_update(["a"], writes={"a": 1}, compute=lambda r: {})
        with pytest.raises(ConfigurationError):
            database.execute_update(["a"])
        with pytest.raises(ConfigurationError):
            database.execute_update(["a"], compute=lambda r: {})

    def test_write_outside_declared_set_aborts(self, sim, database) -> None:
        database.load({"a": 0, "b": 0})
        process = database.execute_update(
            read_keys=["a"], write_keys=["a"], compute=lambda reads: {"b": 1}
        )
        sim.run()
        assert process.triggered and not process.ok
        assert database.stats.aborted == 1

    def test_unknown_key_aborts_transaction(self, sim, database) -> None:
        process = database.execute_update(read_keys=["ghost"], writes={"ghost": 1})
        sim.run()
        assert process.triggered and not process.ok

    def test_stats_count_commits(self, sim, database) -> None:
        database.load({"a": 0})
        commit_update(sim, database, ["a"])
        commit_update(sim, database, ["a"])
        assert database.stats.committed == 2
        assert database.stats.total_transactions == 2


class TestDependencyLists:
    def test_written_objects_share_full_list_minus_self(self, sim, database) -> None:
        database.load({"a": 0, "b": 0, "c": 0})
        commit_update(sim, database, ["a", "b"])
        a = database.read_entry("a")
        b = database.read_entry("b")
        assert a.dep_on("b") == 1
        assert a.dep_on("a") is None
        assert b.dep_on("a") == 1
        assert b.dep_on("b") is None

    def test_inheritance_chains_versions(self, sim, database) -> None:
        database.load({"a": 0, "b": 0, "c": 0})
        commit_update(sim, database, ["a", "b"])      # version 1
        commit_update(sim, database, ["b", "c"])      # version 2
        c = database.read_entry("c")
        assert c.dep_on("b") == 2
        # c inherits b's dependency on a at version 1.
        assert c.dep_on("a") == 1

    def test_pure_reads_enter_dependencies_at_read_version(self, sim, database) -> None:
        database.load({"a": 0, "b": 0})
        commit_update(sim, database, ["a"])  # a -> version 1
        commit_update(sim, database, ["a", "b"], write_keys=["b"])
        b = database.read_entry("b")
        assert b.dep_on("a") == 1

    def test_deplist_respects_bound(self, sim) -> None:
        database = Database(sim, DatabaseConfig(deplist_max=2, timing=TimingConfig(0, 0, 0, 0)))
        database.load({k: 0 for k in "abcdef"})
        commit_update(sim, database, list("abcdef"))
        for key in "abcdef":
            assert len(database.read_entry(key).deps) <= 2

    def test_deplist_zero_disables_tracking(self, sim) -> None:
        database = Database(sim, DatabaseConfig(deplist_max=0, timing=TimingConfig(0, 0, 0, 0)))
        database.load({"a": 0, "b": 0})
        commit_update(sim, database, ["a", "b"])
        assert database.read_entry("a").deps == ()

    def test_deplist_unbounded_keeps_everything(self, sim) -> None:
        database = Database(
            sim, DatabaseConfig(deplist_max=UNBOUNDED, timing=TimingConfig(0, 0, 0, 0))
        )
        keys = [f"k{i}" for i in range(12)]
        database.load({k: 0 for k in keys})
        commit_update(sim, database, keys)
        assert len(database.read_entry("k0").deps) == len(keys) - 1


class TestInvalidations:
    def test_invalidation_sent_per_written_object(self, sim, database) -> None:
        database.load({"a": 0, "b": 0})
        received = []
        channel = Channel(sim, received.append, latency=0.0)
        database.register_invalidation_channel(channel)
        commit_update(sim, database, ["a", "b"])
        sim.run()
        assert sorted(r.key for r in received) == ["a", "b"]
        assert all(r.version == 1 for r in received)
        assert database.stats.invalidations_sent == 2

    def test_fan_out_to_multiple_channels(self, sim, database) -> None:
        database.load({"a": 0})
        first, second = [], []
        database.register_invalidation_channel(Channel(sim, first.append))
        database.register_invalidation_channel(Channel(sim, second.append))
        commit_update(sim, database, ["a"])
        sim.run()
        assert len(first) == len(second) == 1

    def test_commit_listener_sees_committed_transaction(self, sim, database) -> None:
        database.load({"a": 0})
        seen = []
        database.add_commit_listener(seen.append)
        committed = commit_update(sim, database, ["a"])
        assert seen == [committed]


class TestReads:
    def test_read_entry_counts_stats(self, sim, database) -> None:
        database.load({"a": 0})
        database.read_entry("a")
        database.read_entry("a")
        assert database.stats.entry_reads == 2

    def test_read_entry_missing_key(self, sim, database) -> None:
        with pytest.raises(KeyNotFound):
            database.read_entry("ghost")


class TestSharding:
    def test_single_shard_routes_everything(self, sim, fast_timing) -> None:
        database = Database(sim, DatabaseConfig(shards=1, timing=fast_timing))
        assert database.shard_for("x") is database.participants[0]

    def test_multi_shard_routing_is_stable(self, sim, fast_timing) -> None:
        database = Database(sim, DatabaseConfig(shards=4, timing=fast_timing))
        keys = [f"k{i}" for i in range(50)]
        first = [database.shard_for(k).name for k in keys]
        second = [database.shard_for(k).name for k in keys]
        assert first == second
        assert len(set(first)) > 1

    def test_shard_placement_is_process_independent(self, sim, fast_timing) -> None:
        """Placement must not depend on the per-process ``hash`` salt.

        Builtin ``hash(str)`` is salted via PYTHONHASHSEED, so using it
        would give each multiprocessing sweep worker its own placement and
        break serial == parallel determinism. CRC-32 is stable: pin the
        exact placement here so any regression to a salted hash fails.
        """
        import zlib

        database = Database(sim, DatabaseConfig(shards=4, timing=fast_timing))
        for key in [f"k{i}" for i in range(50)]:
            expected = zlib.crc32(key.encode("utf-8")) % 4
            assert database.shard_for(key) is database.participants[expected]

    def test_invalid_config_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DatabaseConfig(shards=0)
        with pytest.raises(ConfigurationError):
            DatabaseConfig(deplist_max=-5)

    def test_unknown_pruning_policy_rejected_at_config_time(self) -> None:
        with pytest.raises(ConfigurationError, match="pruning policy"):
            DatabaseConfig(pruning_policy="lru ")  # a typo, caught early
        for policy in ("lru", "newest-version", "random"):
            assert DatabaseConfig(pruning_policy=policy).pruning_policy == policy

    def test_namespace_is_the_configured_name(self, sim, fast_timing) -> None:
        database = Database(
            sim, DatabaseConfig(name="eu-db", timing=fast_timing)
        )
        assert database.namespace == "eu-db"
        assert Database(sim).namespace == "db"


class TestTimingRealism:
    def test_transaction_takes_configured_time(self, sim) -> None:
        timing = TimingConfig(
            lock_delay=0.0, execute_delay=0.002, prepare_delay=0.001, commit_delay=0.001
        )
        database = Database(sim, DatabaseConfig(timing=timing))
        database.load({"a": 0})
        process = database.execute_update(read_keys=["a"], writes={"a": 1})
        sim.run()
        assert process.ok
        committed = process.value
        assert committed.commit_time == pytest.approx(0.004)

    def test_concurrent_disjoint_transactions_overlap(self, sim) -> None:
        timing = TimingConfig(0.0, 0.002, 0.001, 0.001)
        database = Database(sim, DatabaseConfig(timing=timing))
        database.load({"a": 0, "b": 0})
        pa = database.execute_update(read_keys=["a"], writes={"a": 1})
        pb = database.execute_update(read_keys=["b"], writes={"b": 1})
        sim.run()
        assert pa.ok and pb.ok
        # Disjoint transactions proceed in parallel: same commit time.
        assert pa.value.commit_time == pb.value.commit_time
