"""Tests for the package's public surface: everything advertised importable,
documented, and wired to the same objects the submodules export."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro


class TestPublicAPI:
    def test_all_names_resolve(self) -> None:
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ advertises missing {name!r}"

    def test_version_is_set(self) -> None:
        assert repro.__version__

    def test_reexports_are_canonical(self) -> None:
        from repro.core.tcache import TCache
        from repro.experiments.runner import run_column
        from repro.monitor.sgt import SerializationGraphTester

        assert repro.TCache is TCache
        assert repro.run_column is run_column
        assert repro.SerializationGraphTester is SerializationGraphTester

    def test_historical_paths_still_canonical_after_moves(self) -> None:
        """The scenario redesign moved these; old import paths must keep
        resolving to the same objects."""
        from repro.cache.kinds import CacheKind
        from repro.experiments.config import CacheKind as LegacyCacheKind
        from repro.experiments.runner import ColumnResult as LegacyColumnResult
        from repro.scenario.results import ColumnResult

        assert LegacyCacheKind is CacheKind
        assert LegacyColumnResult is ColumnResult
        assert repro.ColumnResult is ColumnResult

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.sim",
            "repro.db",
            "repro.core",
            "repro.cache",
            "repro.monitor",
            "repro.workloads",
            "repro.clients",
            "repro.experiments",
            "repro.scenario",
            "repro.dispatch",
        ],
    )
    def test_subpackages_have_docstrings(self, module_name: str) -> None:
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_classes_are_documented(self) -> None:
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_class_methods_are_documented(self) -> None:
        """Every public method on the headline classes carries a docstring."""
        from repro import CacheServer, Database, DependencyList, TCache

        undocumented = []
        for cls in (Database, TCache, CacheServer, DependencyList):
            for name, member in inspect.getmembers(cls):
                if name.startswith("_") or not callable(member):
                    continue
                if not getattr(member, "__doc__", None):
                    undocumented.append(f"{cls.__name__}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"
