"""Unit tests for the versioned object store."""

from __future__ import annotations

import pytest

from repro.core.deplist import DependencyList
from repro.db.store import VersionedStore
from repro.errors import KeyNotFound
from repro.types import INITIAL_VERSION


class TestLoad:
    def test_loaded_entries_have_initial_version(self) -> None:
        store = VersionedStore()
        store.load({"a": 1, "b": 2})
        assert store.get("a").version == INITIAL_VERSION
        assert store.get("a").deps == ()
        assert store.get("b").value == 2
        assert len(store) == 2

    def test_missing_key_raises(self) -> None:
        store = VersionedStore()
        with pytest.raises(KeyNotFound):
            store.get("ghost")

    def test_contains(self) -> None:
        store = VersionedStore()
        store.load({"a": 1})
        assert store.contains("a")
        assert not store.contains("b")


class TestInstall:
    def test_install_replaces_value_version_and_deps(self) -> None:
        store = VersionedStore()
        store.load({"a": "old"})
        deps = DependencyList.from_pairs([("b", 3)])
        entry = store.install("a", "new", version=7, deps=deps)
        assert entry.value == "new"
        assert store.get("a").version == 7
        assert store.get("a").deps == deps.entries
        assert store.version_of("a") == 7

    def test_version_regression_rejected(self) -> None:
        store = VersionedStore()
        store.load({"a": 0})
        store.install("a", 1, version=5, deps=DependencyList())
        with pytest.raises(AssertionError):
            store.install("a", 2, version=5, deps=DependencyList())
        with pytest.raises(AssertionError):
            store.install("a", 2, version=3, deps=DependencyList())

    def test_install_counts(self) -> None:
        store = VersionedStore()
        store.load({"a": 0, "b": 0})
        store.install("a", 1, version=1, deps=DependencyList())
        store.install("b", 1, version=2, deps=DependencyList())
        assert store.install_count == 2

    def test_install_new_key(self) -> None:
        store = VersionedStore()
        store.install("fresh", 9, version=1, deps=DependencyList())
        assert store.get("fresh").value == 9


class TestSnapshot:
    def test_snapshot_is_detached(self) -> None:
        store = VersionedStore()
        store.load({"a": 1})
        snap = store.snapshot()
        store.install("a", 2, version=1, deps=DependencyList())
        assert snap["a"].value == 1
        assert store.get("a").value == 2

    def test_keys_iteration(self) -> None:
        store = VersionedStore()
        store.load({"a": 1, "b": 2})
        assert set(store.keys()) == {"a", "b"}
