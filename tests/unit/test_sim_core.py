"""Unit tests for the discrete-event simulation kernel (event loop)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.core import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self, sim: Simulator) -> None:
        assert sim.now == 0.0

    def test_callback_runs_at_scheduled_time(self, sim: Simulator) -> None:
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_callbacks_run_in_time_order(self, sim: Simulator) -> None:
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim: Simulator) -> None:
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_negative_delay_rejected(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_nested_scheduling(self, sim: Simulator) -> None:
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]

    def test_run_until_stops_before_later_events(self, sim: Simulator) -> None:
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1

    def test_run_until_advances_clock_when_queue_drains(self, sim: Simulator) -> None:
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_resume_after_partial_run(self, sim: Simulator) -> None:
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        sim.run(until=5.0)
        sim.run()
        assert seen == [1, 10]

    def test_step_executes_one_event(self, sim: Simulator) -> None:
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(2.0, lambda: seen.append("b"))
        assert sim.step() is True
        assert seen == ["a"]
        assert sim.step() is True
        assert sim.step() is False

    def test_reentrant_run_rejected(self, sim: Simulator) -> None:
        failures = []

        def reenter() -> None:
            try:
                sim.run()
            except SimulationError as error:
                failures.append(error)

        sim.schedule(0.0, reenter)
        sim.run()
        assert len(failures) == 1


class TestImmediateQueueOrdering:
    """The immediate FIFO merges with the heap in (time, sequence) order.

    These pin the contract that made the zero-delay fast path safe: the
    executed order is exactly what a single heap keyed by
    ``(time, sequence)`` would produce, so seeded artifacts are unchanged.
    """

    def test_zero_delay_yields_to_same_time_heap_entries(self, sim: Simulator) -> None:
        """A delay-0 callback scheduled *during* an event at time t runs
        after heap entries already queued at t (their sequence is older)."""
        order = []

        def first() -> None:
            order.append("first")
            sim.schedule(0.0, lambda: order.append("immediate"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "immediate"]

    def test_zero_delay_precedes_strictly_later_heap_entries(
        self, sim: Simulator
    ) -> None:
        order = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: order.append("now")))
        sim.schedule(2.0, lambda: order.append("later"))
        sim.run()
        assert order == ["now", "later"]

    def test_immediates_run_fifo(self, sim: Simulator) -> None:
        order = []
        for tag in ("a", "b", "c"):
            sim.schedule(0.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_pending_events_counts_both_queues(self, sim: Simulator) -> None:
        sim.schedule(0.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.pending_events == 2

    def test_step_merges_queues_in_sequence_order(self, sim: Simulator) -> None:
        order = []
        sim.schedule(0.0, lambda: order.append("imm"))
        sim.schedule(1.0, lambda: order.append("timed"))
        assert sim.step() and order == ["imm"]
        assert sim.step() and order == ["imm", "timed"]
        assert sim.step() is False

    def test_schedule_arg_avoids_closures(self, sim: Simulator) -> None:
        seen = []
        sim.schedule(0.0, seen.append, "zero")
        sim.schedule(1.0, seen.append, "timed")
        sim.run()
        assert seen == ["zero", "timed"]

    def test_events_executed_counter(self, sim: Simulator) -> None:
        for _ in range(3):
            sim.schedule(0.5, lambda: None)
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_run_until_before_now_leaves_immediates_queued(
        self, sim: Simulator
    ) -> None:
        """An immediate queued at now=5 must not fire in run(until=3)."""
        sim.run(until=5.0)
        seen = []
        event = sim.event()
        event.succeed("late")
        event.add_callback(lambda e: seen.append(e.value))
        sim.run(until=3.0)
        assert seen == []
        assert sim.pending_events == 1
        sim.run()
        assert seen == ["late"]


class TestEvent:
    def test_succeed_delivers_value_to_callbacks(self, sim: Simulator) -> None:
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(42)
        sim.run()
        assert seen == [42]

    def test_callback_added_after_trigger_still_runs(self, sim: Simulator) -> None:
        event = sim.event()
        event.succeed("late")
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == ["late"]

    def test_double_trigger_rejected(self, sim: Simulator) -> None:
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_fail_requires_exception(self, sim: Simulator) -> None:
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_fail_marks_not_ok(self, sim: Simulator) -> None:
        event = sim.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.triggered and not event.ok
        assert event.value is error

    def test_value_before_trigger_rejected(self, sim: Simulator) -> None:
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value


class TestTimeout:
    def test_timeout_fires_after_delay(self, sim: Simulator) -> None:
        timeout = sim.timeout(3.0, value="done")
        sim.run()
        assert timeout.triggered and timeout.ok
        assert timeout.value == "done"
        assert sim.now == 3.0

    def test_negative_delay_rejected(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_at_current_time(self, sim: Simulator) -> None:
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.triggered
        assert sim.now == 0.0


class TestComposites:
    def test_any_of_fires_on_first(self, sim: Simulator) -> None:
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        first = sim.any_of([slow, fast])
        sim.run(until=2.0)
        assert first.triggered
        assert first.value is fast

    def test_any_of_requires_events(self, sim: Simulator) -> None:
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_all_of_waits_for_every_event(self, sim: Simulator) -> None:
        timeouts = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
        joined = sim.all_of(timeouts)
        sim.run(until=2.5)
        assert not joined.triggered
        sim.run()
        assert joined.triggered
        assert joined.value == [1.0, 3.0, 2.0]

    def test_all_of_empty_succeeds_immediately(self, sim: Simulator) -> None:
        joined = sim.all_of([])
        assert joined.triggered
        assert joined.value == []

    def test_all_of_fails_on_child_failure(self, sim: Simulator) -> None:
        good = sim.timeout(1.0)
        bad = sim.event()
        joined = sim.all_of([good, bad])
        bad.fail(RuntimeError("child failed"))
        sim.run()
        assert joined.triggered and not joined.ok
        assert isinstance(joined.value, RuntimeError)

    def test_any_of_failure_propagates(self, sim: Simulator) -> None:
        pending = sim.event()
        failing = sim.event()
        composite = sim.any_of([pending, failing])
        failing.fail(ValueError("first failure"))
        sim.run()
        assert composite.triggered and not composite.ok
