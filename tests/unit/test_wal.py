"""Unit tests for the write-ahead log."""

from __future__ import annotations

from repro.db.wal import RecordType, WriteAheadLog


class TestAppend:
    def test_lsns_are_dense_and_ordered(self) -> None:
        wal = WriteAheadLog()
        records = [wal.append(RecordType.BEGIN, txn_id=i) for i in range(5)]
        assert [r.lsn for r in records] == [0, 1, 2, 3, 4]
        assert len(wal) == 5

    def test_payload_round_trips(self) -> None:
        wal = WriteAheadLog()
        record = wal.append(RecordType.PREPARE, 7, {"k": "v"})
        assert record.payload == {"k": "v"}

    def test_records_for_filters_by_transaction(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.BEGIN, 1)
        wal.append(RecordType.BEGIN, 2)
        wal.append(RecordType.COMMIT, 1)
        assert [r.record_type for r in wal.records_for(1)] == [
            RecordType.BEGIN,
            RecordType.COMMIT,
        ]

    def test_iteration_yields_in_lsn_order(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.BEGIN, 1)
        wal.append(RecordType.PREPARE, 1)
        assert [r.lsn for r in wal] == [0, 1]

    def test_truncate(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.BEGIN, 1)
        wal.truncate()
        assert len(wal) == 0


class TestRecoveryAnalysis:
    def test_prepared_without_decision_is_in_doubt(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.BEGIN, 1)
        wal.append(RecordType.PREPARE, 1, {"a": 1})
        in_doubt = wal.prepared_undecided()
        assert set(in_doubt) == {1}
        assert in_doubt[1].payload == {"a": 1}

    def test_committed_transaction_is_not_in_doubt(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.PREPARE, 1, {})
        wal.append(RecordType.COMMIT, 1)
        assert wal.prepared_undecided() == {}

    def test_aborted_transaction_is_not_in_doubt(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.PREPARE, 1, {})
        wal.append(RecordType.ABORT, 1)
        assert wal.prepared_undecided() == {}

    def test_mixed_history(self) -> None:
        wal = WriteAheadLog()
        for txn in (1, 2, 3):
            wal.append(RecordType.BEGIN, txn)
            wal.append(RecordType.PREPARE, txn, {"txn": txn})
        wal.append(RecordType.COMMIT, 1)
        wal.append(RecordType.ABORT, 3)
        assert set(wal.prepared_undecided()) == {2}

    def test_committed_transactions_listing(self) -> None:
        wal = WriteAheadLog()
        wal.append(RecordType.PREPARE, 5, {})
        wal.append(RecordType.COMMIT, 5)
        wal.append(RecordType.COMMIT, 9)
        assert wal.committed_transactions() == [5, 9]
