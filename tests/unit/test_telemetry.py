"""Unit tests for the telemetry spine: tracer, registry, schema, exports.

The load-bearing properties: snapshots are canonical (order-insensitive,
sorted at every level), the ``repro.telemetry/1`` validator rejects every
malformed shape it claims to, and the JSONL/Chrome exporters isolate wall
clock in exactly one header line.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    MetricsRegistry,
    TELEMETRY_SCHEMA,
    TRACE_SCHEMA,
    Tracer,
    chrome_trace,
    normalized_trace_lines,
    validate_telemetry,
)
from repro.telemetry.metrics import HISTOGRAM_BOUNDS
from repro.telemetry.tracer import CATEGORIES
from repro.experiments.report import normalized_artifact


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("cache.hits")
        registry.count("cache.hits", 4)
        assert registry.counter_value("cache.hits") == 5
        assert registry.counter_value("never.bumped") == 0

    def test_snapshot_is_schemad_and_sorted(self):
        registry = MetricsRegistry()
        registry.count("z.last")
        registry.count("a.first")
        registry.gauge("m.middle", 1.5)
        section = registry.snapshot()
        assert section["schema"] == TELEMETRY_SCHEMA
        assert list(section["counters"]) == ["a.first", "z.last"]
        validate_telemetry(section)

    def test_snapshot_canonical_across_insertion_order(self):
        """Two registries fed the same observations in opposite order
        serialize byte-identically — the property artifact byte-identity
        across jobs=1/jobs=N rests on."""
        forward, backward = MetricsRegistry(), MetricsRegistry()
        observations = [("b", 2), ("a", 1), ("c", 3)]
        for name, delta in observations:
            forward.count(name, delta)
        for name, delta in reversed(observations):
            backward.count(name, delta)
        for value in (0.5, 3.0, 700.0):
            forward.observe("latency", value)
        for value in (700.0, 3.0, 0.5):
            backward.observe("latency", value)
        assert json.dumps(forward.snapshot(), sort_keys=True) == json.dumps(
            backward.snapshot(), sort_keys=True
        )

    def test_histogram_bucket_math(self):
        registry = MetricsRegistry()
        # 0.001 lands in the first bucket (le 0.001), a huge value
        # overflows to +Inf, and the boundary itself is inclusive.
        registry.observe("h", 0.001)
        registry.observe("h", HISTOGRAM_BOUNDS[-1])
        registry.observe("h", HISTOGRAM_BOUNDS[-1] * 10)
        histogram = registry.snapshot()["histograms"]["h"]
        assert histogram["count"] == 3
        assert histogram["min"] == 0.001
        assert histogram["max"] == HISTOGRAM_BOUNDS[-1] * 10
        buckets = dict(
            (str(le), count) for le, count in histogram["buckets"]
        )
        assert buckets["0.001"] == 1
        assert buckets[str(HISTOGRAM_BOUNDS[-1])] == 1
        assert buckets["+Inf"] == 1

    def test_histogram_bounds_are_exponential(self):
        assert len(HISTOGRAM_BOUNDS) == 27
        for lower, upper in zip(HISTOGRAM_BOUNDS, HISTOGRAM_BOUNDS[1:]):
            assert upper == pytest.approx(lower * 2.0)


class TestValidateTelemetry:
    def valid_section(self) -> dict:
        registry = MetricsRegistry()
        registry.count("n", 2)
        registry.gauge("g", 0.5)
        registry.observe("h", 1.0)
        return registry.snapshot()

    def test_accepts_and_returns_valid_section(self):
        section = self.valid_section()
        assert validate_telemetry(section) is section

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda s: s.update(schema="repro.telemetry/0"), "schema"),
            (lambda s: s.pop("counters"), "counters"),
            (lambda s: s["counters"].update(n=1.5), "integer"),
            (lambda s: s["counters"].update(n=True), "integer"),
            (lambda s: s["gauges"].update(g="high"), "number"),
            (lambda s: s["histograms"]["h"].pop("buckets"), "buckets"),
            (
                lambda s: s["histograms"]["h"].update(count=5),
                "sum to",
            ),
            (
                lambda s: s["histograms"]["h"].update(buckets=[["x", 1]]),
                "bound",
            ),
        ],
    )
    def test_rejects_malformed_sections(self, mutate, message):
        section = self.valid_section()
        mutate(section)
        with pytest.raises(ConfigurationError, match=message):
            validate_telemetry(section)

    def test_rejects_non_dict(self):
        with pytest.raises(ConfigurationError, match="object"):
            validate_telemetry([1, 2, 3])


class TestTracer:
    def test_records_are_category_filtered(self):
        tracer = Tracer(point="p", categories={"cache"})
        assert tracer.wants("cache") and not tracer.wants("sim")
        tracer.emit(1.0, "cache", "serve", {"key": "k"})
        tracer.emit(2.0, "sim", "dispatch")
        assert tracer.record_dicts() == [
            {"t": 1.0, "cat": "cache", "name": "serve", "fields": {"key": "k"}}
        ]

    def test_default_categories_cover_every_emitter(self):
        tracer = Tracer()
        assert all(tracer.wants(category) for category in CATEGORIES)

    def test_metrics_forwarding(self):
        tracer = Tracer(point="p")
        tracer.count("c", 3)
        tracer.observe("h", 2.0)
        tracer.gauge("g", 1.0)
        section = tracer.snapshot()
        assert section["counters"]["c"] == 3
        assert section["histograms"]["h"]["count"] == 1
        validate_telemetry(section)


class FakePoint:
    def __init__(self, label):
        self.label = label


class FakeSpec:
    def __init__(self, points):
        self.name = "fake"
        self.points = points


class FakeResult:
    def __init__(self, trace):
        self.trace = trace


class FakeSweep:
    def __init__(self, traces, wall=1.25):
        self.spec = FakeSpec([FakePoint(f"p{i}") for i in range(len(traces))])
        self.results = [FakeResult(trace) for trace in traces]
        self.wall_clock_seconds = wall


class TestExport:
    def sweep(self, wall=1.25) -> FakeSweep:
        return FakeSweep(
            [
                [{"t": 0.5, "cat": "sim", "name": "dispatch"}],
                [{"t": 0.75, "cat": "cache", "name": "serve", "fields": {"hit": True}}],
            ],
            wall=wall,
        )

    def test_jsonl_isolates_wall_clock_in_header(self):
        from repro.telemetry import trace_jsonl_lines

        lines = trace_jsonl_lines([self.sweep()])
        header = json.loads(lines[0])
        assert header == {
            "kind": "header",
            "schema": TRACE_SCHEMA,
            "sweep": "fake",
            "wall_clock_seconds": 1.25,
        }
        for line in lines[1:]:
            record = json.loads(line)
            assert record["kind"] == "record"
            assert "wall_clock_seconds" not in record

    def test_normalized_lines_erase_wall_clock_only(self):
        from repro.telemetry import trace_jsonl_lines

        fast = trace_jsonl_lines([self.sweep(wall=0.1)])
        slow = trace_jsonl_lines([self.sweep(wall=99.9)])
        assert fast != slow
        assert normalized_trace_lines(fast) == normalized_trace_lines(slow)

    def test_chrome_trace_shape(self):
        from repro.telemetry import trace_jsonl_lines

        document = chrome_trace(trace_jsonl_lines([self.sweep()]))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = [event for event in events if event["ph"] == "M"]
        instants = [event for event in events if event["ph"] == "i"]
        assert {event["name"] for event in metadata} == {
            "process_name",
            "thread_name",
        }
        assert len(instants) == 2
        # sim seconds -> trace microseconds; each point its own thread.
        assert instants[0]["ts"] == pytest.approx(0.5e6)
        assert instants[0]["tid"] != instants[1]["tid"]
        assert instants[1]["args"] == {"hit": True}

    def test_write_helpers_roundtrip(self, tmp_path):
        from repro.telemetry import write_chrome_trace, write_trace_jsonl, trace_jsonl_lines

        jsonl_path = tmp_path / "trace.jsonl"
        chrome_path = tmp_path / "trace.json"
        written = write_trace_jsonl(jsonl_path, [self.sweep()])
        assert written == 3
        lines = jsonl_path.read_text().splitlines()
        assert len(lines) == 3
        events = write_chrome_trace(chrome_path, lines)
        document = json.loads(chrome_path.read_text())
        assert len(document["traceEvents"]) == events


class TestNormalizedArtifact:
    def test_strips_environment_keys_at_depth(self):
        artifact = {
            "jobs": 8,
            "wall_clock_seconds": 3.2,
            "rows": [{"value": 1, "telemetry": {"schema": TELEMETRY_SCHEMA}}],
            "nested": {"trace": [1, 2], "kept": True},
        }
        assert normalized_artifact(artifact) == (
            '{"nested":{"kept":true},"rows":[{"value":1}]}'
        )

    def test_accepts_objects_with_to_artifact(self):
        class WithArtifact:
            def to_artifact(self):
                return {"jobs": 2, "kept": 1}

        assert normalized_artifact(WithArtifact()) == '{"kept":1}'

    def test_plain_values_pass_through(self):
        assert normalized_artifact([1, "two"]) == '[1,"two"]'


class TestCapture:
    def test_capture_installs_and_restores_thread_local(self):
        from repro import telemetry

        assert telemetry.active_tracer() is None
        with telemetry.capture("outer") as outer:
            assert telemetry.active_tracer() is outer
            with telemetry.capture("inner") as inner:
                assert telemetry.active_tracer() is inner
            assert telemetry.active_tracer() is outer
        assert telemetry.active_tracer() is None

    def test_enable_disable_flag_and_recording(self):
        from repro import telemetry

        assert not telemetry.enabled()
        telemetry.enable()
        try:
            assert telemetry.enabled()
            telemetry.record_sweep("sweep-sentinel")
            assert telemetry.drain_recorded_sweeps() == ["sweep-sentinel"]
            assert telemetry.drain_recorded_sweeps() == []
        finally:
            telemetry.disable()
        assert not telemetry.enabled()

    def test_disable_drops_unexported_sweeps(self):
        from repro import telemetry

        telemetry.enable()
        telemetry.record_sweep("doomed")
        telemetry.disable()
        assert telemetry.drain_recorded_sweeps() == []
