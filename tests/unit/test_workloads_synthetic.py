"""Unit tests for the synthetic workload generators (§V-A1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.base import index_of, key_for
from repro.workloads.synthetic import (
    DriftingClusterWorkload,
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    PhaseSwitchWorkload,
    UniformWorkload,
)


class TestKeyNaming:
    def test_round_trip(self) -> None:
        for index in (0, 7, 1999, 123456):
            assert index_of(key_for(index)) == index

    def test_keys_sort_numerically(self) -> None:
        keys = [key_for(i) for i in range(200)]
        assert keys == sorted(keys)


class TestPerfectClusters:
    def test_accesses_confined_to_one_cluster(self, rng) -> None:
        workload = PerfectClusterWorkload(n_objects=2000, cluster_size=5)
        for _ in range(200):
            accesses = workload.access_set(rng, now=0.0)
            clusters = {index_of(k) // 5 for k in accesses}
            assert len(clusters) == 1
            assert len(accesses) == 5

    def test_repetitions_allowed(self, rng) -> None:
        workload = PerfectClusterWorkload(n_objects=100, cluster_size=5)
        saw_repeat = any(
            len(set(workload.access_set(rng, 0.0))) < 5 for _ in range(100)
        )
        assert saw_repeat  # 5 draws from 5 objects repeat often

    def test_all_clusters_reachable(self, rng) -> None:
        workload = PerfectClusterWorkload(n_objects=50, cluster_size=5)
        clusters = set()
        for _ in range(500):
            clusters.add(index_of(workload.access_set(rng, 0.0)[0]) // 5)
        assert clusters == set(range(10))

    def test_cluster_size_must_divide(self) -> None:
        with pytest.raises(ConfigurationError):
            PerfectClusterWorkload(n_objects=11, cluster_size=5)

    def test_all_keys(self) -> None:
        workload = PerfectClusterWorkload(n_objects=10, cluster_size=5)
        assert len(workload.all_keys()) == 10


class TestParetoClusters:
    def test_high_alpha_stays_in_cluster(self, rng) -> None:
        workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=4.0)
        in_cluster = 0
        total = 0
        for _ in range(300):
            accesses = workload.access_set(rng, 0.0)
            head = index_of(accesses[0]) // 5  # approximation: first access
            for key in accesses:
                total += 1
                if index_of(key) // 5 == head:
                    in_cluster += 1
        assert in_cluster / total > 0.9

    def test_low_alpha_spreads_widely(self, rng) -> None:
        workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=1 / 32)
        distinct_clusters = set()
        for _ in range(300):
            for key in workload.access_set(rng, 0.0):
                distinct_clusters.add(index_of(key) // 5)
        assert len(distinct_clusters) > 100

    def test_wraparound_stays_in_range(self, rng) -> None:
        workload = ParetoClusterWorkload(n_objects=50, cluster_size=5, alpha=0.1)
        for _ in range(500):
            for key in workload.access_set(rng, 0.0):
                assert 0 <= index_of(key) < 50

    def test_invalid_alpha_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            ParetoClusterWorkload(alpha=0.0)


class TestUniform:
    def test_spreads_over_everything(self, rng) -> None:
        workload = UniformWorkload(n_objects=100, txn_size=5)
        seen = set()
        for _ in range(500):
            seen.update(index_of(k) for k in workload.access_set(rng, 0.0))
        assert len(seen) == 100

    def test_invalid_sizes_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            UniformWorkload(n_objects=0)
        with pytest.raises(ConfigurationError):
            UniformWorkload(n_objects=10, txn_size=0)


class TestPhaseSwitch:
    def test_delegates_by_time(self, rng) -> None:
        workload = PhaseSwitchWorkload(
            before=UniformWorkload(1000),
            after=PerfectClusterWorkload(1000, cluster_size=5),
            switch_time=58.0,
        )
        # After the switch every access set is single-cluster.
        for _ in range(100):
            accesses = workload.access_set(rng, now=60.0)
            assert len({index_of(k) // 5 for k in accesses}) == 1
        # Before, essentially never.
        multi = sum(
            1
            for _ in range(100)
            if len({index_of(k) // 5 for k in workload.access_set(rng, 10.0)}) > 1
        )
        assert multi > 80

    def test_key_universe_must_match(self) -> None:
        with pytest.raises(ConfigurationError):
            PhaseSwitchWorkload(UniformWorkload(10), UniformWorkload(20), 1.0)

    def test_all_keys_from_before_phase(self) -> None:
        workload = PhaseSwitchWorkload(UniformWorkload(10), UniformWorkload(10), 1.0)
        assert len(workload.all_keys()) == 10


class TestDrift:
    def test_shift_index_advances_with_time(self) -> None:
        workload = DriftingClusterWorkload(n_objects=20, cluster_size=5, shift_interval=180.0)
        assert workload.shift_at(0.0) == 0
        assert workload.shift_at(179.9) == 0
        assert workload.shift_at(180.0) == 1
        assert workload.shift_at(900.0) == 5

    def test_clusters_shift_by_one(self, rng) -> None:
        workload = DriftingClusterWorkload(n_objects=20, cluster_size=5, shift_interval=10.0)
        # At shift s, cluster j covers indices (5j + s + 0..4) mod 20, so
        # un-shifting every accessed index must land inside one cluster.
        for now, shift in ((0.0, 0), (10.0, 1), (25.0, 2)):
            for _ in range(50):
                indices = {index_of(k) for k in workload.access_set(rng, now)}
                unshifted = {(i - shift) % 20 for i in indices}
                clusters = {u // 5 for u in unshifted}
                assert len(clusters) == 1

    def test_wraps_around_the_range(self, rng) -> None:
        workload = DriftingClusterWorkload(n_objects=20, cluster_size=5, shift_interval=1.0)
        seen = set()
        for now in np.linspace(0, 19, 20):
            for _ in range(20):
                seen.update(index_of(k) for k in workload.access_set(rng, float(now)))
        assert seen == set(range(20))

    def test_invalid_interval_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DriftingClusterWorkload(shift_interval=0.0)


class TestCodec:
    """JSON round-tripping of the portable workload families."""

    def round_trip(self, workload):
        import json

        from repro.workloads.codec import workload_from_dict, workload_to_dict

        payload = json.loads(json.dumps(workload_to_dict(workload)))
        return workload_from_dict(payload)

    def test_flat_families_round_trip(self) -> None:
        for workload in (
            UniformWorkload(n_objects=50, txn_size=3),
            PerfectClusterWorkload(n_objects=50, cluster_size=5),
            ParetoClusterWorkload(n_objects=50, cluster_size=5, alpha=0.5),
            DriftingClusterWorkload(
                n_objects=50, cluster_size=5, shift_interval=7.0
            ),
        ):
            rebuilt = self.round_trip(workload)
            assert type(rebuilt) is type(workload)
            assert list(rebuilt.all_keys()) == list(workload.all_keys())

    def test_round_trip_preserves_draw_sequence(self) -> None:
        workload = ParetoClusterWorkload(n_objects=50, cluster_size=5, alpha=0.5)
        rebuilt = self.round_trip(workload)
        left = workload.access_set(np.random.default_rng(3), 0.0)
        right = rebuilt.access_set(np.random.default_rng(3), 0.0)
        assert left == right

    def test_wrappers_round_trip_recursively(self) -> None:
        from repro.workloads.synthetic import MixtureWorkload, OffsetWorkload

        offset = OffsetWorkload(UniformWorkload(n_objects=10), offset=100)
        rebuilt = self.round_trip(offset)
        assert list(rebuilt.all_keys()) == list(offset.all_keys())

        mixture = MixtureWorkload(
            [(0.75, UniformWorkload(n_objects=10)), (0.25, offset)]
        )
        rebuilt = self.round_trip(mixture)
        assert [w for w, _ in rebuilt.components] == [0.75, 0.25]
        assert list(rebuilt.all_keys()) == list(mixture.all_keys())

        phases = PhaseSwitchWorkload(
            UniformWorkload(n_objects=20),
            PerfectClusterWorkload(n_objects=20, cluster_size=5),
            switch_time=3.0,
        )
        rebuilt = self.round_trip(phases)
        assert rebuilt.switch_time == 3.0
        assert type(rebuilt.after) is PerfectClusterWorkload

    def test_non_portable_types_rejected(self) -> None:
        from repro.workloads.codec import workload_from_dict, workload_to_dict

        with pytest.raises(ConfigurationError, match="not portable"):
            workload_to_dict(object())
        with pytest.raises(ConfigurationError):
            workload_from_dict({"type": "NoSuchWorkload"})
        with pytest.raises(ConfigurationError):
            workload_from_dict({"n_objects": 5})
        # A misspelled field in a hand-edited spec gets the codec's clean
        # error, not a raw TypeError from the constructor.
        with pytest.raises(ConfigurationError, match="bad UniformWorkload"):
            workload_from_dict(
                {"type": "UniformWorkload", "n_objects": 5, "txn_siz": 3}
            )
