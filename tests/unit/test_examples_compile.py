"""The examples must at least parse and import-resolve against the API.

Running them takes minutes (they simulate full columns), so the suite
checks compilation and the import surface; the examples themselves are
executed in documentation/CI passes.
"""

from __future__ import annotations

import ast
import importlib
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path: Path) -> None:
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path: Path) -> None:
    """Every ``from X import Y`` in an example resolves today."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} does not exist"
                )


def test_examples_exist() -> None:
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "online_retailer.py", "social_network.py",
            "web_album_acl.py"} <= names
    assert len(EXAMPLES) >= 5


def test_examples_have_docstrings() -> None:
    for path in EXAMPLES:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
