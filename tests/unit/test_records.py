"""Unit tests for per-transaction read records (the cache's §III-B state)."""

from __future__ import annotations

from repro.core.deplist import DependencyList
from repro.core.records import TransactionContext


def make_context() -> TransactionContext:
    return TransactionContext(txn_id=1, start_time=0.0)


class TestRecording:
    def test_reads_accumulate(self) -> None:
        context = make_context()
        context.record_read("a", 1, DependencyList())
        context.record_read("b", 2, DependencyList())
        assert context.read_count == 2
        assert context.keys_read() == {"a", "b"}
        assert context.version_read("a") == 1
        assert context.version_read("missing") is None

    def test_direct_read_raises_requirement(self) -> None:
        context = make_context()
        context.record_read("a", 5, DependencyList())
        assert context.required_version("a") == (5, "a")

    def test_dependency_raises_requirement_with_source(self) -> None:
        context = make_context()
        context.record_read("a", 5, DependencyList.from_pairs([("b", 9)]))
        assert context.required_version("b") == (9, "a")

    def test_requirements_are_monotone(self) -> None:
        context = make_context()
        context.record_read("a", 5, DependencyList.from_pairs([("x", 3)]))
        context.record_read("b", 6, DependencyList.from_pairs([("x", 9)]))
        context.record_read("c", 7, DependencyList.from_pairs([("x", 4)]))
        assert context.required_version("x") == (9, "b")

    def test_equal_requirement_keeps_first_source(self) -> None:
        context = make_context()
        context.record_read("a", 5, DependencyList.from_pairs([("x", 9)]))
        context.record_read("b", 6, DependencyList.from_pairs([("x", 9)]))
        assert context.required_version("x") == (9, "a")

    def test_repeated_read_tracks_max_version(self) -> None:
        context = make_context()
        context.record_read("a", 5, DependencyList())
        context.record_read("a", 8, DependencyList())
        assert context.version_read("a") == 8
        assert context.read_count == 2
        assert context.keys_read() == {"a"}

    def test_read_records_preserve_order_and_deps(self) -> None:
        context = make_context()
        deps = DependencyList.from_pairs([("z", 1)])
        context.record_read("a", 1, deps)
        context.record_read("b", 2, DependencyList())
        assert [record.key for record in context.reads] == ["a", "b"]
        assert context.reads[0].deps is deps
