"""Unit tests for the scenario API: specs, wiring, results, library fleets."""

from __future__ import annotations

import pytest

from repro.cache.kinds import CacheKind
from repro.core.strategies import Strategy
from repro.errors import ConfigurationError
from repro.experiments.config import ColumnConfig
from repro.scenario import (
    DEFAULT_BACKEND_NAME,
    BackendSpec,
    EdgeSpec,
    ScenarioSpec,
    build_scenario,
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
    hot_backend_overload,
    regional_backends_scenario,
    run_scenario,
)
from repro.scenario.runner import TXN_ID_STRIDE
from repro.workloads.synthetic import PerfectClusterWorkload, UniformWorkload

WORKLOAD = PerfectClusterWorkload(n_objects=100, cluster_size=5)


def edge(name: str = "edge0", **overrides) -> EdgeSpec:
    defaults = dict(name=name, workload=WORKLOAD)
    defaults.update(overrides)
    return EdgeSpec(**defaults)


def tiny_scenario(*edges_: EdgeSpec, **overrides) -> ScenarioSpec:
    defaults = dict(
        name="tiny",
        edges=list(edges_) or [edge()],
        seed=3,
        duration=1.5,
        warmup=0.5,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestSpecValidation:
    def test_minimal_spec_builds(self) -> None:
        spec = tiny_scenario()
        assert len(spec) == 1
        assert spec.total_time == 2.0

    def test_empty_fleet_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="empty", edges=[])

    def test_duplicate_edge_names_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="duplicate edge names"):
            tiny_scenario(edge("same"), edge("same"))

    def test_bad_rates_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            edge(read_rate=0.0)
        with pytest.raises(ConfigurationError):
            edge(update_rate=-1.0)

    def test_loss_out_of_range_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            edge(invalidation_loss=1.5)

    def test_ttl_kind_requires_ttl(self) -> None:
        with pytest.raises(ConfigurationError):
            edge(cache_kind=CacheKind.TTL)
        assert edge(cache_kind=CacheKind.TTL, ttl=0.5).ttl == 0.5

    def test_deplist_limit_only_for_checking_caches(self) -> None:
        assert edge(deplist_limit=3).deplist_limit == 3
        with pytest.raises(ConfigurationError):
            edge(cache_kind=CacheKind.PLAIN, deplist_limit=3)
        with pytest.raises(ConfigurationError):
            edge(deplist_limit=-1)

    def test_tcache_rejects_negative_deplist_limit_directly(self) -> None:
        """The cache validates too — not only the edge spec."""
        from repro.core.tcache import TCache
        from repro.sim.core import Simulator
        from tests.helpers import FakeBackend

        with pytest.raises(ConfigurationError):
            TCache(Simulator(), FakeBackend({"a": "a0"}), deplist_limit=-1)

    def test_edge_lookup(self) -> None:
        spec = tiny_scenario(edge("a"), edge("b"))
        assert spec.edge("b").name == "b"
        with pytest.raises(KeyError):
            spec.edge("missing")

    def test_from_column_round_trips_the_knobs(self) -> None:
        config = ColumnConfig(
            seed=9,
            duration=2.0,
            warmup=0.5,
            strategy=Strategy.RETRY,
            invalidation_loss=0.3,
            update_rate=42.0,
        )
        spec = ScenarioSpec.from_column(config, WORKLOAD)
        assert len(spec) == 1
        assert spec.seed == 9
        only = spec.edges[0]
        assert only.strategy is Strategy.RETRY
        assert only.invalidation_loss == 0.3
        assert only.update_rate == 42.0
        assert spec.edge_config(only) == config

    def test_as_scenario_convenience(self) -> None:
        config = ColumnConfig(seed=4, duration=1.0)
        spec = config.as_scenario(WORKLOAD)
        assert isinstance(spec, ScenarioSpec)
        assert spec.seed == 4

    def test_as_dict_is_json_shaped(self) -> None:
        import json

        payload = tiny_scenario(edge("a"), edge("b", cache_kind=CacheKind.PLAIN)).as_dict()
        text = json.loads(json.dumps(payload))
        assert [e["name"] for e in text["edges"]] == ["a", "b"]
        assert text["edges"][1]["cache_kind"] == "PLAIN"


class TestBackendTier:
    def test_default_tier_is_one_default_backend(self) -> None:
        spec = tiny_scenario(edge("a"), edge("b"))
        assert [b.name for b in spec.backends] == [DEFAULT_BACKEND_NAME]
        assert spec.placement == {"a": "db", "b": "db"}
        assert spec.backend_for("a").name == "db"

    def test_backend_spec_validation(self) -> None:
        with pytest.raises(ConfigurationError):
            BackendSpec(name="")
        with pytest.raises(ConfigurationError):
            BackendSpec(name="b", shards=0)
        with pytest.raises(ConfigurationError):
            BackendSpec(name="b", deplist_max=-2)
        with pytest.raises(ConfigurationError, match="pruning policy"):
            BackendSpec(name="b", pruning_policy="oldest")

    def test_duplicate_backend_names_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="duplicate backend"):
            tiny_scenario(
                backends=[BackendSpec(name="b"), BackendSpec(name="b")]
            )

    def test_placement_mapping_resolved_and_validated(self) -> None:
        backends = [BackendSpec(name="eu"), BackendSpec(name="us")]
        spec = tiny_scenario(
            edge("a"), edge("b"), edge("c"),
            backends=backends,
            placement={"b": "us"},
        )
        # Unmapped edges land on the first backend.
        assert spec.placement == {"a": "eu", "b": "us", "c": "eu"}
        assert [e.name for e in spec.edges_on("eu")] == ["a", "c"]
        assert spec.backend_for("b").name == "us"
        with pytest.raises(ConfigurationError, match="unknown backends"):
            tiny_scenario(
                edge("a"), backends=backends, placement={"a": "ap"}
            )
        with pytest.raises(ConfigurationError, match="unknown edges"):
            tiny_scenario(
                edge("a"), backends=backends, placement={"ghost": "eu"}
            )

    def test_placement_callable_resolved_to_mapping(self) -> None:
        backends = [BackendSpec(name="eu"), BackendSpec(name="us")]
        spec = tiny_scenario(
            edge("a"), edge("b"),
            backends=backends,
            placement=lambda e: "us" if e.name == "b" else "eu",
        )
        assert spec.placement == {"a": "eu", "b": "us"}

    def test_backend_overrides_resolve_through_scenario(self) -> None:
        backend = BackendSpec(name="big", deplist_max=9, pruning_policy="random")
        spec = tiny_scenario(edge("a"), backends=[backend], deplist_max=3)
        assert spec.backend_deplist_max(backend) == 9
        assert spec.backend_pruning_policy(backend) == "random"
        assert spec.backend_timing(backend) is spec.timing
        config = spec.edge_config(spec.edges[0])
        assert config.deplist_max == 9
        assert config.pruning_policy == "random"

    def test_unknown_pruning_policy_rejected_at_spec_level(self) -> None:
        with pytest.raises(ConfigurationError, match="pruning policy"):
            tiny_scenario(pruning_policy="fifo")

    def test_two_backends_wire_independent_databases(self) -> None:
        spec = tiny_scenario(
            edge("a"), edge("b"),
            backends=[BackendSpec(name="eu"), BackendSpec(name="us", shards=2)],
            placement={"a": "eu", "b": "us"},
        )
        scenario = build_scenario(spec)
        assert [db.namespace for db in scenario.databases] == ["eu", "us"]
        assert scenario.backend("us") is not scenario.backend("eu")
        assert len(scenario.backend("us").participants) == 2
        # Each backend fans invalidations out to its own edges only.
        assert len(scenario.backend("eu")._invalidation_channels) == 1
        assert len(scenario.backend("us")._invalidation_channels) == 1
        assert scenario.edge("a").database is scenario.backend("eu")
        assert scenario.edge("b").database is scenario.backend("us")
        # Each backend loads only its own edges' key universe.
        for wired in scenario.edges:
            for key in wired.spec.workload.all_keys():
                assert wired.database.read_entry(key).version == 0

    def test_version_namespaces_keep_overlapping_versions_apart(self) -> None:
        """Two backends both allocate versions 1, 2, 3, ... — the run must
        classify without tripping the monitor's duplicate detection."""
        spec = tiny_scenario(
            edge("a"), edge("b"),
            backends=[BackendSpec(name="eu"), BackendSpec(name="us")],
            placement={"a": "eu", "b": "us"},
            duration=1.0,
            warmup=0.5,
        )
        result = run_scenario(spec)
        assert result.db_stats.committed > 0
        eu = result.backend("eu")
        us = result.backend("us")
        assert eu.update_commits > 0 and us.update_commits > 0
        assert (
            result.db_stats.committed == eu.update_commits + us.update_commits
        )

    def test_per_backend_aggregates_sum_to_fleet(self) -> None:
        spec = tiny_scenario(
            edge("a"), edge("b"), edge("c", read_rate=200.0),
            backends=[BackendSpec(name="eu"), BackendSpec(name="us")],
            placement={"a": "eu", "b": "us", "c": "us"},
            duration=2.0,
            warmup=0.5,
        )
        result = run_scenario(spec)
        assert [a.name for a in result.backends] == ["eu", "us"]
        assert sum(a.counts.total for a in result.backends) == (
            result.fleet.counts.total
        )
        assert sum(a.db_accesses for a in result.backends) == (
            result.fleet.db_accesses
        )
        assert result.fleet.update_commits == sum(
            a.update_commits for a in result.backends
        )
        assert set(result.fleet.inconsistency_by_backend) == {"eu", "us"}
        # Edges on the same backend share its stats object; the tier total
        # is a synthesised sum.
        assert result.edge("b").db_stats is result.edge("c").db_stats
        assert result.edge("a").db_stats is not result.edge("b").db_stats

    def test_single_backend_keeps_identity_contract(self) -> None:
        result = run_scenario(tiny_scenario(edge("a"), edge("b")))
        assert result.db_stats is result.edges[0].db_stats
        assert len(result.backends) == 1
        assert result.backends[0].name == DEFAULT_BACKEND_NAME
        assert result.backends[0].counts.total == result.fleet.counts.total


class TestSpecRoundTrip:
    def test_as_dict_from_dict_round_trip_runs_identically(self) -> None:
        import json

        spec = tiny_scenario(
            edge("a"), edge("b", cache_kind=CacheKind.PLAIN),
            backends=[BackendSpec(name="eu"), BackendSpec(name="us", shards=2)],
            placement={"b": "us"},
            duration=1.0,
            warmup=0.5,
        )
        payload = json.loads(json.dumps(spec.as_dict()))
        rebuilt = ScenarioSpec.from_dict(payload)
        assert rebuilt.placement == spec.placement
        assert [b.name for b in rebuilt.backends] == ["eu", "us"]
        assert run_scenario(rebuilt).to_artifact() == run_scenario(spec).to_artifact()

    def test_result_artifact_replays_as_spec(self) -> None:
        """The merged backend records in a result artifact still load."""
        import json

        result = run_scenario(
            tiny_scenario(
                edge("a"),
                backends=[BackendSpec(name="solo", deplist_max=7)],
                duration=1.0,
                warmup=0.5,
            )
        )
        payload = json.loads(json.dumps(result.to_artifact()))
        rebuilt = ScenarioSpec.from_dict(payload)
        assert rebuilt.backends[0].name == "solo"
        assert rebuilt.backends[0].deplist_max == 7

    def test_pre_backend_payloads_load_onto_default_tier(self) -> None:
        payload = tiny_scenario(edge("a")).as_dict()
        payload.pop("backends")
        payload.pop("placement")
        rebuilt = ScenarioSpec.from_dict(payload)
        assert [b.name for b in rebuilt.backends] == [DEFAULT_BACKEND_NAME]

    def test_non_portable_workload_rejected_with_clear_error(self) -> None:
        class Opaque:
            def access_set(self, rng, now):  # pragma: no cover - unused
                return []

            def all_keys(self):
                return ["o000000"]

        spec = tiny_scenario(edge("a", workload=Opaque()))
        payload = spec.as_dict()
        assert payload["edges"][0]["workload_spec"] is None
        with pytest.raises(ConfigurationError, match="workload_spec"):
            ScenarioSpec.from_dict(payload)

    def test_non_portable_read_workload_rejected_not_dropped(self) -> None:
        """An edge whose read workload can't serialise must fail replay
        loudly — rebuilding with read_workload=None would silently drive
        reads from the update workload instead."""

        class Opaque:
            def access_set(self, rng, now):  # pragma: no cover - unused
                return []

            def all_keys(self):
                return ["o000000"]

        spec = tiny_scenario(edge("a", read_workload=Opaque()))
        payload = spec.as_dict()
        assert payload["edges"][0]["workload_spec"] is not None
        assert payload["edges"][0]["read_workload_spec"] is None
        with pytest.raises(ConfigurationError, match="read workload"):
            ScenarioSpec.from_dict(payload)


class TestWiring:
    def test_build_wires_one_channel_and_cache_per_edge(self) -> None:
        scenario = build_scenario(tiny_scenario(edge("a"), edge("b"), edge("c")))
        assert len(scenario.edges) == 3
        assert len(scenario.database._invalidation_channels) == 3
        names = {wired.cache.name for wired in scenario.edges}
        assert len(names) == 3  # distinct cache names fleet-wide

    def test_read_txn_ids_disjoint_across_edges(self) -> None:
        spec = tiny_scenario(edge("a"), edge("b"))
        result_scenario = build_scenario(spec)
        records: list = []
        for wired in result_scenario.edges:
            wired.cache.add_transaction_listener(records.append)
        result_scenario.sim.run(until=spec.total_time)
        ids = [record.txn_id for record in records]
        assert len(ids) == len(set(ids))
        assert any(txn_id >= TXN_ID_STRIDE for txn_id in ids)

    def test_zero_update_rate_means_no_update_client(self) -> None:
        scenario = build_scenario(tiny_scenario(edge(update_rate=0.0)))
        assert scenario.edges[0].update_client is None
        result = run_scenario(tiny_scenario(edge(update_rate=0.0)))
        assert result.edges[0].update_client_stats.launched == 0
        assert result.db_stats.committed == 0

    def test_per_source_monitor_views_sum_to_fleet(self) -> None:
        spec = tiny_scenario(edge("a"), edge("b", read_rate=200.0))
        scenario = build_scenario(spec)
        scenario.sim.run(until=spec.total_time)
        monitor = scenario.monitor
        total = monitor.summary.read_only.total
        per_source = sum(
            summary.read_only.total
            for summary in monitor.source_summaries.values()
        )
        assert total > 0
        assert per_source == total
        assert set(monitor.source_series) == {"a", "b"}


class TestResults:
    def test_per_edge_results_in_spec_order_with_aggregates(self) -> None:
        spec = tiny_scenario(
            edge("clean", invalidation_loss=0.0),
            edge("lossy", invalidation_loss=0.9, deplist_limit=0),
        )
        result = run_scenario(spec)
        assert [e.name for e, _ in result.pairs()] == ["clean", "lossy"]
        fleet = result.fleet
        assert fleet.counts.total == sum(e.counts.total for e in result.edges)
        assert fleet.cache_reads == sum(e.cache_stats.reads for e in result.edges)
        assert 0.0 <= fleet.hit_ratio <= 1.0
        assert fleet.backend_read_rate > 0
        # Heterogeneous loss must show up as cross-edge spread.
        assert result.edge("lossy").counts.total > 0
        assert fleet.inconsistency_variance >= 0.0

    def test_result_artifact_round_trips_json(self) -> None:
        import json

        result = run_scenario(tiny_scenario(edge("a"), edge("b")))
        artifact = json.loads(json.dumps(result.to_artifact()))
        assert [e["name"] for e in artifact["edges"]] == ["a", "b"]
        assert "fleet" in artifact and "counts" in artifact["fleet"]
        assert artifact["db_stats"]["committed"] >= 0

    def test_shared_backend_stats_on_every_edge(self) -> None:
        result = run_scenario(tiny_scenario(edge("a"), edge("b")))
        assert result.edges[0].db_stats is result.edges[1].db_stats
        assert result.edges[0].db_stats is result.db_stats

    def test_deplist_limit_weakens_detection(self) -> None:
        """An edge that consults fewer dependency entries misses more."""
        full = run_scenario(
            tiny_scenario(edge("full"), duration=4.0, warmup=1.0, seed=11)
        )
        limited = run_scenario(
            tiny_scenario(
                edge("full", deplist_limit=0), duration=4.0, warmup=1.0, seed=11
            )
        )
        full_detections = full.edges[0].detections_eq1 + full.edges[0].detections_eq2
        limited_detections = (
            limited.edges[0].detections_eq1 + limited.edges[0].detections_eq2
        )
        assert limited_detections < full_detections


class TestLibrary:
    def test_heterogeneous_loss_fleet_ramps_loss(self) -> None:
        spec = heterogeneous_loss_fleet(edges=4, max_loss=0.6)
        losses = [e.invalidation_loss for e in spec.edges]
        assert losses[0] == 0.0
        assert losses[-1] == pytest.approx(0.6)
        assert losses == sorted(losses)

    def test_geo_skew_has_disjoint_local_slices(self) -> None:
        spec = geo_skewed_scenario(regions=3, objects_per_region=100, shared_objects=50)
        local_keysets = [set(e.workload.all_keys()) for e in spec.edges[:-1]]
        for i, left in enumerate(local_keysets):
            for right in local_keysets[i + 1:]:
                assert not left & right
        shared = set(spec.edges[-1].workload.all_keys())
        for local in local_keysets:
            assert not shared & local

    def test_geo_skew_runs_end_to_end(self) -> None:
        result = run_scenario(
            geo_skewed_scenario(
                regions=2,
                objects_per_region=100,
                shared_objects=50,
                duration=1.5,
                warmup=0.5,
            )
        )
        assert all(e.counts.total > 0 for e in result.edges)

    def test_flash_crowd_concentrates_reads(self) -> None:
        result = run_scenario(
            flash_crowd_scenario(
                quiet_edges=2,
                n_objects=200,
                hot_objects=50,
                duration=1.5,
                warmup=0.5,
                crowd_read_rate=600.0,
            )
        )
        crowd = result.edge("crowd")
        quiet = result.edge("quiet0")
        assert crowd.counts.total > quiet.counts.total
        # The crowd's hot set fits the cache: far better hit ratio.
        assert crowd.hit_ratio > quiet.hit_ratio

    def test_library_specs_validate(self) -> None:
        with pytest.raises(ConfigurationError):
            heterogeneous_loss_fleet(edges=0)
        with pytest.raises(ConfigurationError):
            geo_skewed_scenario(regions=1)
        with pytest.raises(ConfigurationError):
            flash_crowd_scenario(hot_objects=500, n_objects=100)
        with pytest.raises(ConfigurationError):
            regional_backends_scenario(regions=0)
        with pytest.raises(ConfigurationError):
            regional_backends_scenario(edges_per_region=0)
        with pytest.raises(ConfigurationError):
            hot_backend_overload(backends=1)
        with pytest.raises(ConfigurationError):
            hot_backend_overload(hot_objects=500, n_objects=100)

    def test_regional_backends_routes_each_region_to_its_backend(self) -> None:
        spec = regional_backends_scenario(
            regions=3, edges_per_region=2, objects_per_region=100
        )
        assert len(spec.backends) == 3
        assert len(spec) == 6
        for edge_spec in spec.edges:
            region = edge_spec.name.split("-")[0]
            assert spec.placement[edge_spec.name] == f"{region}-db"
        # Regions own disjoint slices.
        slices = [
            set(e.workload.all_keys()) for e in spec.edges if "edge0" in e.name
        ]
        for i, left in enumerate(slices):
            for right in slices[i + 1:]:
                assert not left & right

    def test_hot_backend_overload_concentrates_load(self) -> None:
        result = run_scenario(
            hot_backend_overload(
                backends=2,
                n_objects=200,
                hot_objects=50,
                crowd_read_rate=600.0,
                duration=1.5,
                warmup=0.5,
            )
        )
        hot = result.backend("backend0")
        quiet = result.backend("backend1")
        assert hot.counts.total > quiet.counts.total
        assert hot.update_commits > quiet.update_commits


class TestMixedWorkloadWrappers:
    def test_offset_workload_shifts_keys(self) -> None:
        import numpy as np

        from repro.workloads.synthetic import OffsetWorkload

        inner = UniformWorkload(n_objects=10)
        shifted = OffsetWorkload(inner, offset=100)
        assert shifted.all_keys()[0] == "o000100"
        rng = np.random.default_rng(1)
        assert set(shifted.access_set(rng, 0.0)) <= set(shifted.all_keys())

    def test_mixture_workload_draws_from_components(self) -> None:
        import numpy as np

        from repro.workloads.synthetic import MixtureWorkload, OffsetWorkload

        a = UniformWorkload(n_objects=10)
        b = OffsetWorkload(UniformWorkload(n_objects=10), offset=1000)
        mixture = MixtureWorkload([(0.5, a), (0.5, b)])
        rng = np.random.default_rng(2)
        seen_a = seen_b = False
        for _ in range(200):
            keys = set(mixture.access_set(rng, 0.0))
            if keys <= set(a.all_keys()):
                seen_a = True
            if keys <= set(b.all_keys()):
                seen_b = True
        assert seen_a and seen_b
        assert set(mixture.all_keys()) == set(a.all_keys()) | set(b.all_keys())
