"""Unit tests for the length-prefixed JSON framing layer."""

from __future__ import annotations

import json
import socket
import struct
import threading

import pytest

from repro.dispatch.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.errors import ProtocolError


@pytest.fixture()
def pair():
    left, right = socket.socketpair()
    yield left, right
    left.close()
    right.close()


class TestRoundTrip:
    def test_simple_frame_round_trips(self, pair) -> None:
        left, right = pair
        payload = {"type": "hello", "worker": "w1", "protocol": PROTOCOL_VERSION}
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_unicode_and_nesting_survive(self, pair) -> None:
        left, right = pair
        payload = {"type": "result", "data": {"π": [1.5, None, "héllo"], "n": -3}}
        send_frame(left, payload)
        assert recv_frame(right) == payload

    def test_float_values_are_exact(self, pair) -> None:
        left, right = pair
        values = [0.1 + 0.2, 1e-17, 3.141592653589793, 2**53 + 1.0]
        send_frame(left, {"values": values})
        received = recv_frame(right)["values"]
        assert [v.hex() for v in received] == [v.hex() for v in values]

    def test_many_frames_in_flight_keep_boundaries(self, pair) -> None:
        left, right = pair
        for index in range(20):
            send_frame(left, {"seq": index})
        for index in range(20):
            assert recv_frame(right) == {"seq": index}

    def test_large_frame_round_trips(self, pair) -> None:
        left, right = pair
        payload = {"series": [{"t": float(i), "v": i / 7} for i in range(5000)]}
        writer = threading.Thread(target=send_frame, args=(left, payload))
        writer.start()
        assert recv_frame(right) == payload
        writer.join()

    def test_clean_eof_returns_none(self, pair) -> None:
        left, right = pair
        left.close()
        assert recv_frame(right) is None


class TestMalformedFrames:
    def test_zero_length_rejected(self, pair) -> None:
        left, right = pair
        left.sendall(struct.pack(">I", 0))
        with pytest.raises(ProtocolError, match="zero-length"):
            recv_frame(right)

    def test_oversized_length_rejected_without_allocating(self, pair) -> None:
        left, right = pair
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(right)

    def test_truncated_body_rejected(self, pair) -> None:
        left, right = pair
        body = json.dumps({"type": "x"}).encode()
        left.sendall(struct.pack(">I", len(body) + 10) + body)
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_truncated_header_rejected(self, pair) -> None:
        left, right = pair
        left.sendall(b"\x00\x00")
        left.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(right)

    def test_non_json_body_rejected(self, pair) -> None:
        left, right = pair
        body = b"\xff\xfenot json"
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_frame(right)

    def test_non_object_json_rejected(self, pair) -> None:
        left, right = pair
        body = json.dumps([1, 2, 3]).encode()
        left.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON objects"):
            recv_frame(right)

    def test_sending_non_dict_rejected(self, pair) -> None:
        left, _ = pair
        with pytest.raises(ProtocolError, match="JSON objects"):
            send_frame(left, [1, 2, 3])
