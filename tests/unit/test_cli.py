"""Unit tests for the experiments command-line interface."""

from __future__ import annotations

import json
import logging

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry_covers_every_figure(self) -> None:
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7ab", "fig7c", "fig7d",
            "fig8", "theorem1", "sensitivity", "scenario", "protocol-race",
        }

    def test_unknown_experiment_rejected(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2

    def test_fig7ab_runs_and_prints(self, capsys) -> None:
        assert main(["fig7ab"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7ab" in out
        assert "amazon" in out and "orkut" in out
        assert "done in" in out

    def test_duration_flag_parsed(self, capsys) -> None:
        # fig7ab ignores duration but must accept the flag.
        assert main(["fig7ab", "--duration", "5"]) == 0

    def test_jobs_flag_parsed(self, capsys) -> None:
        assert main(["fig7ab", "--jobs", "2"]) == 0

    @pytest.mark.parametrize("value", ["0", "-2", "many"])
    def test_invalid_jobs_rejected_as_usage_error(self, value, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--jobs", value])
        assert excinfo.value.code == 2

    def test_worker_requires_connect(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["worker"])
        assert excinfo.value.code == 2
        assert "--connect" in capsys.readouterr().err

    def test_connect_rejected_outside_worker(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--connect", "localhost:7643"])
        assert excinfo.value.code == 2

    def test_fault_rejected_outside_worker(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--fault", "crash:1"])
        assert excinfo.value.code == 2

    def test_worker_rejects_dispatch_flag(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--connect", "localhost:1", "--dispatch", "h:2"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("value", ["nocolon", "host:", "host:notaport", "h:70000"])
    def test_bad_hostport_rejected_as_usage_error(self, value, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--dispatch", value])
        assert excinfo.value.code == 2

    def test_dispatch_port_zero_rejected(self, capsys) -> None:
        # Port 0 would bind an ephemeral port nobody is told about.
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--dispatch", "0.0.0.0:0"])
        assert excinfo.value.code == 2
        assert "ephemeral" in capsys.readouterr().err

    @pytest.mark.parametrize("value", ["", "crash", "explode:1", "stall:1:0"])
    def test_bad_fault_rejected_as_usage_error(self, value, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--connect", "localhost:1", "--fault", value])
        assert excinfo.value.code == 2

    def test_worker_with_no_coordinator_exits_nonzero(self, caplog) -> None:
        # Port 1 is never listening; the worker must give up after the
        # connect timeout and report failure (it served nothing).
        with caplog.at_level(logging.ERROR, logger="repro.dispatch.worker"):
            assert (
                main(
                    [
                        "worker",
                        "--connect",
                        "127.0.0.1:1",
                        "--connect-timeout",
                        "0.2",
                    ]
                )
                == 1
            )
        assert "could not reach coordinator" in caplog.text

    def test_json_artifact_written_and_loadable(self, tmp_path, capsys) -> None:
        path = tmp_path / "fig7ab.json"
        assert main(["fig7ab", "--json", str(path)]) == 0
        assert "wrote" in capsys.readouterr().out

        with open(path) as handle:
            payload = json.load(handle)
        assert payload["schema"] == "repro.experiments/v1"
        assert payload["jobs"] >= 1
        (experiment,) = payload["experiments"]
        assert experiment["experiment"] == "fig7ab"
        assert experiment["wall_clock_seconds"] >= 0.0
        (section,) = experiment["sections"]
        assert section["title"] == "Figure 7ab: topology statistics"
        workloads = {row["workload"] for row in section["rows"]}
        assert workloads == {"amazon", "orkut"}
        # fig7ab is pure graph analysis: no simulation grid behind it.
        assert experiment["sweep_specs"] == []

    def test_scenario_experiment_emits_per_edge_and_aggregate_json(
        self, tmp_path, capsys
    ) -> None:
        """A >=3-edge heterogeneous-loss fleet, end to end from the CLI."""
        path = tmp_path / "scenario.json"
        assert main(
            ["scenario", "--duration", "1", "--edges", "3", "--jobs", "2",
             "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "per-edge view" in out and "fleet aggregates" in out
        assert "per-backend view" in out

        import json as json_module

        with open(path) as handle:
            payload = json_module.load(handle)
        (experiment,) = payload["experiments"]
        per_edge, per_backend, per_fleet = experiment["sections"]
        fleet_rows = [
            row for row in per_edge["rows"] if row["scenario"] == "hetero-loss"
        ]
        assert len(fleet_rows) == 3
        losses = [row["loss_pct"] for row in fleet_rows]
        assert losses == sorted(losses) and losses[0] != losses[-1]
        aggregate = next(
            row for row in per_fleet["rows"] if row["scenario"] == "hetero-loss"
        )
        assert aggregate["edges"] == 3
        assert "backend_reads_per_s" in aggregate
        # The routed-tier scenarios run by default (--backends 2) and show
        # per-backend rows with distinct backends.
        regional = [
            row for row in per_backend["rows"]
            if row["scenario"] == "regional-backends"
        ]
        assert len(regional) == 2
        assert {row["backend"] for row in regional} == {
            "region0-db", "region1-db",
        }
        # The sweep spec records the whole topology per point.
        spec = experiment["sweep_specs"][0]
        scenario_column = spec["columns"][0]
        assert len(scenario_column["scenario"]["edges"]) == 3

    def test_invalid_edges_rejected(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "--edges", "0"])
        assert excinfo.value.code == 2

    def test_invalid_backends_rejected(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "--backends", "0"])
        assert excinfo.value.code == 2

    def test_spec_flag_only_for_scenario(self, tmp_path, capsys) -> None:
        path = tmp_path / "spec.json"
        path.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--spec", str(path)])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["scenario", "--spec", str(tmp_path / "missing.json")])
        assert excinfo.value.code == 2

    def test_spec_replay_round_trips_a_saved_scenario(
        self, tmp_path, capsys
    ) -> None:
        """`scenario --spec file.json` replays a ScenarioSpec.as_dict file."""
        from repro.scenario import regional_backends_scenario

        spec = regional_backends_scenario(
            regions=2,
            edges_per_region=2,
            objects_per_region=100,
            duration=1.0,
            warmup=0.5,
        )
        path = tmp_path / "saved.json"
        path.write_text(json.dumps(spec.as_dict()))
        out_path = tmp_path / "replay.json"
        assert main(
            ["scenario", "--spec", str(path), "--json", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "per-backend view" in out
        with open(out_path) as handle:
            payload = json.load(handle)
        (experiment,) = payload["experiments"]
        per_edge, per_backend, _ = experiment["sections"]
        assert len(per_edge["rows"]) == 4
        assert {row["backend"] for row in per_backend["rows"]} == {
            "region0-db", "region1-db",
        }

    def test_spec_replay_honours_explicit_duration(self, tmp_path) -> None:
        """--duration overrides the recorded duration; omitting it keeps
        the spec file's value."""
        from repro.experiments.scenarios import run_spec_file
        from repro.scenario import heterogeneous_loss_fleet

        spec = heterogeneous_loss_fleet(
            edges=2, n_objects=100, duration=2.0, warmup=0.5
        )
        path = tmp_path / "saved.json"
        path.write_text(json.dumps(spec.as_dict()))
        recorded, *_ = run_spec_file(str(path))
        assert recorded.points[0].scenario.duration == 2.0
        overridden, *_ = run_spec_file(str(path), duration=1.0)
        assert overridden.points[0].scenario.duration == 1.0
        assert main(
            ["scenario", "--spec", str(path), "--duration", "1", "--jobs", "1"]
        ) == 0

    def test_spec_replay_artifact_records_actual_duration(
        self, tmp_path
    ) -> None:
        """Without --duration the artifact metadata must report the spec
        file's recorded duration, not the global default of 30."""
        from repro.scenario import heterogeneous_loss_fleet

        spec = heterogeneous_loss_fleet(
            edges=2, n_objects=100, duration=2.0, warmup=0.5
        )
        path = tmp_path / "saved.json"
        path.write_text(json.dumps(spec.as_dict()))
        out_path = tmp_path / "out.json"
        assert main(
            ["scenario", "--spec", str(path), "--jobs", "1",
             "--json", str(out_path)]
        ) == 0
        with open(out_path) as handle:
            assert json.load(handle)["duration"] == 2.0

    def test_worker_rejects_fleet_flag(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--connect", "localhost:1", "--fleet", "h:2"])
        assert excinfo.value.code == 2

    def test_dispatch_and_fleet_are_mutually_exclusive(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--dispatch", "h:1", "--fleet", "h:2"])
        assert excinfo.value.code == 2

    def test_fleet_port_zero_rejected(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--fleet", "localhost:0"])
        assert excinfo.value.code == 2

    def test_fleet_priority_requires_fleet(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--fleet-priority", "3"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--fleet-wait-timeout", "10"])
        assert excinfo.value.code == 2

    def test_max_idle_only_for_worker(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig7ab", "--max-idle", "5"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--connect", "localhost:1", "--max-idle", "0"])
        assert excinfo.value.code == 2

    def test_bench_rejects_fleet(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["bench", "--fleet", "localhost:7650"])
        assert excinfo.value.code == 2

    def test_fleet_requires_a_subcommand(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet"])
        assert excinfo.value.code == 2

    def test_fleet_submit_requires_connect(self, capsys, tmp_path) -> None:
        path = tmp_path / "spec.json"
        path.write_text("{}")
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "submit", str(path)])
        assert excinfo.value.code == 2
        assert "--connect" in capsys.readouterr().err

    def test_fleet_submit_rejects_non_sweep_payload(
        self, capsys, tmp_path
    ) -> None:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "submit", str(path), "--connect", "localhost:1"])
        assert excinfo.value.code == 2
        assert "columns" in capsys.readouterr().err

    def test_fleet_status_with_no_daemon_fails_cleanly(self, capsys) -> None:
        # Port 1 is never listening: a clean error, not a traceback.
        assert main(
            ["fleet", "status", "--connect", "127.0.0.1:1",
             "--connect-timeout", "0.2"]
        ) == 1
        assert "fleet status:" in capsys.readouterr().err

    def test_fleet_status_needs_connect_or_journal_dir(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "status"])
        assert excinfo.value.code == 2
        assert "--journal-dir" in capsys.readouterr().err

    def test_fleet_status_rejects_connect_plus_journal_dir(
        self, capsys, tmp_path
    ) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fleet", "status", "--connect", "127.0.0.1:1",
                  "--journal-dir", str(tmp_path)])
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_fleet_status_offline_reads_a_journal_dir(
        self, capsys, tmp_path
    ) -> None:
        from dataclasses import replace

        from repro.dispatch.journal import SweepJournal
        from repro.experiments.config import ColumnConfig
        from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed
        from repro.workloads.synthetic import PerfectClusterWorkload

        workload = PerfectClusterWorkload(n_objects=40, cluster_size=4)
        config = ColumnConfig(seed=1, duration=0.4, warmup=0.2)
        spec = SweepSpec(
            name="offline",
            root_seed=1,
            points=[
                SweepPoint(
                    label=f"c{i}",
                    config=replace(config, seed=derive_seed(1, i)),
                    workload=workload,
                    params={"i": i},
                )
                for i in range(2)
            ],
        )
        journal = SweepJournal.create(
            str(tmp_path), spec, name="offline-sweep", priority=1
        )
        with journal:
            journal.record(0, {"kind": "column", "payload": {}})
        assert main(["fleet", "status", "--journal-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "offline-sweep" in out
        assert "partial" in out

    def test_json_artifact_embeds_sweep_configs(self, tmp_path) -> None:
        path = tmp_path / "fig3.json"
        assert main(["fig3", "--duration", "1", "--jobs", "2",
                     "--json", str(path)]) == 0
        with open(path) as handle:
            payload = json.load(handle)
        (experiment,) = payload["experiments"]
        (spec,) = experiment["sweep_specs"]
        assert spec["spec"] == "fig3"
        assert len(spec["columns"]) == 8
        first = spec["columns"][0]
        assert first["params"]["alpha"] == pytest.approx(1 / 32)
        assert first["config"]["seed"] == 11
        assert first["config"]["strategy"] == "ABORT"
        # Rows and spec columns line up one-to-one.
        (section,) = experiment["sections"]
        assert len(section["rows"]) == len(spec["columns"])
