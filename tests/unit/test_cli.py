"""Unit tests for the experiments command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import EXPERIMENTS, main


class TestCli:
    def test_experiment_registry_covers_every_figure(self) -> None:
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7ab", "fig7c", "fig7d",
            "fig8", "theorem1",
        }

    def test_unknown_experiment_rejected(self, capsys) -> None:
        with pytest.raises(SystemExit) as excinfo:
            main(["fig99"])
        assert excinfo.value.code == 2

    def test_fig7ab_runs_and_prints(self, capsys) -> None:
        assert main(["fig7ab"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7ab" in out
        assert "amazon" in out and "orkut" in out
        assert "done in" in out

    def test_duration_flag_parsed(self, capsys) -> None:
        # fig7ab ignores duration but must accept the flag.
        assert main(["fig7ab", "--duration", "5"]) == 0
