"""Unit tests for the §VII future-direction extensions.

* Per-object dependency-list bounds — "objects of larger clusters call for
  longer dependency lists".
* Application-pinned dependencies — "the application could explicitly
  inform the cache of relevant object dependencies, and those could then be
  treated as more important and retained".
* Alternative pruning policies — the ablation axis for the paper's LRU
  choice.
"""

from __future__ import annotations

import pytest

from repro.core.deplist import PRUNING_POLICIES, UNBOUNDED, DependencyList
from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.errors import ConfigurationError
from repro.sim.core import Simulator
from tests.conftest import commit_update


class TestPruningPolicies:
    DIRECT = {"d1": 10, "d2": 20}
    INHERITED = [DependencyList.from_pairs([("i1", 99), ("i2", 1), ("i3", 50)])]

    def test_policies_are_published(self) -> None:
        assert set(PRUNING_POLICIES) == {"lru", "newest-version", "random"}

    def test_lru_keeps_direct_entries(self) -> None:
        merged = DependencyList.merge(self.DIRECT, self.INHERITED, max_len=2, policy="lru")
        assert merged.keys() == {"d1", "d2"}

    def test_newest_version_keeps_largest_versions(self) -> None:
        merged = DependencyList.merge(
            self.DIRECT, self.INHERITED, max_len=2, policy="newest-version"
        )
        assert merged.keys() == {"i1", "i3"}  # versions 99 and 50

    def test_random_is_deterministic(self) -> None:
        once = DependencyList.merge(self.DIRECT, self.INHERITED, max_len=3, policy="random")
        twice = DependencyList.merge(self.DIRECT, self.INHERITED, max_len=3, policy="random")
        assert once == twice

    def test_unknown_policy_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DependencyList.merge(self.DIRECT, [], max_len=2, policy="clairvoyant")

    def test_subsumption_holds_for_every_policy(self) -> None:
        inherited = [DependencyList.from_pairs([("d1", 99)])]
        for policy in PRUNING_POLICIES:
            merged = DependencyList.merge(
                self.DIRECT, inherited, max_len=UNBOUNDED, policy=policy
            )
            assert merged.required_version("d1") == 99


class TestPinnedDependencies:
    def test_pinned_outranks_direct(self) -> None:
        direct = {"d1": 1, "d2": 2, "d3": 3}
        inherited = [DependencyList.from_pairs([("acl", 7)])]
        merged = DependencyList.merge(
            direct, inherited, max_len=2, pinned={"acl"}
        )
        assert "acl" in merged
        assert len(merged) == 2

    def test_pin_without_source_mention_is_noop(self) -> None:
        merged = DependencyList.merge({"d1": 1}, [], max_len=2, pinned={"ghost"})
        assert "ghost" not in merged


class TestDatabaseIntegration:
    @pytest.fixture
    def db(self, sim: Simulator) -> Database:
        database = Database(
            sim, DatabaseConfig(deplist_max=2, timing=TimingConfig(0, 0, 0, 0))
        )
        database.load({k: 0 for k in ("acl", "p1", "p2", "p3", "hub")})
        return database

    def test_per_object_bound_override(self, sim, db) -> None:
        db.set_deplist_bound("hub", 4)
        commit_update(sim, db, ["hub", "p1", "p2", "p3", "acl"])
        assert len(db.read_entry("hub").deps) == 4      # overridden
        assert len(db.read_entry("p1").deps) == 2       # global bound

    def test_bound_override_validation(self, sim, db) -> None:
        with pytest.raises(ConfigurationError):
            db.set_deplist_bound("hub", -3)

    def test_unbounded_override(self, sim, db) -> None:
        db.set_deplist_bound("hub", UNBOUNDED)
        commit_update(sim, db, ["hub", "p1", "p2", "p3", "acl"])
        assert len(db.read_entry("hub").deps) == 4  # all partners

    def test_pinned_dependency_survives_churn(self, sim, db) -> None:
        """The web-album case: photos pin their ACL; later updates that
        would push the ACL out of a length-2 list keep it."""
        db.pin_dependency("p1", "acl")
        commit_update(sim, db, ["p1", "acl"])
        # Churn: p1 co-updates with two other photos repeatedly.
        for _ in range(3):
            commit_update(sim, db, ["p1", "p2", "p3"])
        entry = db.read_entry("p1")
        assert entry.dep_on("acl") is not None  # pinned: survived pruning
        unpinned = db.read_entry("p2")
        assert unpinned.dep_on("acl") is None   # the control case

    def test_pruning_policy_from_config(self, sim) -> None:
        database = Database(
            sim,
            DatabaseConfig(
                deplist_max=2,
                timing=TimingConfig(0, 0, 0, 0),
                pruning_policy="newest-version",
            ),
        )
        database.load({k: 0 for k in "abc"})
        commit_update(sim, database, ["a", "b", "c"])
        assert len(database.read_entry("a").deps) == 2
