"""Unit tests for the graph stand-ins, sampling, and random-walk workloads."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.errors import ConfigurationError
from repro.workloads.graphs import amazon_like_graph, orkut_like_graph, topology_stats
from repro.workloads.sampling import random_walk_sample
from repro.workloads.walker import RandomWalkWorkload, node_key


class TestGenerators:
    def test_amazon_like_is_strongly_clustered(self) -> None:
        stats = topology_stats(amazon_like_graph(800, seed=1))
        assert stats.mean_clustering > 0.4

    def test_orkut_like_is_weakly_clustered_but_denser(self) -> None:
        amazon = topology_stats(amazon_like_graph(800, seed=1))
        orkut = topology_stats(orkut_like_graph(800, seed=2))
        # The paper: "visibly clustered, the Amazon topology more so than
        # the Orkut one".
        assert orkut.mean_clustering < amazon.mean_clustering / 3
        assert orkut.mean_degree > amazon.mean_degree

    def test_sizes_respected(self) -> None:
        assert amazon_like_graph(800, seed=1).number_of_nodes() == 800
        # The Orkut generator draws community sizes, so allow slack.
        n = orkut_like_graph(800, seed=1).number_of_nodes()
        assert 700 <= n <= 900

    def test_determinism(self) -> None:
        a = amazon_like_graph(200, seed=5)
        b = amazon_like_graph(200, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_too_small_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            amazon_like_graph(5)
        with pytest.raises(ConfigurationError):
            orkut_like_graph(5)


class TestSampling:
    @pytest.fixture
    def parent(self) -> nx.Graph:
        return amazon_like_graph(1600, seed=3)

    def test_sample_has_requested_size(self, parent, rng) -> None:
        sample = random_walk_sample(parent, 400, rng)
        assert sample.number_of_nodes() == 400

    def test_sample_is_subgraph(self, parent, rng) -> None:
        sample = random_walk_sample(parent, 300, rng)
        assert set(sample.nodes()) <= set(parent.nodes())
        for u, v in sample.edges():
            assert parent.has_edge(u, v)

    def test_sample_preserves_clustering_roughly(self, parent, rng) -> None:
        """The point of random-walk sampling [16]: clustering survives."""
        sample = random_walk_sample(parent, 400, rng)
        parent_c = topology_stats(parent).mean_clustering
        sample_c = topology_stats(sample).mean_clustering
        assert sample_c > 0.5 * parent_c

    def test_handles_disconnected_graphs(self, rng) -> None:
        graph = nx.disjoint_union(nx.complete_graph(30), nx.complete_graph(30))
        sample = random_walk_sample(graph, 45, rng, stall_limit=50)
        assert sample.number_of_nodes() == 45

    def test_handles_isolated_nodes(self, rng) -> None:
        graph = nx.complete_graph(20)
        graph.add_nodes_from(range(100, 110))  # isolates
        sample = random_walk_sample(graph, 25, rng, stall_limit=20)
        assert sample.number_of_nodes() == 25

    def test_invalid_parameters_rejected(self, parent, rng) -> None:
        with pytest.raises(ConfigurationError):
            random_walk_sample(parent, 0, rng)
        with pytest.raises(ConfigurationError):
            random_walk_sample(parent, parent.number_of_nodes() + 1, rng)
        with pytest.raises(ConfigurationError):
            random_walk_sample(parent, 10, rng, restart_probability=1.0)

    def test_sampling_entire_graph(self, rng) -> None:
        graph = nx.complete_graph(12)
        sample = random_walk_sample(graph, 12, rng)
        assert sample.number_of_nodes() == 12


class TestRandomWalkWorkload:
    @pytest.fixture
    def workload(self) -> RandomWalkWorkload:
        return RandomWalkWorkload(amazon_like_graph(400, seed=4), txn_size=5)

    def test_access_set_size_bounded_by_walk_length(self, workload, rng) -> None:
        sizes = [len(workload.access_set(rng, 0.0)) for _ in range(300)]
        assert max(sizes) <= 5
        assert min(sizes) >= 1
        # Revisits make some walks collapse below 5 distinct nodes.
        assert any(size < 5 for size in sizes)

    def test_accesses_are_topologically_connected(self, workload, rng) -> None:
        graph = workload.graph
        for _ in range(100):
            accesses = workload.access_set(rng, 0.0)
            nodes = [int(key[1:]) for key in accesses]
            induced = graph.subgraph(nodes)
            assert nx.is_connected(induced)

    def test_all_keys_cover_graph(self, workload) -> None:
        assert len(workload.all_keys()) == workload.graph.number_of_nodes()

    def test_keys_are_distinct_per_transaction(self, workload, rng) -> None:
        for _ in range(100):
            accesses = workload.access_set(rng, 0.0)
            assert len(accesses) == len(set(accesses))

    def test_node_key_format(self) -> None:
        assert node_key(17) == "n17"

    def test_empty_graph_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            RandomWalkWorkload(nx.Graph())

    def test_isolated_start_yields_singleton(self, rng) -> None:
        graph = nx.Graph()
        graph.add_node(0)
        workload = RandomWalkWorkload(graph, txn_size=5)
        assert workload.access_set(rng, 0.0) == [node_key(0)]
