"""Unit tests for the fleet daemon's append-only sweep journals.

The corruption policy is the contract under test: a truncated *final*
line (the one damage an interrupted append legitimately produces) is
skipped with a warning, while every other kind of damage — duplicate
point indices, a journal written by a different sweep spec, garbage in
the middle of the file — fails loudly with :class:`JournalError` rather
than silently seeding wrong results.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.dispatch.journal import (
    JOURNAL_SCHEMA,
    SweepJournal,
    journal_path,
    list_journals,
    sweep_fingerprint,
)
from repro.errors import ConfigurationError, JournalError
from repro.experiments.config import ColumnConfig
from repro.experiments.sweep import (
    SweepPoint,
    SweepSpec,
    derive_seed,
    spec_artifact,
)
from repro.workloads.synthetic import PerfectClusterWorkload


def tiny_spec(n_points: int = 3, *, root_seed: int = 1) -> SweepSpec:
    workload = PerfectClusterWorkload(n_objects=40, cluster_size=4)
    config = ColumnConfig(seed=1, duration=0.4, warmup=0.2)
    return SweepSpec(
        name="journal-spec",
        root_seed=root_seed,
        points=[
            SweepPoint(
                label=f"col{index}",
                config=replace(config, seed=derive_seed(root_seed, index)),
                workload=workload,
                params={"index": index},
            )
            for index in range(n_points)
        ],
    )


def wire_result(index: int) -> dict:
    """A stand-in for an ``encode_result`` payload; journals never decode."""
    return {"kind": "column", "payload": {"index": index}}


class TestFingerprint:
    def test_prefix_and_stability(self) -> None:
        spec = tiny_spec()
        fingerprint = sweep_fingerprint(spec)
        assert fingerprint.startswith("sha256:")
        assert fingerprint == sweep_fingerprint(tiny_spec())

    def test_different_grids_differ(self) -> None:
        assert sweep_fingerprint(tiny_spec(3)) != sweep_fingerprint(tiny_spec(4))
        assert sweep_fingerprint(tiny_spec(root_seed=1)) != sweep_fingerprint(
            tiny_spec(root_seed=2)
        )


class TestJournalPath:
    def test_unsafe_characters_sanitised(self, tmp_path) -> None:
        path = journal_path(str(tmp_path), "fig3 run/α#7")
        assert path.endswith(".jsonl")
        assert "/α" not in path and " " not in path.rsplit("/", 1)[-1]

    @pytest.mark.parametrize("name", ["", ".", ".."])
    def test_names_with_no_safe_filename_rejected(self, tmp_path, name) -> None:
        with pytest.raises(ConfigurationError):
            journal_path(str(tmp_path), name)

    def test_list_journals_sorted_and_missing_dir_empty(self, tmp_path) -> None:
        assert list_journals(str(tmp_path / "nope")) == []
        for name in ("b", "a"):
            SweepJournal.create(str(tmp_path), tiny_spec(), name=name).close()
        (tmp_path / "not-a-journal.txt").write_text("ignored")
        assert [p.rsplit("/", 1)[-1] for p in list_journals(str(tmp_path))] == [
            "a.jsonl",
            "b.jsonl",
        ]


class TestRoundTrip:
    def test_create_record_replay(self, tmp_path) -> None:
        spec = tiny_spec()
        with SweepJournal.create(
            str(tmp_path), spec, name="rt", priority=7
        ) as journal:
            assert journal.record(1, wire_result(1))
            assert journal.record(0, wire_result(0))
        replayed = SweepJournal.replay(journal.path)
        assert replayed.name == "rt"
        assert replayed.total == len(spec.points)
        assert replayed.priority == 7
        assert replayed.results == {0: wire_result(0), 1: wire_result(1)}
        assert replayed.warnings == []

    def test_rebuild_spec_round_trips_through_from_dict(self, tmp_path) -> None:
        spec = tiny_spec()
        SweepJournal.create(str(tmp_path), spec, name="rt").close()
        replayed = SweepJournal.replay(journal_path(str(tmp_path), "rt"))
        rebuilt = replayed.rebuild_spec()
        # The journaled grid rebuilds to the same portable artifact, so
        # every SweepPoint survived its from_dict round-trip.
        assert spec_artifact(rebuilt) == spec_artifact(spec)
        assert sweep_fingerprint(rebuilt) == replayed.fingerprint

    def test_attach_resumes_and_keeps_appending(self, tmp_path) -> None:
        spec = tiny_spec()
        with SweepJournal.create(str(tmp_path), spec, name="rt") as journal:
            journal.record(0, wire_result(0))
        attached, replayed = SweepJournal.attach(
            journal.path, expected_fingerprint=sweep_fingerprint(spec)
        )
        with attached:
            assert replayed.results == {0: wire_result(0)}
            assert attached.journaled_indices == frozenset({0})
            assert not attached.record(0, wire_result(0))  # already durable
            assert attached.record(2, wire_result(2))
        final = SweepJournal.replay(journal.path)
        assert sorted(final.results) == [0, 2]

    def test_duplicate_create_refused(self, tmp_path) -> None:
        SweepJournal.create(str(tmp_path), tiny_spec(), name="dup").close()
        with pytest.raises(JournalError, match="already exists"):
            SweepJournal.create(str(tmp_path), tiny_spec(), name="dup")

    def test_record_out_of_range_refused(self, tmp_path) -> None:
        with SweepJournal.create(str(tmp_path), tiny_spec(3), name="rt") as j:
            with pytest.raises(JournalError, match="outside"):
                j.record(3, wire_result(3))


class TestCorruptionPolicy:
    def make_journal(self, tmp_path, *, points=(0, 1)) -> str:
        spec = tiny_spec()
        with SweepJournal.create(str(tmp_path), spec, name="c") as journal:
            for index in points:
                journal.record(index, wire_result(index))
        return journal.path

    def test_truncated_final_line_skipped_with_warning(self, tmp_path) -> None:
        path = self.make_journal(tmp_path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "point", "index": 2, "res')  # no newline
        replayed = SweepJournal.replay(path)
        assert sorted(replayed.results) == [0, 1]
        assert len(replayed.warnings) == 1
        assert "truncated" in replayed.warnings[0]

    def test_empty_file_is_loud(self, tmp_path) -> None:
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(JournalError, match="empty"):
            SweepJournal.replay(str(path))

    def test_truncated_header_fragment_is_loud(self, tmp_path) -> None:
        path = tmp_path / "frag.jsonl"
        path.write_text('{"kind": "sweep", "schema"')
        with pytest.raises(JournalError, match="no complete header"):
            SweepJournal.replay(str(path))

    def test_duplicate_point_index_is_loud(self, tmp_path) -> None:
        path = self.make_journal(tmp_path, points=(0,))
        line = json.dumps({"kind": "point", "index": 0, "result": wire_result(0)})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        with pytest.raises(JournalError, match="duplicate journal entry"):
            SweepJournal.replay(path)

    def test_mismatched_sweep_spec_is_loud(self, tmp_path) -> None:
        path = self.make_journal(tmp_path)
        other = sweep_fingerprint(tiny_spec(root_seed=99))
        with pytest.raises(JournalError, match="different sweep spec"):
            SweepJournal.replay(path, expected_fingerprint=other)

    def test_edited_spec_payload_cannot_masquerade(self, tmp_path) -> None:
        # Keep the header's fingerprint but swap in a different grid: the
        # rebuild re-hashes and refuses.
        path = self.make_journal(tmp_path)
        lines = open(path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        header["spec"] = spec_artifact(tiny_spec(root_seed=99))
        lines[0] = json.dumps(header, separators=(",", ":"))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        replayed = SweepJournal.replay(path)
        with pytest.raises(JournalError, match="rebuilds to fingerprint"):
            replayed.rebuild_spec()

    def test_garbage_middle_line_is_loud(self, tmp_path) -> None:
        path = self.make_journal(tmp_path, points=(0,))
        lines = open(path, encoding="utf-8").read().splitlines()
        lines.insert(1, "not json at all")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="unreadable journal line"):
            SweepJournal.replay(path)

    def test_out_of_range_index_is_loud(self, tmp_path) -> None:
        path = self.make_journal(tmp_path, points=())
        line = json.dumps({"kind": "point", "index": 99, "result": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        with pytest.raises(JournalError, match="outside"):
            SweepJournal.replay(path)

    def test_unknown_schema_is_loud(self, tmp_path) -> None:
        path = self.make_journal(tmp_path, points=())
        lines = open(path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == JOURNAL_SCHEMA
        header["schema"] = "repro.fleet-journal/99"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
        with pytest.raises(JournalError, match="unknown journal schema"):
            SweepJournal.replay(path)

    def test_non_object_line_is_loud(self, tmp_path) -> None:
        path = self.make_journal(tmp_path, points=())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
        with pytest.raises(JournalError, match="must be JSON objects"):
            SweepJournal.replay(path)
