"""Unit tests for bounded, LRU-pruned dependency lists (§III-A)."""

from __future__ import annotations

import pytest

from repro.core.deplist import UNBOUNDED, DependencyList
from repro.errors import ConfigurationError
from repro.types import DepEntry


class TestConstruction:
    def test_empty(self) -> None:
        deps = DependencyList()
        assert len(deps) == 0
        assert deps.required_version("x") is None

    def test_preserves_order(self) -> None:
        deps = DependencyList.from_pairs([("a", 3), ("b", 1), ("c", 2)])
        assert deps.as_pairs() == (("a", 3), ("b", 1), ("c", 2))

    def test_duplicate_key_keeps_larger_version(self) -> None:
        deps = DependencyList.from_pairs([("a", 3), ("b", 1), ("a", 7)])
        assert deps.required_version("a") == 7
        assert len(deps) == 2

    def test_duplicate_key_keeps_earlier_position(self) -> None:
        deps = DependencyList.from_pairs([("a", 3), ("b", 1), ("a", 7)])
        # "a" stays in its original (more recent) slot with the newer version.
        assert deps.as_pairs() == (("a", 7), ("b", 1))

    def test_duplicate_with_smaller_version_ignored(self) -> None:
        deps = DependencyList.from_pairs([("a", 7), ("a", 3)])
        assert deps.as_pairs() == (("a", 7),)

    def test_contains_and_keys(self) -> None:
        deps = DependencyList.from_pairs([("a", 1), ("b", 2)])
        assert "a" in deps and "b" in deps and "c" not in deps
        assert deps.keys() == {"a", "b"}

    def test_equality_and_hash(self) -> None:
        a = DependencyList.from_pairs([("a", 1)])
        b = DependencyList.from_pairs([("a", 1)])
        c = DependencyList.from_pairs([("a", 2)])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not-a-list"

    def test_iteration_yields_entries(self) -> None:
        deps = DependencyList.from_pairs([("a", 1), ("b", 2)])
        assert list(deps) == [DepEntry("a", 1), DepEntry("b", 2)]


class TestMerge:
    def test_direct_entries_come_first(self) -> None:
        inherited = [DependencyList.from_pairs([("old", 1)])]
        merged = DependencyList.merge({"x": 10}, inherited, max_len=5)
        assert merged.as_pairs()[0] == ("x", 10)
        assert merged.required_version("old") == 1

    def test_prunes_to_max_len(self) -> None:
        direct = {"a": 1, "b": 2, "c": 3}
        merged = DependencyList.merge(direct, [], max_len=2)
        assert len(merged) == 2

    def test_unbounded_never_prunes(self) -> None:
        direct = {f"k{i}": i for i in range(100)}
        merged = DependencyList.merge(direct, [], max_len=UNBOUNDED)
        assert len(merged) == 100

    def test_exclude_removes_self_entry(self) -> None:
        merged = DependencyList.merge({"self": 5, "other": 2}, [], max_len=5, exclude="self")
        assert "self" not in merged
        assert merged.required_version("other") == 2

    def test_subsumption_across_sources(self) -> None:
        """§III-A: an entry is discarded if the same object appears with a
        larger version elsewhere."""
        inherited = [
            DependencyList.from_pairs([("x", 3), ("y", 1)]),
            DependencyList.from_pairs([("x", 9)]),
        ]
        merged = DependencyList.merge({}, inherited, max_len=5)
        assert merged.required_version("x") == 9
        assert len([e for e in merged if e.key == "x"]) == 1

    def test_direct_version_beats_stale_inherited(self) -> None:
        inherited = [DependencyList.from_pairs([("a", 2)])]
        merged = DependencyList.merge({"a": 10}, inherited, max_len=5)
        assert merged.required_version("a") == 10

    def test_inherited_larger_version_survives_direct(self) -> None:
        # A read of an old version can inherit a dependency on a *newer*
        # version of the same key from another source list.
        inherited = [DependencyList.from_pairs([("a", 99)])]
        merged = DependencyList.merge({"a": 10}, inherited, max_len=5)
        assert merged.required_version("a") == 99

    def test_lru_prefers_direct_over_inherited(self) -> None:
        direct = {"d1": 1, "d2": 2}
        inherited = [DependencyList.from_pairs([("i1", 1), ("i2", 2), ("i3", 3)])]
        merged = DependencyList.merge(direct, inherited, max_len=3)
        kept = merged.keys()
        assert {"d1", "d2"} <= kept
        assert kept - {"d1", "d2"} == {"i1"}  # best-positioned inherited entry

    def test_inherited_recency_uses_best_position(self) -> None:
        first = DependencyList.from_pairs([("a", 1), ("b", 1)])
        second = DependencyList.from_pairs([("b", 2), ("c", 1)])
        merged = DependencyList.merge({}, [first, second], max_len=3)
        # "a" and "b" both have best position 0; "c" has position 1.
        assert [e.key for e in merged] == ["a", "b", "c"]

    def test_deterministic_tie_break(self) -> None:
        one = DependencyList.merge({"z": 1, "a": 1, "m": 1}, [], max_len=2)
        two = DependencyList.merge({"m": 1, "z": 1, "a": 1}, [], max_len=2)
        assert one.as_pairs() == two.as_pairs()

    def test_invalid_max_len_rejected(self) -> None:
        with pytest.raises(ConfigurationError):
            DependencyList.merge({}, [], max_len=-2)

    def test_max_len_zero_gives_empty_list(self) -> None:
        merged = DependencyList.merge({"a": 1}, [], max_len=0)
        assert len(merged) == 0

    def test_paper_example_shape(self) -> None:
        """§III-A example: txn t at version vt touches o1 and o2; o1's new
        list carries (o2, vt) plus o2's inherited dependencies."""
        o1_old = DependencyList.from_pairs([("d11", 1), ("d12", 2)])
        o2_old = DependencyList.from_pairs([("d21", 3), ("d22", 4)])
        vt = 100
        merged = DependencyList.merge(
            {"o1": vt, "o2": vt}, [o1_old, o2_old], max_len=UNBOUNDED, exclude="o1"
        )
        assert merged.required_version("o2") == vt
        for key, version in [("d11", 1), ("d12", 2), ("d21", 3), ("d22", 4)]:
            assert merged.required_version(key) == version
        assert "o1" not in merged


class TestDepEntry:
    def test_subsumes_same_key_larger_version(self) -> None:
        assert DepEntry("a", 5).subsumes(DepEntry("a", 3))
        assert DepEntry("a", 5).subsumes(DepEntry("a", 5))
        assert not DepEntry("a", 3).subsumes(DepEntry("a", 5))
        assert not DepEntry("a", 5).subsumes(DepEntry("b", 1))
