"""Unit tests for the protocol-race experiment (spec, rows, artifact)."""

from __future__ import annotations

import copy

import pytest

from repro.errors import ConfigurationError
from repro.experiments import protocol_race


def make_rows(
    protocols=("alpha", "beta"), scenarios=("s1", "s2", "s3")
) -> list[dict[str, object]]:
    """Synthetic race rows: alpha is perfectly consistent, beta is cheap."""
    rows = []
    for scenario in scenarios:
        for protocol in protocols:
            consistent = protocol == "alpha"
            rows.append(
                {
                    "scenario": scenario,
                    "protocol": protocol,
                    "inconsistency_pct": 0.0 if consistent else 4.5,
                    "abort_pct": 12.0 if consistent else 0.0,
                    "read_latency_ms": 21.0 if consistent else 1.5,
                    "backend_reads_per_s": 900.0 if consistent else 60.0,
                    "hit_pct": 0.0 if consistent else 95.0,
                    "update_commits": 100,
                }
            )
    return rows


class TestSpec:
    def test_grid_is_protocols_times_scenarios(self) -> None:
        sweep = protocol_race.spec(duration=10.0)
        assert len(sweep.points) == 3 * len(protocol_race.RACE_PROTOCOLS)
        labels = [point.label for point in sweep.points]
        assert labels[0] == "hetero-loss/tcache-detector"
        assert labels[-1] == "flash-crowd/locking"
        assert len(set(labels)) == len(labels)

    def test_points_carry_scenario_and_protocol_params(self) -> None:
        sweep = protocol_race.spec(duration=10.0, protocols=("locking",))
        assert [point.params for point in sweep.points] == [
            {"scenario": "hetero-loss", "protocol": "locking"},
            {"scenario": "geo-skew", "protocol": "locking"},
            {"scenario": "flash-crowd", "protocol": "locking"},
        ]

    def test_every_edge_gets_the_protocol(self) -> None:
        sweep = protocol_race.spec(duration=10.0, protocols=("causal",))
        for point in sweep.points:
            assert all(edge.protocol == "causal" for edge in point.scenario.edges)

    def test_scenario_major_layout_keeps_seeds_stable(self) -> None:
        narrow = protocol_race.spec(duration=10.0, protocols=("locking",))
        wide = protocol_race.spec(
            duration=10.0, protocols=("tcache-detector", "locking")
        )
        # locking's hetero-loss point sits in the same scenario block in
        # both fields; the underlying base scenario must be identical.
        narrow_scenario = narrow.points[0].scenario
        wide_scenario = wide.points[1].scenario
        assert narrow_scenario.name == wide_scenario.name
        assert narrow_scenario.seed == wide_scenario.seed

    def test_unknown_protocol_rejected_before_any_run(self) -> None:
        with pytest.raises(ConfigurationError, match="registered protocols"):
            protocol_race.spec(protocols=("tcache-detector", "nope"))

    def test_empty_field_rejected(self) -> None:
        with pytest.raises(ConfigurationError, match="at least one"):
            protocol_race.spec(protocols=())


class TestRanking:
    def test_fewest_inconsistencies_wins(self) -> None:
        ranking = protocol_race.ranking_rows(make_rows())
        assert [row["protocol"] for row in ranking] == ["alpha", "beta"]
        assert [row["rank"] for row in ranking] == [1, 2]
        assert ranking[0]["inconsistency_pct"] == 0.0
        assert ranking[0]["scenarios"] == 3

    def test_latency_breaks_ties(self) -> None:
        rows = make_rows()
        for row in rows:
            row["inconsistency_pct"] = 0.0
        ranking = protocol_race.ranking_rows(rows)
        # beta's 1.5 ms beats alpha's 21 ms once inconsistency ties.
        assert [row["protocol"] for row in ranking] == ["beta", "alpha"]

    def test_means_are_across_scenarios(self) -> None:
        rows = make_rows(protocols=("alpha",), scenarios=("s1", "s2"))
        rows[0]["read_latency_ms"] = 10.0
        rows[1]["read_latency_ms"] = 20.0
        ranking = protocol_race.ranking_rows(rows)
        assert ranking[0]["read_latency_ms"] == 15.0


class TestArtifact:
    def payload(self) -> dict[str, object]:
        rows = make_rows()
        ranking = protocol_race.ranking_rows(rows)
        return protocol_race.artifact(rows, ranking, duration=10.0, seed=7)

    def test_valid_artifact_passes(self) -> None:
        payload = self.payload()
        assert payload["schema"] == protocol_race.RACE_SCHEMA
        assert payload["protocols"] == ["alpha", "beta"]
        assert payload["scenarios"] == ["s1", "s2", "s3"]
        protocol_race.validate_artifact(payload)

    def test_wrong_schema_tag_rejected(self) -> None:
        payload = self.payload()
        payload["schema"] = "repro.protocol-race/0"
        with pytest.raises(ConfigurationError, match="schema"):
            protocol_race.validate_artifact(payload)

    def test_missing_row_field_rejected(self) -> None:
        payload = self.payload()
        del payload["rows"][2]["read_latency_ms"]
        with pytest.raises(ConfigurationError, match="read_latency_ms"):
            protocol_race.validate_artifact(payload)

    def test_bool_is_not_a_number(self) -> None:
        payload = self.payload()
        payload["rows"][0]["inconsistency_pct"] = True
        with pytest.raises(ConfigurationError, match="inconsistency_pct"):
            protocol_race.validate_artifact(payload)

    def test_incomplete_grid_rejected(self) -> None:
        payload = self.payload()
        payload["rows"].pop()
        with pytest.raises(ConfigurationError, match="rows"):
            protocol_race.validate_artifact(payload)

    def test_out_of_order_ranks_rejected(self) -> None:
        payload = self.payload()
        payload["ranking"][0]["rank"], payload["ranking"][1]["rank"] = 2, 1
        with pytest.raises(ConfigurationError, match="ranking must be"):
            protocol_race.validate_artifact(payload)

    def test_artifact_does_not_alias_inputs(self) -> None:
        rows = make_rows()
        ranking = protocol_race.ranking_rows(rows)
        payload = protocol_race.artifact(rows, ranking, duration=10.0, seed=7)
        snapshot = copy.deepcopy(payload)
        rows[0]["scenario"] = "mutated"
        ranking[0]["rank"] = 99
        assert payload == snapshot
