"""Unit tests for the consistency monitor and its statistics."""

from __future__ import annotations

import pytest

from repro.monitor.monitor import ConsistencyMonitor
from repro.monitor.stats import ClassCounts, TimeSeries
from repro.sim.core import Simulator
from repro.types import (
    CommittedTransaction,
    ReadOnlyTransactionRecord,
    TransactionOutcome,
)


def update(version: int, keys: list[str], read_versions: dict) -> CommittedTransaction:
    return CommittedTransaction(
        txn_id=version, reads=read_versions, writes={k: version for k in keys}
    )


def read_only(
    txn_id: int,
    reads: dict,
    *,
    outcome: TransactionOutcome = TransactionOutcome.COMMITTED,
    time: float = 0.0,
    non_repeatable: bool = False,
) -> ReadOnlyTransactionRecord:
    return ReadOnlyTransactionRecord(
        txn_id=txn_id,
        reads=reads,
        outcome=outcome,
        finish_time=time,
        non_repeatable=non_repeatable,
    )


@pytest.fixture
def monitor(sim: Simulator) -> ConsistencyMonitor:
    monitor = ConsistencyMonitor(sim)
    monitor.record_update(update(1, ["a", "b"], {"a": 0, "b": 0}))
    return monitor


class TestClassification:
    def test_consistent_commit(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 1, "b": 1}))
        assert monitor.summary.read_only.consistent == 1
        assert monitor.inconsistency_ratio == 0.0

    def test_inconsistent_commit(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 0, "b": 1}))
        assert monitor.summary.read_only.inconsistent == 1
        assert monitor.inconsistency_ratio == 1.0
        assert len(monitor.inconsistency_witnesses) == 1

    def test_necessary_abort(self, monitor) -> None:
        monitor.record_read_only(
            read_only(1, {"a": 0, "b": 1}, outcome=TransactionOutcome.ABORTED)
        )
        assert monitor.summary.read_only.aborted_necessary == 1
        assert monitor.detection_ratio == 1.0

    def test_unnecessary_abort(self, monitor) -> None:
        monitor.record_read_only(
            read_only(1, {"a": 1, "b": 1}, outcome=TransactionOutcome.ABORTED)
        )
        assert monitor.summary.read_only.aborted_unnecessary == 1
        assert monitor.abort_ratio == 1.0

    def test_non_repeatable_always_inconsistent(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 1}, non_repeatable=True))
        assert monitor.summary.read_only.inconsistent == 1
        assert monitor.summary.non_repeatable == 1

    def test_detection_ratio_mixes_detected_and_missed(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 0, "b": 1}))  # missed
        monitor.record_read_only(
            read_only(2, {"a": 0, "b": 1}, outcome=TransactionOutcome.ABORTED)
        )  # detected
        monitor.record_read_only(read_only(3, {"a": 1, "b": 1}))  # consistent
        assert monitor.detection_ratio == pytest.approx(0.5)
        assert monitor.inconsistency_ratio == pytest.approx(0.5)

    def test_update_commits_counted(self, monitor) -> None:
        assert monitor.summary.update_commits == 1


class TestBackendNamespaces:
    def test_first_bound_backend_shares_the_default_tester(self, sim) -> None:
        monitor = ConsistencyMonitor(sim)
        tester = monitor.bind_backend("db")
        assert tester is monitor.tester
        assert monitor.tester.namespace == "db"
        # Untagged (legacy) updates and "db"-tagged reads meet in one graph.
        monitor.record_update(update(1, ["a", "b"], {"a": 0, "b": 0}))
        monitor.record_read_only(read_only(1, {"a": 0, "b": 1}), backend="db")
        assert monitor.summary.read_only.inconsistent == 1

    def test_later_backends_get_independent_graphs(self, sim) -> None:
        monitor = ConsistencyMonitor(sim)
        monitor.bind_backend("eu")
        monitor.bind_backend("us")
        assert monitor.backend_namespaces == ["eu", "us"]
        assert monitor.tester_for("us") is not monitor.tester_for("eu")
        # Both backends commit their own txn 1 — no "recorded twice" clash,
        # the (backend, version) keying keeps the histories apart.
        monitor.record_update(update(1, ["a", "b"], {"a": 0, "b": 0}), backend="eu")
        monitor.record_update(update(1, ["a"], {"a": 0}), backend="us")
        # (a@0, b@1) is stale on eu's history...
        monitor.record_read_only(read_only(1, {"a": 0, "b": 1}), backend="eu")
        # ...while the same version pattern on us — whose txn 1 wrote only a
        # — is a different, consistent observation (b@0 is the initial load).
        monitor.record_read_only(read_only(2, {"a": 1, "b": 0}), backend="us")
        assert monitor.summary.read_only.inconsistent == 1
        assert monitor.summary.read_only.consistent == 1
        assert monitor.backend_summaries["eu"].read_only.inconsistent == 1
        assert monitor.backend_summaries["us"].read_only.consistent == 1

    def test_per_backend_views_sum_to_fleet(self, sim) -> None:
        monitor = ConsistencyMonitor(sim)
        for backend in ("eu", "us"):
            monitor.bind_backend(backend)
            monitor.record_update(
                update(1, ["a", "b"], {"a": 0, "b": 0}), backend=backend
            )
        monitor.record_read_only(read_only(1, {"a": 1, "b": 1}), backend="eu")
        monitor.record_read_only(read_only(2, {"a": 0, "b": 1}), backend="us")
        monitor.record_read_only(read_only(3, {"a": 1}), backend="us")
        total = monitor.summary.read_only.total
        assert total == 3
        assert total == sum(
            summary.read_only.total
            for summary in monitor.backend_summaries.values()
        )
        assert set(monitor.backend_series) == {"eu", "us"}

    def test_unknown_namespace_rejected_instead_of_lazily_created(
        self, sim
    ) -> None:
        """A typo'd backend tag must not classify against an empty history
        (which would report everything as consistent)."""
        from repro.errors import SimulationError

        monitor = ConsistencyMonitor(sim)
        monitor.bind_backend("eu")
        monitor.record_update(update(1, ["a"], {"a": 0}), backend="eu")
        with pytest.raises(SimulationError, match="unknown backend"):
            monitor.record_read_only(read_only(1, {"a": 0}), backend="eu-db")
        with pytest.raises(SimulationError, match="unknown backend"):
            monitor.record_update(update(2, ["a"], {"a": 1}), backend="us")

    def test_source_and_backend_tags_compose(self, sim) -> None:
        monitor = ConsistencyMonitor(sim)
        monitor.bind_backend("eu")
        monitor.record_update(update(1, ["a"], {"a": 0}), backend="eu")
        monitor.record_read_only(
            read_only(1, {"a": 1}), source="edge0", backend="eu"
        )
        assert monitor.source_summaries["edge0"].read_only.consistent == 1
        assert monitor.backend_summaries["eu"].read_only.consistent == 1


class TestSeries:
    def test_records_land_in_time_windows(self, sim) -> None:
        monitor = ConsistencyMonitor(sim, window=1.0)
        monitor.record_update(update(1, ["a", "b"], {"a": 0, "b": 0}))
        monitor.record_read_only(read_only(1, {"a": 1}, time=0.5))
        monitor.record_read_only(read_only(2, {"a": 1}, time=1.5))
        monitor.record_read_only(read_only(3, {"a": 0, "b": 1}, time=1.7))
        buckets = monitor.series.buckets()
        assert [start for start, _ in buckets] == [0.0, 1.0]
        assert buckets[1][1].committed == 2
        assert buckets[1][1].inconsistent == 1


class TestClassCounts:
    def test_derived_ratios(self) -> None:
        counts = ClassCounts(
            consistent=60, inconsistent=20, aborted_necessary=15, aborted_unnecessary=5
        )
        assert counts.committed == 80
        assert counts.aborted == 20
        assert counts.total == 100
        assert counts.inconsistency_ratio == pytest.approx(0.25)
        assert counts.abort_ratio == pytest.approx(0.20)
        assert counts.detection_ratio == pytest.approx(15 / 35)

    def test_empty_ratios_are_zero(self) -> None:
        counts = ClassCounts()
        assert counts.inconsistency_ratio == 0.0
        assert counts.abort_ratio == 0.0
        assert counts.detection_ratio == 0.0

    def test_as_dict(self) -> None:
        counts = ClassCounts(consistent=1)
        assert counts.as_dict()["consistent"] == 1


class TestTimeSeries:
    def test_rates_normalise_by_window(self) -> None:
        series = TimeSeries(window=2.0)
        for time in (0.1, 0.5, 1.9):
            series.record(time, "consistent")
        rows = series.rates()
        assert len(rows) == 1
        assert rows[0]["consistent"] == pytest.approx(1.5)  # 3 txns / 2 s

    def test_bucket_lookup_missing_is_empty(self) -> None:
        series = TimeSeries()
        assert series.bucket(42).total == 0
