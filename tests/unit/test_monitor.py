"""Unit tests for the consistency monitor and its statistics."""

from __future__ import annotations

import pytest

from repro.monitor.monitor import ConsistencyMonitor
from repro.monitor.stats import ClassCounts, TimeSeries
from repro.sim.core import Simulator
from repro.types import (
    CommittedTransaction,
    ReadOnlyTransactionRecord,
    TransactionOutcome,
)


def update(version: int, keys: list[str], read_versions: dict) -> CommittedTransaction:
    return CommittedTransaction(
        txn_id=version, reads=read_versions, writes={k: version for k in keys}
    )


def read_only(
    txn_id: int,
    reads: dict,
    *,
    outcome: TransactionOutcome = TransactionOutcome.COMMITTED,
    time: float = 0.0,
    non_repeatable: bool = False,
) -> ReadOnlyTransactionRecord:
    return ReadOnlyTransactionRecord(
        txn_id=txn_id,
        reads=reads,
        outcome=outcome,
        finish_time=time,
        non_repeatable=non_repeatable,
    )


@pytest.fixture
def monitor(sim: Simulator) -> ConsistencyMonitor:
    monitor = ConsistencyMonitor(sim)
    monitor.record_update(update(1, ["a", "b"], {"a": 0, "b": 0}))
    return monitor


class TestClassification:
    def test_consistent_commit(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 1, "b": 1}))
        assert monitor.summary.read_only.consistent == 1
        assert monitor.inconsistency_ratio == 0.0

    def test_inconsistent_commit(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 0, "b": 1}))
        assert monitor.summary.read_only.inconsistent == 1
        assert monitor.inconsistency_ratio == 1.0
        assert len(monitor.inconsistency_witnesses) == 1

    def test_necessary_abort(self, monitor) -> None:
        monitor.record_read_only(
            read_only(1, {"a": 0, "b": 1}, outcome=TransactionOutcome.ABORTED)
        )
        assert monitor.summary.read_only.aborted_necessary == 1
        assert monitor.detection_ratio == 1.0

    def test_unnecessary_abort(self, monitor) -> None:
        monitor.record_read_only(
            read_only(1, {"a": 1, "b": 1}, outcome=TransactionOutcome.ABORTED)
        )
        assert monitor.summary.read_only.aborted_unnecessary == 1
        assert monitor.abort_ratio == 1.0

    def test_non_repeatable_always_inconsistent(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 1}, non_repeatable=True))
        assert monitor.summary.read_only.inconsistent == 1
        assert monitor.summary.non_repeatable == 1

    def test_detection_ratio_mixes_detected_and_missed(self, monitor) -> None:
        monitor.record_read_only(read_only(1, {"a": 0, "b": 1}))  # missed
        monitor.record_read_only(
            read_only(2, {"a": 0, "b": 1}, outcome=TransactionOutcome.ABORTED)
        )  # detected
        monitor.record_read_only(read_only(3, {"a": 1, "b": 1}))  # consistent
        assert monitor.detection_ratio == pytest.approx(0.5)
        assert monitor.inconsistency_ratio == pytest.approx(0.5)

    def test_update_commits_counted(self, monitor) -> None:
        assert monitor.summary.update_commits == 1


class TestSeries:
    def test_records_land_in_time_windows(self, sim) -> None:
        monitor = ConsistencyMonitor(sim, window=1.0)
        monitor.record_update(update(1, ["a", "b"], {"a": 0, "b": 0}))
        monitor.record_read_only(read_only(1, {"a": 1}, time=0.5))
        monitor.record_read_only(read_only(2, {"a": 1}, time=1.5))
        monitor.record_read_only(read_only(3, {"a": 0, "b": 1}, time=1.7))
        buckets = monitor.series.buckets()
        assert [start for start, _ in buckets] == [0.0, 1.0]
        assert buckets[1][1].committed == 2
        assert buckets[1][1].inconsistent == 1


class TestClassCounts:
    def test_derived_ratios(self) -> None:
        counts = ClassCounts(
            consistent=60, inconsistent=20, aborted_necessary=15, aborted_unnecessary=5
        )
        assert counts.committed == 80
        assert counts.aborted == 20
        assert counts.total == 100
        assert counts.inconsistency_ratio == pytest.approx(0.25)
        assert counts.abort_ratio == pytest.approx(0.20)
        assert counts.detection_ratio == pytest.approx(15 / 35)

    def test_empty_ratios_are_zero(self) -> None:
        counts = ClassCounts()
        assert counts.inconsistency_ratio == 0.0
        assert counts.abort_ratio == 0.0
        assert counts.detection_ratio == 0.0

    def test_as_dict(self) -> None:
        counts = ClassCounts(consistent=1)
        assert counts.as_dict()["consistent"] == 1


class TestTimeSeries:
    def test_rates_normalise_by_window(self) -> None:
        series = TimeSeries(window=2.0)
        for time in (0.1, 0.5, 1.9):
            series.record(time, "consistent")
        rows = series.rates()
        assert len(rows) == 1
        assert rows[0]["consistent"] == pytest.approx(1.5)  # 3 txns / 2 s

    def test_bucket_lookup_missing_is_empty(self) -> None:
        series = TimeSeries()
        assert series.bucket(42).total == 0
