"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.sim.core import Simulator
from repro.types import CommittedTransaction, Key


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fast_timing() -> TimingConfig:
    """Zero-latency transaction phases: commits happen at submission time."""
    return TimingConfig(lock_delay=0.0, execute_delay=0.0, prepare_delay=0.0, commit_delay=0.0)


@pytest.fixture
def database(sim: Simulator, fast_timing: TimingConfig) -> Database:
    """Single-shard database with k=5 dependency lists and instant phases."""
    return Database(sim, DatabaseConfig(deplist_max=5, timing=fast_timing))


def commit_update(
    sim: Simulator,
    database: Database,
    keys: list[Key],
    *,
    value: object = "v",
    write_keys: list[Key] | None = None,
) -> CommittedTransaction:
    """Run one update transaction to completion and return its record.

    ``keys`` is the read set; ``write_keys`` defaults to the full read set
    (the paper's read-all-write-all update transactions).
    """
    targets = write_keys if write_keys is not None else keys
    process = database.execute_update(
        read_keys=keys, writes={key: value for key in targets}
    )
    sim.run()
    if not process.triggered:
        raise AssertionError("update transaction did not finish")
    if not process.ok:
        raise process.value
    return process.value


def drain(sim: Simulator) -> None:
    """Run the simulator until the event queue is empty."""
    sim.run()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
