"""Figure 4 — convergence of T-Cache after sudden cluster formation.

Paper timeline: uniform accesses until t = 58 s (dependency lists useless,
~26 % of committed transactions inconsistent, few aborts); perfectly
clustered afterwards (inconsistency collapses within seconds, abort band
appears, consistent-commit rate dips because clustered conflicts are more
frequent).
"""

from __future__ import annotations

from repro.experiments import fig4_convergence
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 4: before the switch ~26% of commits inconsistent with few\n"
    "aborts; after t=58s detection takes over within seconds"
)


def test_fig4_convergence(benchmark, scale, jobs):
    duration = 160.0 * scale
    switch = 58.0 * scale
    rows = benchmark.pedantic(
        lambda: fig4_convergence.run(duration=duration, switch_time=switch, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    stride = max(1, len(rows) // 20)
    print(
        format_table(
            rows[::stride],
            title=f"Figure 4: per-second rates (every {stride}th window)",
        )
    )
    summaries = fig4_convergence.phase_summaries(rows, switch_time=switch)
    print(format_table(
        [
            {"phase": "before switch", **summaries["before"]},
            {"phase": "after switch", **summaries["after"]},
        ],
        title="phase means [txn/s]",
    ))
    print(PAPER_NOTES)

    before, after = summaries["before"], summaries["after"]
    assert before["inconsistent_tps"] > 3 * before["aborted_tps"]
    assert after["inconsistent_tps"] < before["inconsistent_tps"] / 3
    assert after["aborted_tps"] > before["aborted_tps"]
