"""Figure 7(a)/(b) — the realistic topologies.

The paper displays 500-node down-samples of the Amazon co-purchase and
Orkut friendship graphs: "The graphs are visibly clustered, the Amazon
topology more so than the Orkut one, yet well-connected." This benchmark
builds both stand-in parents, runs the paper's random-walk down-sampling
(15 % restart) to 1000 nodes and to the display size of 500, and reports
the structural statistics the substitution must preserve.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.realistic import sampled_topology
from repro.experiments.report import format_table
from repro.workloads.graphs import topology_stats
from repro.workloads.sampling import random_walk_sample

PAPER_NOTES = (
    "paper Fig. 7ab: both samples visibly clustered and well-connected,\n"
    "Amazon markedly more clustered than Orkut"
)


def build_rows():
    rows = []
    for name in ("amazon", "orkut"):
        sample_1000 = sampled_topology(name)
        rows.append({"workload": name, "nodes_target": 1000,
                     **topology_stats(sample_1000).as_row()})
        display = random_walk_sample(sample_1000, 500, np.random.default_rng(5))
        rows.append({"workload": name, "nodes_target": 500,
                     **topology_stats(display).as_row()})
    return rows


def test_fig7ab_topologies(benchmark):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Figure 7ab: topology statistics"))
    print(PAPER_NOTES)

    by_key = {(row["workload"], row["nodes_target"]): row for row in rows}
    for target in (1000, 500):
        amazon = by_key[("amazon", target)]
        orkut = by_key[("orkut", target)]
        assert amazon["mean_clustering"] > 3 * orkut["mean_clustering"]
        assert amazon["mean_clustering"] > 0.4          # visibly clustered
        assert orkut["mean_clustering"] > 0.01           # still clustered
        assert amazon["components"] <= 3                 # well-connected
        assert orkut["components"] <= 3
