"""Figure 8 — ABORT vs EVICT vs RETRY on the realistic workloads (k = 3).

Paper reading: ABORT detects 70 % of inconsistent transactions on the
Amazon workload and 43 % on the less-clustered Orkut workload; EVICT
reduces uncommittable (committed-inconsistent) transactions to 20 % (Amazon)
and 36 % (Orkut) of their ABORT values; RETRY reaches 11 % on Amazon.
"""

from __future__ import annotations

from repro.experiments import fig8_strategies
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 8: detection 70% (amazon) vs 43% (orkut) under ABORT;\n"
    "EVICT -> 20%/36% of ABORT's inconsistent band; RETRY (amazon) -> 11%"
)


def test_fig8_strategies(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: fig8_strategies.run(duration=duration, jobs=jobs), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Figure 8: strategy comparison (realistic)"))
    print(PAPER_NOTES)

    table = {(row["workload"], row["strategy"]): row for row in rows}

    # Detection ordering and bands (paper: 70% vs 43%).
    amazon_detection = table[("amazon", "ABORT")]["detection_ratio_pct"]
    orkut_detection = table[("orkut", "ABORT")]["detection_ratio_pct"]
    assert amazon_detection > orkut_detection
    assert 55.0 < amazon_detection <= 90.0
    assert 30.0 < orkut_detection < 60.0

    for workload in ("amazon", "orkut"):
        abort = table[(workload, "ABORT")]
        evict = table[(workload, "EVICT")]
        retry = table[(workload, "RETRY")]
        # EVICT shrinks the uncommittable band substantially.
        assert evict["inconsistent_pct"] < 0.75 * abort["inconsistent_pct"]
        # RETRY converts aborts into commits.
        assert retry["aborted_pct"] < evict["aborted_pct"] < abort["aborted_pct"]
        # Consistent-commit rate rises ABORT -> EVICT -> RETRY
        # (abstract: "increases the rate of consistent transactions by
        # 33-58%").
        assert retry["consistent_pct"] > abort["consistent_pct"] * 1.2
