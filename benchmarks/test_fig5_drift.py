"""Figure 5 — drifting clusters: inconsistency spikes at every shift.

Paper timeline: perfectly clustered accesses whose cluster boundaries shift
by one object every 3 minutes over an 800 s run; each shift produces an
inconsistency-ratio spike (up to ~2.5 %) that converges back toward zero
before the next shift.

At REPRO_BENCH_SCALE=1 this reproduces the paper's full 800 s / 180 s
timeline; scaled runs compress both proportionally (the dynamics — spike
then reconvergence — are rate-driven and survive compression).
"""

from __future__ import annotations

from repro.experiments import fig5_drift
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 5: spikes to ~1.5-2.5% right after each 3-minute shift,\n"
    "converging back toward zero between shifts"
)


def test_fig5_drift(benchmark, scale, jobs):
    duration = 800.0 * scale
    shift_interval = 180.0 * scale
    window = 5.0 * scale
    rows = benchmark.pedantic(
        lambda: fig5_drift.run(
            duration=duration,
            shift_interval=shift_interval,
            window=window,
            jobs=jobs,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    stride = max(1, len(rows) // 32)
    print(
        format_table(
            rows[::stride],
            title=f"Figure 5: inconsistency ratio over time (every {stride}th window)",
        )
    )
    profile = fig5_drift.shift_spike_profile(
        rows, shift_interval, settle=shift_interval / 6
    )
    print(format_table([profile], title="post-shift vs settled inconsistency"))
    print(PAPER_NOTES)

    assert profile["post_shift_mean_pct"] > 2 * profile["settled_mean_pct"]
    assert profile["settled_mean_pct"] < 1.5
