"""Theorem 1 — unbounded T-Cache implements cache-serializability.

End-to-end configuration: unbounded dependency lists, unbounded cache, the
paper's lossy asynchronous invalidations. Every committed read-only
transaction must be serializable with the update history (zero inconsistent
commits under full serialization-graph testing), on clustered, unclustered
and graph workloads alike.
"""

from __future__ import annotations

from repro.experiments import theorem1
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Theorem 1: with unbounded cache and dependency lists, every\n"
    "committed read-only transaction serializes (proof in Appendix A)"
)


def test_theorem1_unbounded(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: theorem1.run(duration=max(duration * 0.67, 10.0), jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Theorem 1: unbounded-resource runs"))
    print(PAPER_NOTES)

    for row in rows:
        assert row["inconsistent_commits"] == 0, row
        assert row["committed"] > 1000
        assert row["detection_ratio_pct"] == 100.0 or row["aborted"] >= 0
