"""Harness throughput — how fast the full column simulates.

Not a paper figure; this tracks the reproduction's own performance (events
per simulated second across database, channel, cache, clients and monitor)
so regressions in the substrate show up in benchmark history.
"""

from __future__ import annotations

from repro.experiments.config import ColumnConfig
from repro.experiments.runner import run_column
from repro.workloads.synthetic import ParetoClusterWorkload


def test_column_throughput(benchmark):
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=1.0)
    config = ColumnConfig(seed=21, duration=8.0, warmup=2.0)

    result = benchmark.pedantic(
        lambda: run_column(config, workload), rounds=1, iterations=1
    )
    total_txns = result.counts.total + result.db_stats.total_transactions
    print(f"\nsimulated {config.total_time}s: {total_txns} transactions, "
          f"{result.cache_stats.reads} cache reads")
    assert result.counts.total > 2000
