"""Figure 3 — detected inconsistencies vs the Pareto alpha parameter.

Paper series (read off Fig. 3): detection near zero at alpha = 1/32, rising
steeply through alpha ~ 1, reaching ~100 % at alpha = 4.
"""

from __future__ import annotations

from repro.experiments import fig3_alpha
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 3: ~0-10% at alpha=1/32, monotone rise, ~100% at alpha=4;\n"
    "'at alpha=4 ... allowing for perfect inconsistency detection'"
)


def test_fig3_alpha_sweep(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: fig3_alpha.run(duration=duration, jobs=jobs), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Figure 3: detection ratio vs Pareto alpha"))
    print(PAPER_NOTES)

    detected = [row["detected_inconsistencies_pct"] for row in rows]
    # Shape: low at the uniform end, (weakly) rising, perfect at the top.
    assert detected[0] < 30.0
    assert detected[-1] > 95.0
    # Monotone within noise: every point at least as high as the point two
    # positions earlier.
    for index in range(2, len(detected)):
        assert detected[index] >= detected[index - 2] - 5.0
