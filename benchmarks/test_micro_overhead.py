"""§V-B2 overhead micro-benchmarks.

The paper claims the protocol's compute overhead is "O(1) in the number of
objects in the system and O(k^2) in the size of the dependency lists, which
is limited to 5 in our experiments". These benchmarks measure the two hot
paths — the commit-time dependency-list merge and the per-read consistency
check — at the paper's parameters, and verify the O(1)-in-database-size
claim by timing the same operation against histories of different sizes.
"""

from __future__ import annotations

import time

from repro.bench.suite import sgt_history, sgt_read_sets
from repro.core.deplist import DependencyList
from repro.core.detector import check_read
from repro.core.records import TransactionContext
from repro.monitor.sgt import SerializationGraphTester


def make_inherited(txn_size: int, k: int) -> list[DependencyList]:
    return [
        DependencyList.from_pairs(
            [(f"obj{i}-{j}", j + 1) for j in range(k)]
        )
        for i in range(txn_size)
    ]


def test_deplist_merge_at_paper_parameters(benchmark):
    """Commit-time merge: 5-object transaction, k = 5."""
    direct = {f"key{i}": 100 + i for i in range(5)}
    inherited = make_inherited(5, 5)

    result = benchmark(
        lambda: DependencyList.merge(direct, inherited, max_len=5, exclude="key0")
    )
    assert len(result) == 5


def test_consistency_check_at_paper_parameters(benchmark):
    """Per-read check: transaction with 4 prior reads, k = 5 lists."""
    context = TransactionContext(txn_id=1, start_time=0.0)
    for i in range(4):
        context.record_read(
            f"key{i}", 10 + i, DependencyList.from_pairs([(f"dep{i}-{j}", j) for j in range(5)])
        )
    deps = DependencyList.from_pairs([(f"key{i}", 9) for i in range(4)] + [("other", 3)])

    result = benchmark(lambda: check_read(context, "key4", 50, deps))
    assert result is None


def test_check_cost_independent_of_database_size(benchmark):
    """O(1) in database size: the check touches only the transaction's own
    record and the incoming list, never the object universe. We verify by
    timing checks while a million-object 'database' exists versus not —
    the benchmark itself runs the large-universe variant."""
    universe = {f"obj{i}": i for i in range(1_000_000)}  # present, untouched
    context = TransactionContext(txn_id=1, start_time=0.0)
    context.record_read("a", 5, DependencyList.from_pairs([("b", 3)]))
    deps = DependencyList.from_pairs([("a", 4)])

    result = benchmark(lambda: check_read(context, "b", 3, deps))
    assert result is None
    assert len(universe) == 1_000_000


def test_merge_scales_quadratically_not_with_db(benchmark):
    """O(k^2)-ish in list size: doubling k must not explode the merge cost
    by more than ~8x (tolerant envelope), and cost is unaffected by the
    number of *other* objects in the system."""

    def merge_with_k(k: int) -> float:
        direct = {f"key{i}": 100 + i for i in range(5)}
        inherited = make_inherited(5, k)
        start = time.perf_counter()
        for _ in range(200):
            DependencyList.merge(direct, inherited, max_len=k)
        return time.perf_counter() - start

    small = merge_with_k(5)
    large = merge_with_k(10)
    assert large < small * 12

    benchmark(lambda: DependencyList.merge(
        {f"key{i}": i for i in range(5)}, make_inherited(5, 5), max_len=5
    ))


def test_sgt_check_rate_flat_in_history_size(benchmark):
    """O(1) in history size for the monitor's exact oracle too: the
    adjacency-based ``SerializationGraphTester`` answers bounded-staleness
    checks (reads of current/previous versions, what a cache-fed monitor
    sees) at a rate governed by the conflict neighbourhood, not by how many
    updates were ever recorded. We time a fixed batch of checks against
    10^3-, 10^4- and 10^5-update histories and require the per-check cost at
    10^5 to stay within a tolerant envelope (4x) of the 10^4 cost — the
    pre-adjacency tester degraded super-linearly here."""

    def checks_per_sec(n_updates: int, n_checks: int = 1000) -> float:
        txns, current, previous = sgt_history(n_updates)
        read_sets = sgt_read_sets(current, previous, n_checks)
        tester = SerializationGraphTester()
        for txn in txns:
            tester.record_update(txn)
        # Best of three: a GC pause or CI-runner throttle during one ~40 ms
        # window must not read as an asymptotic blow-up.
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for reads in read_sets:
                tester.is_consistent(reads)
            best = min(best, time.perf_counter() - start)
        return n_checks / best

    mid = checks_per_sec(10_000)
    large = checks_per_sec(100_000)
    assert large > mid / 4, (
        f"checks/sec fell from {mid:,.0f} at 10^4 updates to {large:,.0f} "
        "at 10^5 — per-check cost is no longer O(1) in history size"
    )

    txns, current, previous = sgt_history(1_000)
    read_sets = sgt_read_sets(current, previous, 200)
    tester = SerializationGraphTester()
    for txn in txns:
        tester.record_update(txn)
    benchmark(lambda: [tester.is_consistent(reads) for reads in read_sets])
