"""Shared configuration for the benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation (Figures
3-8, the Theorem 1 configuration, and the §V-B2 overhead micro-benchmarks),
prints the series the figure plots next to the paper's reported values, and
asserts the qualitative shape.

``REPRO_BENCH_SCALE`` scales simulated durations: 1.0 (default) runs the
full-fidelity experiments; smaller values (e.g. 0.3) run faster
sanity-level sweeps with the same shapes.
"""

from __future__ import annotations

import os

import pytest


def _scale() -> float:
    try:
        value = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return min(max(value, 0.05), 4.0)


@pytest.fixture(scope="session")
def scale() -> float:
    return _scale()


@pytest.fixture(scope="session")
def duration(scale: float) -> float:
    """Measured duration for the steady-state sweeps (paper-scale: 30 s)."""
    return 30.0 * scale
