"""Shared configuration for the benchmark harness.

Each benchmark regenerates one artifact of the paper's evaluation (Figures
3-8, the Theorem 1 configuration, and the §V-B2 overhead micro-benchmarks),
prints the series the figure plots next to the paper's reported values, and
asserts the qualitative shape.

``REPRO_BENCH_SCALE`` scales simulated durations: 1.0 (default) runs the
full-fidelity experiments; smaller values (e.g. 0.3) run faster
sanity-level sweeps with the same shapes.

``REPRO_BENCH_JOBS`` sets the worker-process count the figure sweeps fan
their columns across (default 1, i.e. serial — wall-clock numbers stay
comparable run to run).  Column results are deterministic per seed, so any
job count reproduces the same series.
"""

from __future__ import annotations

import os

import pytest


def _scale() -> float:
    try:
        value = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0
    return min(max(value, 0.05), 4.0)


def _jobs() -> int:
    try:
        value = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    except ValueError:
        return 1
    return min(max(value, 1), 64)


@pytest.fixture(scope="session")
def scale() -> float:
    return _scale()


@pytest.fixture(scope="session")
def jobs() -> int:
    """Sweep worker processes for the figure benchmarks."""
    return _jobs()


@pytest.fixture(scope="session")
def duration(scale: float) -> float:
    """Measured duration for the steady-state sweeps (paper-scale: 30 s)."""
    return 30.0 * scale
