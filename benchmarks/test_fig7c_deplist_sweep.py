"""Figure 7(c) — T-Cache efficacy and overhead vs dependency-list size.

Paper reading: for the retailer workload one dependency cuts inconsistency
to 56 % of the k = 0 baseline, two to 11 %, three to below 7 %; the social
network benefits less; the cache hit ratio shows no visible effect and the
database access rate stays flat.

(§V-B2 observes "the abort rate is negligible in all runs", which pins the
strategy to RETRY — see `repro.experiments.fig7_realistic`.)
"""

from __future__ import annotations

from repro.experiments import fig7_realistic
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 7c (amazon): k=1 -> 56%, k=2 -> 11%, k=3 -> <7% of baseline\n"
    "inconsistency; hit ratio flat; DB access rate flat; orkut benefits less"
)


def test_fig7c_deplist_sweep(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: fig7_realistic.run_deplist_sweep(duration=duration, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Figure 7c: dependency-list sweep"))
    print(PAPER_NOTES)

    by_key = {(row["workload"], row["deplist_max"]): row for row in rows}
    for workload in ("amazon", "orkut"):
        series = [by_key[(workload, k)]["inconsistency_ratio_pct"] for k in range(6)]
        # Strictly improving with k (within noise).
        for index in range(1, 6):
            assert series[index] < series[index - 1] * 1.1
        # Meaningful total reduction.
        assert series[5] < 0.45 * series[0]
        # Hit ratio unaffected (paper: "no visible effect").
        hits = [by_key[(workload, k)]["hit_ratio"] for k in range(6)]
        assert max(hits) - min(hits) < 0.05
        # Database load stays modest (RETRY read-throughs only).
        assert by_key[(workload, 5)]["db_rate_normed_pct"] < 130.0
    # The better-clustered workload benefits more.
    assert (
        by_key[("amazon", 3)]["vs_baseline_pct"]
        < by_key[("orkut", 3)]["vs_baseline_pct"]
    )
