"""Sensitivity sweeps — quantifying the paper's in-passing claims.

* §III: "Intuitively, dependency lists should be roughly the same size as
  the size of the workload's clusters" — detection must saturate once
  ``k >= cluster_size - 1``.
* The 20 % invalidation-loss pathology: T-Cache's advantage must hold
  across loss rates, including the clean (0 %) and catastrophic (80 %)
  ends.
* Update pressure: higher write rates raise conflict probability (more
  aborts) without breaking detection.
"""

from __future__ import annotations

from repro.experiments import sensitivity
from repro.experiments.report import format_table


def test_cluster_size_vs_deplist_bound(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: sensitivity.run_cluster_size_vs_k(duration=duration / 2, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Sensitivity: cluster size vs k"))
    print("§III: lists 'roughly the same size as the workload's clusters'")

    by_key = {(row["cluster_size"], row["deplist_max"]): row for row in rows}
    for cluster_size in (3, 5, 8):
        # Saturated region: k >= cluster_size - 1 detects (almost)
        # everything.
        saturated = [
            row["detection_pct"]
            for row in rows
            if row["cluster_size"] == cluster_size
            and row["deplist_max"] >= cluster_size - 1
        ]
        assert min(saturated) > 95.0
        # Under-provisioned lists leave a gap.
        starved = by_key[(cluster_size, 1)]["detection_pct"]
        if cluster_size > 3:
            assert starved < min(saturated)


def test_invalidation_loss_sweep(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: sensitivity.run_loss_sweep(duration=duration / 2, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Sensitivity: invalidation loss rate"))

    # Baseline inconsistency grows with loss.
    baseline = [row["baseline_inconsistency_pct"] for row in rows]
    assert baseline[0] < baseline[3] < baseline[-1] + 1e-9
    # T-Cache keeps committed inconsistency near zero at every loss rate
    # (perfect clusters + k=5: full detection).
    for row in rows:
        assert row["tcache_inconsistency_pct"] < 1.0


def test_update_pressure_sweep(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: sensitivity.run_update_pressure_sweep(duration=duration / 2, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Sensitivity: update pressure"))

    aborts = [row["abort_ratio_pct"] for row in rows]
    assert aborts[0] < aborts[-1]  # more writes, more (correct) aborts
    for row in rows:
        assert row["inconsistency_pct"] < 1.0  # detection holds throughout