"""Figure 6 — ABORT vs EVICT vs RETRY on the synthetic workload.

Paper reading (approximate clusters, 2000 objects, alpha = 1, k = 5): ABORT
"detects and aborts over 55 % of all inconsistent transactions that would
have been committed"; EVICT reduces the committed-inconsistent band to 28 %
of its ABORT value; RETRY to about 23 %, while also converting most aborts
back into commits.
"""

from __future__ import annotations

from repro.experiments import fig6_strategies
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 6: inconsistent band shrinks ABORT -> EVICT (28% of ABORT)\n"
    "-> RETRY (23% of ABORT); RETRY also converts aborts into commits"
)


def test_fig6_strategies(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: fig6_strategies.run(duration=duration, jobs=jobs), rounds=1, iterations=1
    )
    print()
    print(format_table(rows, title="Figure 6: strategy comparison (synthetic)"))
    print(PAPER_NOTES)

    table = {row["strategy"]: row for row in rows}
    assert table["EVICT"]["inconsistent_pct"] < 0.7 * table["ABORT"]["inconsistent_pct"]
    assert table["RETRY"]["inconsistent_pct"] < 0.7 * table["ABORT"]["inconsistent_pct"]
    assert table["RETRY"]["aborted_pct"] < table["EVICT"]["aborted_pct"]
    assert table["EVICT"]["aborted_pct"] < table["ABORT"]["aborted_pct"]
    assert (
        table["RETRY"]["consistent_pct"]
        > table["EVICT"]["consistent_pct"]
        > table["ABORT"]["consistent_pct"]
    )
