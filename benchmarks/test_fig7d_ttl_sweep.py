"""Figure 7(d) — the TTL baseline: bounded entry lifetimes.

Paper reading: "Limiting TTL has detrimental effects on cache hit ratio,
quickly increasing the database workload. By increasing database access rate
to more than twice its original load we only observe a reduction of
inconsistencies of about 10 %" — strictly dominated by T-Cache.

Scale note: the paper sweeps TTLs of 30-6400 s against its prototype; in
this simulated column lost invalidations are repaired by the next delivered
update (~2.5 s per object at the paper's rates), so the equivalent knee
sits at single-digit seconds. The sweep covers the same three regimes —
no effect, mild effect, and >=2x database load.
"""

from __future__ import annotations

from repro.experiments import fig7_realistic
from repro.experiments.report import format_table

PAPER_NOTES = (
    "paper Fig. 7d: TTL must push DB load past ~2x before inconsistency\n"
    "drops appreciably; T-Cache (Fig. 7c) reaches far lower inconsistency\n"
    "at a fraction of that cost"
)


def test_fig7d_ttl_sweep(benchmark, duration, jobs):
    rows = benchmark.pedantic(
        lambda: fig7_realistic.run_ttl_sweep(duration=duration, jobs=jobs),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, title="Figure 7d: TTL sweep"))
    print(PAPER_NOTES)

    for workload in ("amazon", "orkut"):
        series = [row for row in rows if row["workload"] == workload]
        baseline = series[0]
        assert baseline["ttl"] == "inf"
        shortest = series[-1]
        # Short TTLs do reduce inconsistency...
        assert (
            shortest["inconsistency_ratio_pct"]
            < 0.5 * baseline["inconsistency_ratio_pct"]
        )
        # ...but only by blowing up the database load and the hit ratio.
        assert shortest["db_rate_normed_pct"] > 200.0
        assert shortest["hit_ratio"] < baseline["hit_ratio"] - 0.15
        # Long TTLs accomplish nothing (staleness repairs itself first).
        long_ttl = next(row for row in series if row["ttl"] == 30.0)
        assert long_ttl["db_rate_normed_pct"] < 110.0
        assert (
            long_ttl["inconsistency_ratio_pct"]
            > 0.9 * baseline["inconsistency_ratio_pct"]
        )
