"""Ablation — why LRU pruning (§III-A / §V-A3).

The paper prunes dependency lists "using LRU" and credits the choice for
adaptivity: "the dependency list of an object o tends to include those
objects that are frequently accessed together with o. Dependencies in a new
cluster automatically push out dependencies that are now outside the
cluster." This ablation replaces LRU with two alternatives on the drifting-
cluster workload — where adaptivity is exactly what is being stressed — and
on the realistic retailer workload:

* ``newest-version`` — keep the entries with the largest versions (recency
  of *write*, not of co-access);
* ``random`` — deterministic arbitrary order (no information).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.deplist import PRUNING_POLICIES
from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.realistic import realistic_workload
from repro.experiments.report import format_table
from repro.experiments.runner import run_column
from repro.workloads.synthetic import DriftingClusterWorkload


def run_ablation(duration: float) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    drift = DriftingClusterWorkload(
        n_objects=1000, cluster_size=5, shift_interval=duration / 4
    )
    amazon = realistic_workload("amazon")
    for policy in PRUNING_POLICIES:
        for name, workload in (("drifting-clusters", drift), ("amazon", amazon)):
            config = ColumnConfig(
                seed=31,
                duration=duration,
                warmup=5.0,
                deplist_max=3,
                pruning_policy=policy,
                strategy=Strategy.ABORT,
            )
            result = run_column(config, workload)
            rows.append(
                {
                    "policy": policy,
                    "workload": name,
                    "detection_pct": round(100.0 * result.detection_ratio, 1),
                    "inconsistency_pct": round(
                        100.0 * result.inconsistency_ratio, 2
                    ),
                }
            )
    return rows


def test_ablation_pruning_policies(benchmark, duration):
    rows = benchmark.pedantic(lambda: run_ablation(duration), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: dependency-list pruning policy (k=3)"))
    print("paper §V-A3: LRU adapts dependency lists to the current cluster")

    table = {(row["policy"], row["workload"]): row for row in rows}
    for workload in ("drifting-clusters", "amazon"):
        lru = table[("lru", workload)]["detection_pct"]
        random_policy = table[("random", workload)]["detection_pct"]
        # LRU must not lose to the no-information baseline.
        assert lru >= random_policy - 3.0
    # On the drifting workload, LRU's adaptivity must show an edge over the
    # static version-based order.
    assert (
        table[("lru", "drifting-clusters")]["detection_pct"]
        >= table[("newest-version", "drifting-clusters")]["detection_pct"] - 3.0
    )
