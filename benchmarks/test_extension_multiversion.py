"""Extension — multiversion T-Cache (§VI, TxCache-style version selection).

Compares the RETRY strategy against the multiversion cache on the realistic
workloads. Both repair Equation 2 violations by read-through; the
multiversion cache additionally salvages Equation 1 violations by serving a
retained older version that passes the dependency checks — trading freshness
for commit rate, exactly the trade TxCache makes.

Measured caveat worth knowing: with *bounded* dependency lists the version-
selection check is best-effort like every other T-Cache check, so a slice of
the salvaged commits is stale-but-undetected; the abort rate collapses
(≈6x fewer) while the undetected-inconsistency band grows somewhat. With
unbounded lists the salvaged snapshots are provably consistent (the
Theorem 1 machinery applies to whatever version is served).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.realistic import realistic_workload
from repro.experiments.report import format_table
from repro.experiments.runner import run_column


def run_comparison(duration: float) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    base = ColumnConfig(seed=17, duration=duration, warmup=5.0, deplist_max=3)
    for name in ("amazon", "orkut"):
        workload = realistic_workload(name)
        retry = run_column(replace(base, strategy=Strategy.RETRY), workload)
        multi = run_column(
            replace(base, cache_kind=CacheKind.MULTIVERSION), workload
        )
        for label, result in (("RETRY", retry), ("MULTIVERSION", multi)):
            shares = result.class_shares()
            rows.append(
                {
                    "workload": name,
                    "cache": label,
                    "consistent_pct": round(100.0 * shares["consistent"], 2),
                    "inconsistent_pct": round(100.0 * shares["inconsistent"], 2),
                    "aborted_pct": round(
                        100.0
                        * (shares["aborted_necessary"] + shares["aborted_unnecessary"]),
                        2,
                    ),
                    "mv_serves": getattr(
                        result, "retries_resolved", 0
                    ),
                }
            )
    return rows


def test_extension_multiversion(benchmark, duration):
    rows = benchmark.pedantic(lambda: run_comparison(duration), rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Extension: RETRY vs multiversion T-Cache (k=3)"))
    print("§VI: multiversioning 'enables the cache to choose a version that")
    print("allows a transaction to commit' — the abort band collapses; with")
    print("bounded lists a slice of salvaged commits is stale-but-undetected")

    table = {(row["workload"], row["cache"]): row for row in rows}
    for workload in ("amazon", "orkut"):
        retry = table[(workload, "RETRY")]
        multi = table[(workload, "MULTIVERSION")]
        # Version selection must not pay for commits with inconsistency.
        assert multi["inconsistent_pct"] <= retry["inconsistent_pct"] * 1.5
        # And must reduce the abort rate.
        assert multi["aborted_pct"] <= retry["aborted_pct"] * 1.1
