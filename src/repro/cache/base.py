"""Cache storage and the consistency-unaware cache server.

The storage keeps, per key, the full :class:`~repro.types.VersionedValue`
shipped by the database — value, version, dependency list — because T-Cache
needs the extra two fields (§III-B: "the caches read from the database not
only the object's value, but also its version and the dependency list").

The :class:`CacheServer` here is the paper's baseline: it answers reads from
local storage, falls through to the database on misses, applies asynchronous
invalidations, and performs *no* consistency checking. It nevertheless speaks
the same transactional interface ``read(txn_id, key, last_op)`` so that the
experiment clients and the consistency monitor treat every cache variant
uniformly; for the baseline the transaction id only delimits the read set
reported to the monitor.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

from repro.errors import SimulationError
from repro.sim.core import Simulator

if TYPE_CHECKING:
    # Imported lazily to avoid a package-level import cycle: repro.db pulls
    # in repro.core (dependency lists), which pulls in this module.
    from repro.db.invalidation import InvalidationRecord
from repro.types import (
    Key,
    ReadOnlyTransactionRecord,
    ReadResult,
    TransactionOutcome,
    TxnId,
    VersionedValue,
)

__all__ = ["BackendReader", "CacheServer", "CacheStats", "CacheStorage"]


class BackendReader(Protocol):
    """What a cache needs from the database: lock-free single-entry reads."""

    def read_entry(self, key: Key) -> VersionedValue: ...


@dataclass(slots=True)
class CacheStats:
    """Counters every cache variant maintains."""

    reads: int = 0
    hits: int = 0
    misses: int = 0
    #: Re-reads performed by the RETRY strategy (also database accesses).
    retries: int = 0
    invalidations_received: int = 0
    invalidations_applied: int = 0
    #: Invalidations that arrived late (entry already newer) or for keys not
    #: currently cached.
    invalidations_ignored: int = 0
    ttl_expirations: int = 0
    capacity_evictions: int = 0
    #: Evictions performed by the EVICT / RETRY strategies.
    strategy_evictions: int = 0
    transactions_committed: int = 0
    transactions_aborted: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.reads if self.reads else 0.0

    @property
    def db_accesses(self) -> int:
        """Reads this cache pushed to the backend database."""
        return self.misses + self.retries


class CacheStorage:
    """Key -> versioned entry map with optional TTL and capacity LRU.

    The paper's experiments size the cache so "all objects in the workload
    fit in the cache"; capacity eviction exists because the EVICT/RETRY
    strategies and deployments beyond the paper need it, and is disabled by
    default.
    """

    def __init__(self, *, ttl: float | None = None, capacity: int | None = None) -> None:
        self._entries: OrderedDict[Key, tuple[VersionedValue, float]] = OrderedDict()
        self.ttl = ttl
        self.capacity = capacity
        self.stats = CacheStats()
        #: Telemetry handle installed by the owning CacheServer when a trace
        #: capture is active; storage has no simulator handle of its own, but
        #: every mutating call already receives ``now``.
        self._tracer = None

    def get(self, key: Key, now: float) -> VersionedValue | None:
        """The cached entry, or None when absent or expired."""
        slot = self._entries.get(key)
        if slot is None:
            return None
        if self.ttl is not None and now - slot[1] >= self.ttl:
            del self._entries[key]
            self.stats.ttl_expirations += 1
            if self._tracer is not None:
                self._tracer.emit(now, "cache", "evict_ttl", {"key": key})
                self._tracer.metrics.count("cache.ttl_expirations")
            return None
        if self.capacity is not None:
            # Recency order only drives capacity eviction; unbounded caches
            # (the paper's configuration) skip the bookkeeping.
            self._entries.move_to_end(key)
        return slot[0]

    def put(self, entry: VersionedValue, now: float) -> None:
        existing = self._entries.get(entry.key)
        if existing is not None and existing[0].version > entry.version:
            # A concurrent invalidation-and-refetch already installed a newer
            # version; never go backwards.
            return
        self._entries[entry.key] = (entry, now)
        if self.capacity is not None:
            self._entries.move_to_end(entry.key)
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                self.stats.capacity_evictions += 1
                if self._tracer is not None:
                    self._tracer.emit(
                        now, "cache", "evict_capacity", {"key": evicted_key}
                    )
                    self._tracer.metrics.count("cache.capacity_evictions")

    def invalidate(self, key: Key, version: int) -> bool:
        """Drop the entry if the cached copy is older than ``version``."""
        slot = self._entries.get(key)
        if slot is None:
            return False
        if slot[0].version >= version:
            return False
        del self._entries[key]
        return True

    def evict(self, key: Key) -> bool:
        """Unconditional removal (strategy evictions)."""
        return self._entries.pop(key, None) is not None

    def version_of(self, key: Key) -> int | None:
        slot = self._entries.get(key)
        return slot[0].version if slot else None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries


class CacheServer:
    """Consistency-unaware edge cache (the §II baseline).

    Subclasses (notably :class:`~repro.core.tcache.TCache`) override
    :meth:`_check_read` to add consistency enforcement.
    """

    def __init__(
        self,
        sim: Simulator,
        backend: BackendReader,
        *,
        ttl: float | None = None,
        capacity: int | None = None,
        name: str = "cache",
    ) -> None:
        self._sim = sim
        self._backend = backend
        #: Version namespace of the backend this cache reads from; ``None``
        #: for backends (test doubles) that don't declare one. Versions are
        #: only comparable within one namespace, so every dependency check
        #: this cache performs is implicitly keyed by ``(backend, version)``.
        self.backend_namespace: str | None = getattr(backend, "namespace", None)
        self.name = name
        self.storage = CacheStorage(ttl=ttl, capacity=capacity)
        tracer = sim._tracer
        if tracer is not None and tracer.wants("cache"):
            self.storage._tracer = tracer
        self.stats = self.storage.stats
        self._open_txns: dict[TxnId, ReadOnlyTransactionRecord] = {}
        self._txn_listeners: list[Callable[[ReadOnlyTransactionRecord], None]] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def add_transaction_listener(
        self, listener: Callable[[ReadOnlyTransactionRecord], None]
    ) -> None:
        """Observer for finished read-only transactions (the monitor)."""
        self._txn_listeners.append(listener)

    def handle_invalidation(self, record: InvalidationRecord) -> None:
        """Invalidation upcall registered with the database (§IV).

        In a routed backend tier each cache subscribes to its own backend's
        stream only; a record stamped with a foreign version namespace means
        the wiring crossed backends, and honouring it would compare
        incomparable versions — so it is rejected loudly.
        """
        namespace = getattr(record, "namespace", None)
        if (
            self.backend_namespace is not None
            and namespace is not None
            and namespace != self.backend_namespace
        ):
            raise SimulationError(
                f"cache {self.name!r} (backend namespace "
                f"{self.backend_namespace!r}) received an invalidation from "
                f"namespace {namespace!r}"
            )
        self.stats.invalidations_received += 1
        applied = self.storage.invalidate(record.key, record.version)
        if applied:
            self.stats.invalidations_applied += 1
        else:
            self.stats.invalidations_ignored += 1
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("cache"):
            tracer.emit(
                self._sim.now,
                "cache",
                "invalidation",
                {
                    "cache": self.name,
                    "key": record.key,
                    "version": record.version,
                    "applied": applied,
                },
            )
            tracer.metrics.count(
                "cache.invalidations_applied"
                if applied
                else "cache.invalidations_ignored"
            )

    # ------------------------------------------------------------------
    # The read path
    # ------------------------------------------------------------------

    def read(self, txn_id: TxnId, key: Key, last_op: bool = False) -> ReadResult:
        """Serve one transactional read.

        The baseline never aborts; T-Cache may raise
        :class:`~repro.errors.InconsistencyDetected` from its override of
        :meth:`_check_read`.
        """
        stats = self.stats
        stats.reads += 1
        # storage.get(key, now), inlined: this is the hottest loop of every
        # experiment, and the hit path is a single dict probe when neither
        # TTL nor capacity bookkeeping applies (the paper's configuration).
        storage = self.storage
        slot = storage._entries.get(key)
        entry = None
        if slot is not None:
            ttl = storage.ttl
            if ttl is not None and self._sim.now - slot[1] >= ttl:
                del storage._entries[key]
                stats.ttl_expirations += 1
                if storage._tracer is not None:
                    storage._tracer.emit(
                        self._sim.now, "cache", "evict_ttl", {"key": key}
                    )
                    storage._tracer.metrics.count("cache.ttl_expirations")
            else:
                if storage.capacity is not None:
                    storage._entries.move_to_end(key)
                entry = slot[0]
        if entry is None:
            entry = self._fetch(key)
            cache_miss = True
        else:
            stats.hits += 1
            cache_miss = False

        open_txns = self._open_txns
        record = open_txns.get(txn_id)
        if record is None:
            record = ReadOnlyTransactionRecord(txn_id=txn_id)
            open_txns[txn_id] = record

        entry, retried = self._check_read(txn_id, record, entry)
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("cache"):
            tracer.emit(
                self._sim.now,
                "cache",
                "serve",
                {
                    "cache": self.name,
                    "key": key,
                    "version": entry.version,
                    "hit": not cache_miss,
                    "retried": retried,
                },
            )
            tracer.metrics.count("cache.hits" if not cache_miss else "cache.misses")
        reads = record.reads
        previous = reads.get(key)
        if previous is not None and previous != entry.version:
            record.non_repeatable = True
        reads[key] = entry.version
        if last_op:
            self._finish(txn_id, TransactionOutcome.COMMITTED)
        return ReadResult(
            key=key,
            value=entry.value,
            version=entry.version,
            cache_miss=cache_miss,
            retried=retried,
        )

    def abort_transaction(self, txn_id: TxnId) -> None:
        """Client-initiated abort of an open transaction."""
        if txn_id in self._open_txns:
            self._finish(txn_id, TransactionOutcome.ABORTED)

    @property
    def open_transactions(self) -> int:
        return len(self._open_txns)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def _check_read(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        entry: VersionedValue,
    ) -> tuple[VersionedValue, bool]:
        """Consistency hook; the baseline accepts everything unchanged.

        Returns the (possibly replaced) entry and whether a read-through
        happened.
        """
        return entry, False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fetch(self, key: Key) -> VersionedValue:
        self.stats.misses += 1
        entry = self._backend.read_entry(key)
        self.storage.put(entry, self._sim.now)
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("cache"):
            tracer.emit(
                self._sim.now,
                "cache",
                "fetch",
                {"cache": self.name, "key": key, "version": entry.version},
            )
            tracer.metrics.count("cache.fetches")
        return entry

    def _finish(self, txn_id: TxnId, outcome: TransactionOutcome) -> None:
        record = self._open_txns.pop(txn_id)
        record.outcome = outcome
        record.finish_time = self._sim.now
        if outcome is TransactionOutcome.COMMITTED:
            self.stats.transactions_committed += 1
        else:
            self.stats.transactions_aborted += 1
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("cache"):
            tracer.emit(
                record.finish_time,
                "cache",
                "txn_finish",
                {
                    "cache": self.name,
                    "txn": txn_id,
                    "outcome": outcome.name,
                    "reads": len(record.reads),
                },
            )
            tracer.metrics.count(f"cache.txn_{outcome.name.lower()}")
        for listener in self._txn_listeners:
            listener(record)
