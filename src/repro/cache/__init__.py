"""Edge cache servers.

* :mod:`repro.cache.base` — storage and the consistency-unaware cache server
  (§II's baseline): single-entry reads, asynchronous invalidation upcalls,
  optional capacity eviction.
* :mod:`repro.cache.ttl` — the bounded-lifetime baseline of §V-B2 (Fig. 7d):
  entries expire after a time-to-live even if no invalidation arrived.

The transactional cache itself lives in :mod:`repro.core.tcache`; it reuses
the storage and reporting machinery defined here.
"""

from repro.cache.base import CacheServer, CacheStats, CacheStorage
from repro.cache.ttl import TTLCache

__all__ = ["CacheServer", "CacheStats", "CacheStorage", "TTLCache"]
