"""The cache-variant vocabulary shared by configs and scenario specs.

Lives in the cache layer (not the experiment harness) so that both the
legacy single-column :class:`~repro.experiments.config.ColumnConfig` and the
multi-edge :class:`~repro.scenario.spec.EdgeSpec` can name a cache variant
without importing each other.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["CacheKind"]


class CacheKind(Enum):
    """Which cache server fronts an edge."""

    TCACHE = "tcache"
    PLAIN = "plain"
    TTL = "ttl"
    #: §VI extension: T-Cache with per-object version history (TxCache-style
    #: multiversioning) that serves older versions instead of aborting.
    MULTIVERSION = "multiversion"
