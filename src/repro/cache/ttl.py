"""The bounded-lifetime (TTL) baseline of §V-B2.

"A simple approach in which we limited the life span (Time To Live, TTL) of
cache entries. Here inconsistencies are not detected, but their probability
of being witnessed is reduced by having the cache evict entries after a
certain period even if the database did not indicate they are invalid."

Figure 7d sweeps the TTL and shows the trade-off this class embodies: a TTL
short enough to matter hammers the backend with re-fetches, and even at more
than twice the database load it removes only ~10 % of inconsistencies.
"""

from __future__ import annotations

from repro.cache.base import BackendReader, CacheServer
from repro.errors import ConfigurationError
from repro.sim.core import Simulator

__all__ = ["TTLCache"]


class TTLCache(CacheServer):
    """Consistency-unaware cache whose entries expire after ``ttl`` seconds."""

    def __init__(
        self,
        sim: Simulator,
        backend: BackendReader,
        *,
        ttl: float,
        capacity: int | None = None,
        name: str = "ttl-cache",
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be positive, got {ttl}")
        super().__init__(sim, backend, ttl=ttl, capacity=capacity, name=name)

    @property
    def ttl(self) -> float:
        return self.storage.ttl
