"""Workload protocol and key-naming helpers.

A workload produces, on demand, the access set of one transaction — the same
generator drives both update transactions (against the database) and
read-only transactions (against the cache), as in §IV where both transaction
types "access 5 objects per transaction" from the same distribution.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.types import Key

__all__ = ["Workload", "key_for", "index_of"]

_KEY_PREFIX = "o"
_KEY_WIDTH = 6


def key_for(index: int) -> Key:
    """Stable object key for a numeric object index (``7 -> 'o000007'``)."""
    return f"{_KEY_PREFIX}{index:0{_KEY_WIDTH}d}"


def index_of(key: Key) -> int:
    """Inverse of :func:`key_for`."""
    return int(key[len(_KEY_PREFIX):])


@runtime_checkable
class Workload(Protocol):
    """What the clients and the experiment runner need from a workload."""

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        """The keys one transaction accesses, in access order.

        ``now`` is the simulation time; time-varying workloads (cluster
        formation, drift) use it to select the active cluster structure.
        """
        ...

    def all_keys(self) -> Sequence[Key]:
        """Every key the workload can touch, for the initial database load."""
        ...
