"""Quantitative workload characterisation.

T-Cache's efficacy is a function of workload structure — clustering of
access sets, popularity skew, transaction width. This module measures those
properties directly from a workload generator, so experiments can report
*why* a workload behaves the way it does and tests can assert that the
synthetic stand-ins land in the intended regimes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.base import Workload

__all__ = ["WorkloadProfile", "profile_workload", "pair_affinity"]


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Empirical statistics of a workload's access sets."""

    samples: int
    #: Mean/min/max number of distinct keys per transaction.
    mean_txn_size: float
    min_txn_size: int
    max_txn_size: int
    #: Fraction of the key universe ever touched.
    coverage: float
    #: Gini coefficient of per-key access counts (0 = uniform popularity).
    popularity_gini: float
    #: Mean, over sampled transactions, of the probability that a uniformly
    #: chosen *pair* of accessed keys co-occurred in an earlier sampled
    #: transaction — the co-access recurrence that dependency lists exploit.
    pair_recurrence: float

    def as_row(self) -> dict[str, object]:
        return {
            "samples": self.samples,
            "mean_txn_size": round(self.mean_txn_size, 2),
            "coverage": round(self.coverage, 3),
            "popularity_gini": round(self.popularity_gini, 3),
            "pair_recurrence": round(self.pair_recurrence, 3),
        }


def profile_workload(
    workload: Workload,
    *,
    samples: int = 2000,
    rng: np.random.Generator | None = None,
    now: float = 0.0,
) -> WorkloadProfile:
    """Draw ``samples`` transactions and summarise their structure."""
    if samples < 2:
        raise ConfigurationError(f"need at least 2 samples, got {samples}")
    rng = rng if rng is not None else np.random.default_rng(0)

    key_counts: Counter = Counter()
    seen_pairs: set[tuple[str, str]] = set()
    sizes: list[int] = []
    recurrence_hits = 0
    recurrence_trials = 0

    for _ in range(samples):
        accesses = list(dict.fromkeys(workload.access_set(rng, now)))
        sizes.append(len(accesses))
        key_counts.update(accesses)
        pairs = {
            (a, b) if a < b else (b, a)
            for i, a in enumerate(accesses)
            for b in accesses[i + 1:]
        }
        for pair in pairs:
            recurrence_trials += 1
            if pair in seen_pairs:
                recurrence_hits += 1
        seen_pairs.update(pairs)

    universe = len(workload.all_keys())
    return WorkloadProfile(
        samples=samples,
        mean_txn_size=float(np.mean(sizes)),
        min_txn_size=min(sizes),
        max_txn_size=max(sizes),
        coverage=len(key_counts) / universe if universe else 0.0,
        popularity_gini=_gini(key_counts, universe),
        pair_recurrence=(
            recurrence_hits / recurrence_trials if recurrence_trials else 0.0
        ),
    )


def pair_affinity(
    workload: Workload,
    *,
    samples: int = 2000,
    rng: np.random.Generator | None = None,
    top: int = 10,
) -> list[tuple[tuple[str, str], int]]:
    """The most frequently co-accessed key pairs, with counts."""
    rng = rng if rng is not None else np.random.default_rng(0)
    pair_counts: Counter = Counter()
    for _ in range(samples):
        accesses = list(dict.fromkeys(workload.access_set(rng, 0.0)))
        for i, a in enumerate(accesses):
            for b in accesses[i + 1:]:
                pair_counts[(a, b) if a < b else (b, a)] += 1
    return pair_counts.most_common(top)


def _gini(counts: Counter, universe: int) -> float:
    """Gini coefficient over the whole universe (untouched keys count 0)."""
    values = np.zeros(universe, dtype=float)
    observed = np.fromiter(counts.values(), dtype=float, count=len(counts))
    values[: len(observed)] = np.sort(observed)
    values.sort()
    if values.sum() == 0:
        return 0.0
    n = len(values)
    index = np.arange(1, n + 1)
    return float((2.0 * (index * values).sum() / (n * values.sum())) - (n + 1) / n)
