"""Workload generators.

Synthetic workloads (§V-A1): perfectly clustered accesses, approximately
clustered accesses driven by a bounded Pareto distribution, uniform accesses,
plus the time-varying variants used by the convergence experiments (a sudden
cluster formation, Fig. 4, and slowly drifting clusters, Fig. 5).

Realistic workloads (§V-B1): graph topologies standing in for the Amazon
co-purchase and Orkut friendship snapshots, down-sampled by random walks with
15 % restart, with transactions generated as 5-node random walks.
"""

from repro.workloads.base import Workload, key_for, index_of
from repro.workloads.codec import workload_from_dict, workload_to_dict
from repro.workloads.graphs import (
    GraphStats,
    amazon_like_graph,
    orkut_like_graph,
    topology_stats,
)
from repro.workloads.sampling import random_walk_sample
from repro.workloads.stats import WorkloadProfile, pair_affinity, profile_workload
from repro.workloads.synthetic import (
    DriftingClusterWorkload,
    MixtureWorkload,
    OffsetWorkload,
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    PhaseSwitchWorkload,
    UniformWorkload,
)
from repro.workloads.trace import TraceRecorder, TraceWorkload, load_trace, save_trace
from repro.workloads.walker import RandomWalkWorkload

__all__ = [
    "DriftingClusterWorkload",
    "GraphStats",
    "MixtureWorkload",
    "OffsetWorkload",
    "ParetoClusterWorkload",
    "PerfectClusterWorkload",
    "PhaseSwitchWorkload",
    "RandomWalkWorkload",
    "TraceRecorder",
    "TraceWorkload",
    "UniformWorkload",
    "Workload",
    "WorkloadProfile",
    "amazon_like_graph",
    "index_of",
    "key_for",
    "load_trace",
    "orkut_like_graph",
    "pair_affinity",
    "profile_workload",
    "random_walk_sample",
    "save_trace",
    "topology_stats",
    "workload_from_dict",
    "workload_to_dict",
]
