"""Random-walk down-sampling of large topologies (§V-B1).

"We down-sample both graphs to 1000 nodes. We use a technique based on
random walks that maintains important properties of the original graph [16],
specifically clustering ... We start by choosing a node uniformly at random
and start a random walk from that location. In every step, with probability
15%, the walk reverts back to the first node and starts again. This is
repeated until the target number of nodes have been visited."

The standard escape hatch from Leskovec & Faloutsos applies: if the walk
stagnates inside a small region (no new node for a long stretch), it restarts
from a fresh uniformly chosen node, so the sampler terminates on any graph.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError

__all__ = ["random_walk_sample"]


def random_walk_sample(
    graph: nx.Graph,
    target_nodes: int,
    rng: np.random.Generator,
    *,
    restart_probability: float = 0.15,
    stall_limit: int = 10_000,
) -> nx.Graph:
    """Induced subgraph on ``target_nodes`` nodes visited by a random walk.

    ``restart_probability`` is the per-step chance of reverting to the walk's
    anchor node (the paper's 15 %). ``stall_limit`` bounds the number of
    consecutive steps without discovering a new node before the anchor is
    re-drawn uniformly — the anti-stagnation rule of [16].
    """
    if target_nodes < 1:
        raise ConfigurationError(f"target_nodes must be positive, got {target_nodes}")
    if graph.number_of_nodes() < target_nodes:
        raise ConfigurationError(
            f"graph has {graph.number_of_nodes()} nodes, cannot sample {target_nodes}"
        )
    if not 0.0 <= restart_probability < 1.0:
        raise ConfigurationError(
            f"restart_probability must be in [0, 1), got {restart_probability}"
        )

    nodes = list(graph.nodes())
    anchor = nodes[int(rng.integers(0, len(nodes)))]
    current = anchor
    visited: set = {anchor}
    stalled = 0

    while len(visited) < target_nodes:
        if stalled >= stall_limit:
            anchor = nodes[int(rng.integers(0, len(nodes)))]
            current = anchor
            stalled = 0
            if anchor not in visited:
                visited.add(anchor)
                continue
        if rng.random() < restart_probability:
            current = anchor
            continue
        neighbors = list(graph.neighbors(current))
        if not neighbors:
            # Isolated node: re-anchor immediately.
            stalled = stall_limit
            continue
        current = neighbors[int(rng.integers(0, len(neighbors)))]
        if current in visited:
            stalled += 1
        else:
            visited.add(current)
            stalled = 0

    sample = graph.subgraph(visited).copy()
    sample.graph["name"] = f"{graph.graph.get('name', 'graph')}-sample{target_nodes}"
    return sample
