"""Synthetic workloads (§V-A1) and their time-varying variants.

The basic construction uses ``n_objects`` objects divided into clusters of
``cluster_size`` (paper: 2000 objects, clusters of 5). Two static families:

* **perfect clustering** — each transaction picks one cluster uniformly and
  draws all its accesses (with repetition) inside that cluster;
* **approximate clustering** — each access is the cluster head plus a
  bounded-Pareto offset, wrapping around the object range, so small Pareto
  ``alpha`` degrades towards uniform access and large ``alpha`` approaches
  perfect clustering (Fig. 3 sweeps ``alpha`` from 1/32 to 4).

Two dynamic wrappers reproduce the convergence experiments:

* :class:`PhaseSwitchWorkload` — uniform accesses until a switch time, then
  perfectly clustered (Fig. 4, switch at t=58 s);
* :class:`DriftingClusterWorkload` — perfectly clustered, but the cluster
  boundaries shift by one object every ``shift_interval`` seconds, wrapping
  at the end of the range (Fig. 5, shift every 3 minutes).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import BoundedPareto
from repro.types import Key
from repro.workloads.base import index_of, key_for

__all__ = [
    "PerfectClusterWorkload",
    "ParetoClusterWorkload",
    "UniformWorkload",
    "PhaseSwitchWorkload",
    "DriftingClusterWorkload",
    "MixtureWorkload",
    "OffsetWorkload",
]


class _SyntheticBase:
    """Shared validation and key universe for the synthetic families."""

    def __init__(self, n_objects: int, txn_size: int) -> None:
        if n_objects < 1:
            raise ConfigurationError(f"n_objects must be positive, got {n_objects}")
        if txn_size < 1:
            raise ConfigurationError(f"txn_size must be positive, got {txn_size}")
        self.n_objects = n_objects
        self.txn_size = txn_size
        self._keys = [key_for(i) for i in range(n_objects)]

    def all_keys(self) -> Sequence[Key]:
        return self._keys


class UniformWorkload(_SyntheticBase):
    """Every access uniform over the whole object range (no clustering)."""

    def __init__(self, n_objects: int = 2000, txn_size: int = 5) -> None:
        super().__init__(n_objects, txn_size)

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        indices = rng.integers(0, self.n_objects, size=self.txn_size)
        return [self._keys[i] for i in indices]


class PerfectClusterWorkload(_SyntheticBase):
    """Accesses fully contained in one uniformly chosen cluster.

    "Clustering is perfect and each transaction chooses a single cluster and
    chooses 5 times with repetitions within this cluster."
    """

    def __init__(
        self, n_objects: int = 2000, cluster_size: int = 5, txn_size: int = 5
    ) -> None:
        super().__init__(n_objects, txn_size)
        if cluster_size < 1 or n_objects % cluster_size:
            raise ConfigurationError(
                f"cluster_size {cluster_size} must divide n_objects {n_objects}"
            )
        self.cluster_size = cluster_size
        self.n_clusters = n_objects // cluster_size

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        head = int(rng.integers(0, self.n_clusters)) * self.cluster_size
        offsets = rng.integers(0, self.cluster_size, size=self.txn_size)
        return [self._keys[head + int(o)] for o in offsets]


class ParetoClusterWorkload(_SyntheticBase):
    """Approximately clustered accesses via a bounded Pareto offset.

    "Each object is chosen using a bounded Pareto distribution starting at
    the head of its cluster i (a product of 5). If the Pareto variable plus
    the offset results in a number outside the range (i.e., larger than
    1999), the count wraps back to 0."
    """

    def __init__(
        self,
        n_objects: int = 2000,
        cluster_size: int = 5,
        alpha: float = 1.0,
        txn_size: int = 5,
    ) -> None:
        super().__init__(n_objects, txn_size)
        if cluster_size < 1 or n_objects % cluster_size:
            raise ConfigurationError(
                f"cluster_size {cluster_size} must divide n_objects {n_objects}"
            )
        self.cluster_size = cluster_size
        self.n_clusters = n_objects // cluster_size
        self.alpha = alpha
        self._pareto = BoundedPareto(alpha, low=1.0, high=float(n_objects))

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        head = int(rng.integers(0, self.n_clusters)) * self.cluster_size
        accesses = []
        for _ in range(self.txn_size):
            offset = self._pareto.sample_offset(rng)
            accesses.append(self._keys[(head + offset) % self.n_objects])
        return accesses


class PhaseSwitchWorkload:
    """Delegates to one workload before ``switch_time`` and another after.

    Fig. 4 uses ``PhaseSwitchWorkload(UniformWorkload(1000),
    PerfectClusterWorkload(1000), switch_time=58.0)``.
    """

    def __init__(self, before, after, switch_time: float) -> None:
        before_keys = list(before.all_keys())
        after_keys = list(after.all_keys())
        if set(before_keys) != set(after_keys):
            raise ConfigurationError(
                "phase workloads must share one key universe "
                f"({len(before_keys)} vs {len(after_keys)} keys)"
            )
        self.before = before
        self.after = after
        self.switch_time = switch_time

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        active = self.before if now < self.switch_time else self.after
        return active.access_set(rng, now)

    def all_keys(self) -> Sequence[Key]:
        return self.before.all_keys()


class OffsetWorkload:
    """Shifts every key of an inner workload by a fixed object offset.

    The multi-edge scenarios use this to give each edge region its own
    disjoint slice of the key space: ``OffsetWorkload(inner, offset=2000)``
    maps the inner workload's ``o000000..`` universe onto ``o002000..``.
    """

    def __init__(self, inner, offset: int) -> None:
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        self.inner = inner
        self.offset = offset
        self._keys = [key_for(index_of(key) + offset) for key in inner.all_keys()]
        self._mapping = dict(zip(inner.all_keys(), self._keys))

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        return [self._mapping[key] for key in self.inner.access_set(rng, now)]

    def all_keys(self) -> Sequence[Key]:
        return self._keys


class MixtureWorkload:
    """Chooses one of several workloads per transaction, by weight.

    Models client populations whose traffic mixes distributions — e.g. a
    geo edge whose transactions are mostly local but occasionally touch a
    globally shared segment. The choice consumes one draw from the client's
    random stream per transaction; each component keeps its own key
    universe, and ``all_keys`` is their order-preserving union.
    """

    def __init__(self, components: Sequence[tuple[float, object]]) -> None:
        if not components:
            raise ConfigurationError("MixtureWorkload needs at least one component")
        weights = [float(weight) for weight, _ in components]
        if any(weight < 0 for weight in weights) or sum(weights) <= 0:
            raise ConfigurationError(
                f"mixture weights must be >= 0 with a positive sum, got {weights}"
            )
        total = sum(weights)
        self.components = [
            (weight / total, workload)
            for weight, (_, workload) in zip(weights, components)
        ]
        keys: dict[Key, None] = {}
        for _, workload in self.components:
            for key in workload.all_keys():
                keys.setdefault(key)
        self._keys = list(keys)

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        draw = rng.random()
        cumulative = 0.0
        for weight, workload in self.components:
            cumulative += weight
            if draw < cumulative:
                return workload.access_set(rng, now)
        return self.components[-1][1].access_set(rng, now)

    def all_keys(self) -> Sequence[Key]:
        return self._keys


class DriftingClusterWorkload(_SyntheticBase):
    """Perfect clusters whose boundaries shift by one every interval.

    "Every 3 minutes the cluster structure shifts by 1 (0-4, 5-9, 10-14 ->
    1-4(sic), 5-10, 11-15 ...), and wrapping back to zero after 1999."
    After ``s`` shifts, cluster ``j`` covers indices
    ``(j*cluster_size + s) mod n`` through ``(j*cluster_size + s +
    cluster_size - 1) mod n``.
    """

    def __init__(
        self,
        n_objects: int = 2000,
        cluster_size: int = 5,
        shift_interval: float = 180.0,
        txn_size: int = 5,
    ) -> None:
        super().__init__(n_objects, txn_size)
        if cluster_size < 1 or n_objects % cluster_size:
            raise ConfigurationError(
                f"cluster_size {cluster_size} must divide n_objects {n_objects}"
            )
        if shift_interval <= 0:
            raise ConfigurationError(
                f"shift_interval must be positive, got {shift_interval}"
            )
        self.cluster_size = cluster_size
        self.n_clusters = n_objects // cluster_size
        self.shift_interval = shift_interval

    def shift_at(self, now: float) -> int:
        return int(now / self.shift_interval)

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        shift = self.shift_at(now)
        head = int(rng.integers(0, self.n_clusters)) * self.cluster_size + shift
        offsets = rng.integers(0, self.cluster_size, size=self.txn_size)
        return [self._keys[(head + int(o)) % self.n_objects] for o in offsets]
