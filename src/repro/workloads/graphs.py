"""Stand-in topologies for the paper's Amazon and Orkut snapshots (§V-B1).

The paper builds workloads from two real graphs: Amazon's 2003 product
co-purchase snapshot [15] (~260k nodes) and Orkut's 2006 friendship snapshot
[21] (~3M nodes). Neither dataset is available in this offline environment,
so we synthesize parents with the properties the experiment actually
exercises, then apply the paper's own random-walk down-sampling unchanged
(:mod:`repro.workloads.sampling`).

What matters for T-Cache on these workloads is *co-update locality*: an
inconsistency is detectable when the object a transaction reads stale was
recently co-written with an object it reads fresh, which happens when
random walks revisit the same small neighbourhood. That is governed by
community structure:

* **Amazon-like** — co-purchase graphs are built from shopping sessions,
  which yields many small, dense product communities. We use a relaxed
  caveman graph (cliques of 8, 12 % of edges rewired): mean local
  clustering ≈ 0.6, like the original snapshot's strongly clustered
  structure, "the Amazon topology more so than the Orkut one".
* **Orkut-like** — friendship communities are larger and fuzzier. We use a
  Gaussian random partition graph (mean community 18, p_in = 0.4,
  p_out = 0.003): visibly clustered but an order of magnitude weaker, and
  denser, matching the paper's description of Fig. 7(b).

With dependency lists of length 3 these stand-ins reproduce the paper's
headline detection ratios (≈70 % Amazon, ≈43 % Orkut) and the relative
EVICT/RETRY improvements, which is the validation that the substitution
preserves the relevant behaviour. Known divergence: degree distributions
here are more homogeneous than the real snapshots' power laws; T-Cache is
insensitive to that (dependencies arise "from the topology of the object
graph", §IV, via co-access locality, not from degree tails).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError

__all__ = ["amazon_like_graph", "orkut_like_graph", "topology_stats", "GraphStats"]

#: Community sizes chosen so 5-node walks usually stay inside one community.
_AMAZON_CLIQUE = 8
_AMAZON_REWIRE = 0.12
_ORKUT_COMMUNITY_MEAN = 18
_ORKUT_COMMUNITY_SHAPE = 6
_ORKUT_P_IN = 0.4
_ORKUT_P_OUT = 0.003


@dataclass(frozen=True, slots=True)
class GraphStats:
    """Topology statistics reported next to Fig. 7(a)/(b)."""

    nodes: int
    edges: int
    mean_degree: float
    max_degree: int
    #: Average local clustering coefficient — the headline difference
    #: between the two stand-ins.
    mean_clustering: float
    connected: bool
    components: int

    def as_row(self) -> dict[str, object]:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "mean_degree": round(self.mean_degree, 2),
            "max_degree": self.max_degree,
            "mean_clustering": round(self.mean_clustering, 3),
            "connected": self.connected,
            "components": self.components,
        }


def amazon_like_graph(n_nodes: int = 4000, seed: int = 1) -> nx.Graph:
    """A product-affinity-like parent graph: small dense communities.

    Built as a relaxed caveman graph of ``n_nodes // 8`` cliques of 8 with
    12 % of edges rewired across cliques — strongly clustered yet connected
    enough for random-walk sampling and transaction walks to traverse it.
    """
    if n_nodes < 2 * _AMAZON_CLIQUE:
        raise ConfigurationError(f"need at least {2 * _AMAZON_CLIQUE} nodes, got {n_nodes}")
    cliques = n_nodes // _AMAZON_CLIQUE
    graph = nx.relaxed_caveman_graph(cliques, _AMAZON_CLIQUE, _AMAZON_REWIRE, seed=seed)
    graph.graph["name"] = "amazon-like"
    return graph


def orkut_like_graph(n_nodes: int = 4000, seed: int = 2) -> nx.Graph:
    """A friendship-like parent graph: larger, fuzzier communities.

    Built as a Gaussian random partition graph: community sizes drawn around
    18, intra-community edge probability 0.4, inter-community 0.003 — denser
    and an order of magnitude less clustered than the Amazon stand-in,
    matching the relative structure the paper describes.
    """
    if n_nodes < 2 * _ORKUT_COMMUNITY_MEAN:
        raise ConfigurationError(
            f"need at least {2 * _ORKUT_COMMUNITY_MEAN} nodes, got {n_nodes}"
        )
    graph = nx.gaussian_random_partition_graph(
        n_nodes,
        _ORKUT_COMMUNITY_MEAN,
        _ORKUT_COMMUNITY_SHAPE,
        _ORKUT_P_IN,
        _ORKUT_P_OUT,
        seed=seed,
    )
    graph.graph["name"] = "orkut-like"
    return graph


def topology_stats(graph: nx.Graph) -> GraphStats:
    """Summary statistics for a topology (used by tests and Fig. 7ab)."""
    degrees = [degree for _, degree in graph.degree()]
    components = nx.number_connected_components(graph)
    return GraphStats(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        mean_degree=sum(degrees) / len(degrees) if degrees else 0.0,
        max_degree=max(degrees) if degrees else 0,
        mean_clustering=nx.average_clustering(graph),
        connected=components == 1,
        components=components,
    )
