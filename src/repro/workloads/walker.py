"""Random-walk transaction generation over a topology (§V-B1).

"Each transaction starts by picking a node uniformly at random and takes 5
steps of a random walk. The nodes visited by the random walk are the objects
the transaction accesses." — transactions therefore access objects that are
topologically close, which is exactly the clustering T-Cache exploits.

The walk takes exactly ``txn_size - 1`` steps from a uniformly chosen start
node, so a transaction *visits* ``txn_size`` nodes; revisits collapse, which
means the distinct access set is often smaller than ``txn_size`` — exactly as
in the paper, where a 5-object transaction is the trace of a 5-node walk,
not 5 independent draws. This keeps the access sets tight around the start
node's neighbourhood, which is what makes short dependency lists effective.
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx
import numpy as np

from repro.errors import ConfigurationError
from repro.types import Key

__all__ = ["RandomWalkWorkload", "node_key"]


def node_key(node: object) -> Key:
    """Stable object key for a graph node."""
    return f"n{node}"


class RandomWalkWorkload:
    """Transactions as the trace of a short random walk over a topology."""

    def __init__(self, graph: nx.Graph, txn_size: int = 5) -> None:
        if graph.number_of_nodes() == 0:
            raise ConfigurationError("workload graph is empty")
        if txn_size < 1:
            raise ConfigurationError(f"txn_size must be positive, got {txn_size}")
        self.graph = graph
        self.txn_size = txn_size
        self._nodes = list(graph.nodes())
        self._neighbors = {node: list(graph.neighbors(node)) for node in self._nodes}
        self._keys = [node_key(node) for node in self._nodes]

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        start = self._nodes[int(rng.integers(0, len(self._nodes)))]
        visited: dict[object, None] = {start: None}
        current = start
        for _ in range(self.txn_size - 1):
            neighbors = self._neighbors[current]
            if not neighbors:
                break
            current = neighbors[int(rng.integers(0, len(neighbors)))]
            visited.setdefault(current, None)
        return [node_key(node) for node in visited]

    def all_keys(self) -> Sequence[Key]:
        return self._keys
