"""Workload trace recording and replay.

Real deployments tune T-Cache against production traces (§III: "we require
the developer to tune the length so that the frequency of errors is reduced
to an acceptable level"). This module provides the tooling for that loop:

* :class:`TraceRecorder` wraps any workload and records every access set it
  produces (with the timestamp of the request);
* :class:`TraceWorkload` replays a recorded trace verbatim — across
  processes too, via the JSON-lines serialisation — so different cache
  configurations can be compared on *identical* access sequences rather
  than merely identically-distributed ones.

Replay semantics: accesses are consumed in recording order; ``cycle=True``
wraps around at the end (useful when the replayed run is longer than the
recording).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.types import Key
from repro.workloads.base import Workload

__all__ = ["TraceRecorder", "TraceWorkload", "load_trace", "save_trace"]


class TraceRecorder:
    """A pass-through workload that records every access set it hands out."""

    def __init__(self, inner: Workload) -> None:
        self._inner = inner
        self.records: list[tuple[float, list[Key]]] = []

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        accesses = self._inner.access_set(rng, now)
        self.records.append((now, list(accesses)))
        return accesses

    def all_keys(self) -> Sequence[Key]:
        return self._inner.all_keys()

    def trace(self) -> "TraceWorkload":
        """Freeze the recording into a replayable workload."""
        return TraceWorkload(
            [accesses for _, accesses in self.records],
            all_keys=list(self._inner.all_keys()),
        )


class TraceWorkload:
    """Replays a fixed sequence of access sets."""

    def __init__(
        self,
        access_sets: Iterable[Sequence[Key]],
        *,
        all_keys: Sequence[Key] | None = None,
        cycle: bool = True,
    ) -> None:
        self._sets = [list(accesses) for accesses in access_sets]
        if not self._sets:
            raise ConfigurationError("trace is empty")
        if all_keys is None:
            seen: dict[Key, None] = {}
            for accesses in self._sets:
                for key in accesses:
                    seen.setdefault(key, None)
            all_keys = list(seen)
        self._all_keys = list(all_keys)
        self._cycle = cycle
        self._cursor = 0
        #: Times the replay wrapped around (0 when the run fits the trace).
        self.wraps = 0

    def access_set(self, rng: np.random.Generator, now: float) -> list[Key]:
        if self._cursor >= len(self._sets):
            if not self._cycle:
                raise ConfigurationError(
                    f"trace exhausted after {len(self._sets)} transactions"
                )
            self._cursor = 0
            self.wraps += 1
        accesses = self._sets[self._cursor]
        self._cursor += 1
        return list(accesses)

    def all_keys(self) -> Sequence[Key]:
        return self._all_keys

    def reset(self) -> None:
        """Rewind to the beginning (fresh replay of the same trace)."""
        self._cursor = 0
        self.wraps = 0

    def __len__(self) -> int:
        return len(self._sets)


def save_trace(trace: TraceWorkload | TraceRecorder, path: str | Path) -> None:
    """Write a trace as JSON lines (one access set per line)."""
    if isinstance(trace, TraceRecorder):
        trace = trace.trace()
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps({"all_keys": list(trace.all_keys())}) + "\n")
        for index in range(len(trace)):
            handle.write(json.dumps(trace._sets[index]) + "\n")


def load_trace(path: str | Path, *, cycle: bool = True) -> TraceWorkload:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = json.loads(handle.readline())
        sets = [json.loads(line) for line in handle if line.strip()]
    return TraceWorkload(sets, all_keys=header["all_keys"], cycle=cycle)
