"""JSON round-tripping for the synthetic workload families.

Scenario artifacts (:meth:`repro.scenario.spec.ScenarioSpec.as_dict`) embed
each edge's workload as a plain dict so the topology can be replayed from
the CLI (``repro-experiments scenario --spec file.json``). The codec covers
every synthetic family and the compositional wrappers (offset, mixture,
phase switch); graph- and trace-backed workloads carry external state and
are not portable — serialising one raises :class:`ConfigurationError`, and
:meth:`EdgeSpec.as_dict` records ``None`` for them instead.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.workloads.synthetic import (
    DriftingClusterWorkload,
    MixtureWorkload,
    OffsetWorkload,
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    PhaseSwitchWorkload,
    UniformWorkload,
)

__all__ = ["workload_from_dict", "workload_to_dict"]


def _encode_uniform(w: UniformWorkload) -> dict[str, object]:
    return {"n_objects": w.n_objects, "txn_size": w.txn_size}


def _encode_perfect(w: PerfectClusterWorkload) -> dict[str, object]:
    return {
        "n_objects": w.n_objects,
        "cluster_size": w.cluster_size,
        "txn_size": w.txn_size,
    }


def _encode_pareto(w: ParetoClusterWorkload) -> dict[str, object]:
    return {**_encode_perfect(w), "alpha": w.alpha}


def _encode_drifting(w: DriftingClusterWorkload) -> dict[str, object]:
    return {**_encode_perfect(w), "shift_interval": w.shift_interval}


def _encode_phase_switch(w: PhaseSwitchWorkload) -> dict[str, object]:
    return {
        "before": workload_to_dict(w.before),
        "after": workload_to_dict(w.after),
        "switch_time": w.switch_time,
    }


def _encode_offset(w: OffsetWorkload) -> dict[str, object]:
    return {"inner": workload_to_dict(w.inner), "offset": w.offset}


def _encode_mixture(w: MixtureWorkload) -> dict[str, object]:
    return {
        "components": [
            {"weight": weight, "workload": workload_to_dict(component)}
            for weight, component in w.components
        ]
    }


def _decode_phase_switch(payload: dict) -> PhaseSwitchWorkload:
    return PhaseSwitchWorkload(
        workload_from_dict(payload["before"]),
        workload_from_dict(payload["after"]),
        switch_time=payload["switch_time"],
    )


def _decode_offset(payload: dict) -> OffsetWorkload:
    return OffsetWorkload(
        workload_from_dict(payload["inner"]), offset=payload["offset"]
    )


def _decode_mixture(payload: dict) -> MixtureWorkload:
    return MixtureWorkload(
        [
            (component["weight"], workload_from_dict(component["workload"]))
            for component in payload["components"]
        ]
    )


#: type name -> (class, encode, decode). Flat families decode via keyword
#: construction; wrappers recurse through the codec.
_REGISTRY: dict[str, tuple[type, Callable, Callable | None]] = {
    "UniformWorkload": (UniformWorkload, _encode_uniform, None),
    "PerfectClusterWorkload": (PerfectClusterWorkload, _encode_perfect, None),
    "ParetoClusterWorkload": (ParetoClusterWorkload, _encode_pareto, None),
    "DriftingClusterWorkload": (DriftingClusterWorkload, _encode_drifting, None),
    "PhaseSwitchWorkload": (PhaseSwitchWorkload, _encode_phase_switch, _decode_phase_switch),
    "OffsetWorkload": (OffsetWorkload, _encode_offset, _decode_offset),
    "MixtureWorkload": (MixtureWorkload, _encode_mixture, _decode_mixture),
}


def workload_to_dict(workload) -> dict[str, object]:
    """A JSON-safe description of ``workload``, replayable by
    :func:`workload_from_dict`.

    Raises :class:`ConfigurationError` for workload types outside the
    portable synthetic families.
    """
    name = type(workload).__name__
    entry = _REGISTRY.get(name)
    if entry is None or not isinstance(workload, entry[0]):
        raise ConfigurationError(
            f"workload type {name!r} is not portable to JSON; portable "
            f"types: {sorted(_REGISTRY)}"
        )
    return {"type": name, **entry[1](workload)}


def workload_from_dict(payload: dict) -> object:
    """Rebuild a workload from :func:`workload_to_dict` output."""
    try:
        name = payload["type"]
    except (TypeError, KeyError):
        raise ConfigurationError(
            f"workload payload needs a 'type' field, got {payload!r}"
        )
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown workload type {name!r}; portable types: {sorted(_REGISTRY)}"
        )
    cls, _, decode = entry
    if decode is not None:
        return decode(payload)
    kwargs = {key: value for key, value in payload.items() if key != "type"}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        # e.g. a hand-edited spec with a misspelled field name.
        raise ConfigurationError(
            f"bad {name} payload {sorted(kwargs)}: {exc}"
        ) from exc
