"""Performance harness: the repo's own perf trajectory, measured.

The ``repro-experiments bench`` command runs a small deterministic suite
(:func:`run_suite`) — kernel events/sec on a reference column, SGT
checks/sec at growing history sizes, the §III-A dependency-list merge at
the paper's ``k = 5``, and one multi-backend scenario — and writes a
schema'd JSON payload. One such payload per perf-relevant PR is committed
at the repo root (``BENCH_<n>.json``), so every future change is
accountable to the recorded baseline; CI re-runs the suite at reduced
scale and reports the drift (see the ``bench-smoke`` job).
"""

from repro.bench.suite import (
    BENCH_SCHEMA,
    baseline_series,
    compare_payloads,
    run_suite,
    trajectory_rows,
)

__all__ = [
    "BENCH_SCHEMA",
    "baseline_series",
    "compare_payloads",
    "run_suite",
    "trajectory_rows",
]
