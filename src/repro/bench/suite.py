"""The deterministic perf suite behind ``repro-experiments bench``.

Four probes, each with a fixed seeded workload so two runs measure the same
work and only the wall clock varies:

* ``column_throughput`` — the reference single-edge column (the same
  configuration as ``benchmarks/test_column_throughput.py``): simulator
  events per wall-second across database, channel, cache, clients and
  monitor.
* ``sgt_checks`` — :class:`~repro.monitor.sgt.SerializationGraphTester`
  record + check rates at growing history sizes. The paper's §V-B2 claim is
  that per-read checking is O(1) in the database/history size: checks/sec
  should *flatten*, not fall off, as the history grows (the workload keeps
  the BFS neighbourhood comparable across sizes).
* ``deplist_merge`` — the §III-A commit-time merge at the paper's k = 5.
* ``scenario`` — a routed two-backend fleet through the full scenario
  layer, the macro check that kernel wins survive composition.

``scale`` shrinks the simulated durations / history sizes for CI smoke runs
(the recorded workload metadata includes it, so payloads are only compared
at matching scale). All workload inputs derive from fixed seeds via
``random.Random`` / the sim's own streams — never the wall clock.
"""

from __future__ import annotations

import math
import os
import platform
import random
import re
import sys
import time

from repro.core.deplist import DependencyList
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import build_column
from repro.monitor.sgt import SerializationGraphTester
from repro.scenario import run_scenario
from repro.scenario.library import regional_backends_scenario
from repro.types import CommittedTransaction
from repro.workloads.synthetic import ParetoClusterWorkload

__all__ = [
    "BENCH_SCHEMA",
    "baseline_series",
    "compare_payloads",
    "run_suite",
    "trajectory_rows",
]

#: Version tag of the bench payload layout.
BENCH_SCHEMA = "repro.bench/v1"


# ---------------------------------------------------------------------------
# Probes
# ---------------------------------------------------------------------------


def bench_column_throughput(scale: float = 1.0) -> dict[str, object]:
    """Events/sec on the reference column (kernel + full §II stack)."""
    duration = 8.0 * scale
    config = ColumnConfig(seed=21, duration=duration, warmup=2.0 * scale)
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=1.0)
    column = build_column(config, workload)
    start = time.perf_counter()
    column.sim.run(until=config.total_time)
    wall = time.perf_counter() - start
    events = column.sim.events_executed
    return {
        "simulated_seconds": config.total_time,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall else 0.0,
        # Determinism witnesses: identical across runs at one scale.
        "cache_reads": column.cache.stats.reads,
        "read_only_transactions": column.monitor.summary.read_only.total,
    }


def sgt_history(
    n_updates: int, n_keys: int = 2000, seed: int = 1234
) -> tuple[list[CommittedTransaction], dict[str, int], dict[str, int]]:
    """A seeded 2PL-style history: reads see the current version.

    Returns ``(transactions, current version per key, previous version per
    key)`` — the previous-version map feeds bounded-staleness read sets.
    Shared with ``benchmarks/test_micro_overhead.py``.
    """
    rng = random.Random(seed)
    current: dict[str, int] = {}
    previous: dict[str, int] = {}
    txns: list[CommittedTransaction] = []
    for version in range(1, n_updates + 1):
        picks = rng.sample(range(n_keys), 3)
        keys = [f"k{index}" for index in picks]
        reads = {key: current.get(key, 0) for key in keys}
        writes = {key: version for key in keys[:2]}
        txns.append(
            CommittedTransaction(txn_id=version, reads=reads, writes=writes)
        )
        for key in writes:
            previous[key] = current.get(key, 0)
            current[key] = version
    return txns, current, previous


def sgt_read_sets(
    current: dict[str, int],
    previous: dict[str, int],
    n_checks: int,
    k: int = 5,
    seed: int = 99,
) -> list[dict[str, int]]:
    """Read sets with *bounded staleness*: current or previous versions.

    Mirrors what a cache-fed monitor classifies — entries are near-current,
    never the initial load — so the BFS neighbourhood is governed by the
    conflict structure, not by how long the history is. That is the §V-B2
    shape under test: per-check cost O(1) in history size.
    """
    rng = random.Random(seed)
    keys = list(current)
    read_sets = []
    for _ in range(n_checks):
        chosen = rng.sample(keys, min(k, len(keys)))
        read_sets.append(
            {
                key: current[key]
                if rng.random() < 0.7
                else previous.get(key, 0)
                for key in chosen
            }
        )
    return read_sets


def bench_sgt_checks(scale: float = 1.0) -> dict[str, object]:
    """Record + check rates at 10^3 / 10^4 / 10^5-update histories."""
    sizes = [max(100, int(size * scale)) for size in (1_000, 10_000, 100_000)]
    n_checks = max(200, int(2_000 * scale))
    by_size = []
    for n_updates in sizes:
        txns, current, previous = sgt_history(n_updates)
        read_sets = sgt_read_sets(current, previous, n_checks)
        tester = SerializationGraphTester()
        start = time.perf_counter()
        for txn in txns:
            tester.record_update(txn)
        record_wall = time.perf_counter() - start
        inconsistent = 0
        start = time.perf_counter()
        for reads in read_sets:
            if not tester.is_consistent(reads):
                inconsistent += 1
        check_wall = time.perf_counter() - start
        by_size.append(
            {
                "history_size": n_updates,
                "checks": n_checks,
                "record_wall_seconds": record_wall,
                "records_per_sec": n_updates / record_wall if record_wall else 0.0,
                "check_wall_seconds": check_wall,
                "checks_per_sec": n_checks / check_wall if check_wall else 0.0,
                # Determinism witnesses.
                "inconsistent": inconsistent,
                "expansions": tester.expansions,
            }
        )
    return {"by_size": by_size}


def bench_deplist_merge(scale: float = 1.0) -> dict[str, object]:
    """The §III-A merge at the paper's parameters (5 objects, k = 5)."""
    iterations = max(1_000, int(20_000 * scale))
    direct = {f"key{index}": 100 + index for index in range(5)}
    inherited = [
        DependencyList.from_pairs(
            [(f"obj{index}-{position}", position + 1) for position in range(5)]
        )
        for index in range(5)
    ]
    start = time.perf_counter()
    for _ in range(iterations):
        DependencyList.merge(direct, inherited, max_len=5, exclude="key0")
    wall = time.perf_counter() - start
    return {
        "iterations": iterations,
        "wall_seconds": wall,
        "merges_per_sec": iterations / wall if wall else 0.0,
    }


def bench_scenario(scale: float = 1.0) -> dict[str, object]:
    """A routed two-backend fleet through the scenario layer."""
    spec = regional_backends_scenario(
        regions=2,
        edges_per_region=2,
        objects_per_region=200,
        shards=2,
        duration=3.0 * scale,
        warmup=1.0 * scale,
        seed=17,
    )
    start = time.perf_counter()
    result = run_scenario(spec)
    wall = time.perf_counter() - start
    return {
        "edges": len(result.edges),
        "backends": len(result.backends),
        "wall_seconds": wall,
        "read_only_transactions": result.fleet.counts.total,
        "transactions_per_wall_sec": (
            result.fleet.counts.total / wall if wall else 0.0
        ),
    }


def bench_telemetry_overhead(scale: float = 1.0) -> dict[str, object]:
    """The same seeded column with telemetry off, then fully traced.

    The off run takes the production fast path (``sim._tracer is None``);
    the on run captures every category into a live
    :class:`~repro.telemetry.Tracer`. Both must execute the *same* event
    count — instrumentation observes the simulation, never steers it —
    recorded as a determinism witness. The off rate is what the committed
    ``column events/sec`` trajectory polices across PRs; ``overhead_ratio``
    (off rate / on rate) documents what full tracing costs when you ask
    for it.
    """
    from repro import telemetry

    duration = 4.0 * scale

    def one_column():
        config = ColumnConfig(seed=23, duration=duration, warmup=1.0 * scale)
        workload = ParetoClusterWorkload(
            n_objects=2000, cluster_size=5, alpha=1.0
        )
        column = build_column(config, workload)
        start = time.perf_counter()
        column.sim.run(until=config.total_time)
        return column.sim.events_executed, time.perf_counter() - start

    untraced_events, untraced_wall = one_column()
    with telemetry.capture("bench") as tracer:
        traced_events, traced_wall = one_column()
        trace_records = len(tracer.records)
    untraced_rate = untraced_events / untraced_wall if untraced_wall else 0.0
    traced_rate = traced_events / traced_wall if traced_wall else 0.0
    return {
        "simulated_seconds": duration,
        "events": untraced_events,
        "events_match": untraced_events == traced_events,
        "trace_records": trace_records,
        "untraced_wall_seconds": untraced_wall,
        "traced_wall_seconds": traced_wall,
        "untraced_events_per_sec": untraced_rate,
        "traced_events_per_sec": traced_rate,
        "overhead_ratio": untraced_rate / traced_rate if traced_rate else 0.0,
    }


# ---------------------------------------------------------------------------
# Suite
# ---------------------------------------------------------------------------


def run_suite(scale: float = 1.0) -> dict[str, object]:
    """Run every probe and return the schema'd payload."""
    if not 0.0 < scale <= 4.0:
        raise ValueError(f"bench scale must be in (0, 4], got {scale}")
    results = {
        "column_throughput": bench_column_throughput(scale),
        "sgt_checks": bench_sgt_checks(scale),
        "deplist_merge": bench_deplist_merge(scale),
        "scenario": bench_scenario(scale),
        # Absent from older committed baselines; compare_payloads and
        # trajectory_rows only walk _HEADLINE_METRICS, so the series
        # stays comparable across the addition.
        "telemetry_overhead": bench_telemetry_overhead(scale),
    }
    return {
        "schema": BENCH_SCHEMA,
        "scale": scale,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "results": results,
    }


#: (label, extractor) pairs of the headline rates a baseline diff compares.
_HEADLINE_METRICS = (
    ("column events/sec", lambda r: r["column_throughput"]["events_per_sec"]),
    (
        "sgt checks/sec @largest",
        lambda r: r["sgt_checks"]["by_size"][-1]["checks_per_sec"],
    ),
    (
        "sgt records/sec @largest",
        lambda r: r["sgt_checks"]["by_size"][-1]["records_per_sec"],
    ),
    ("deplist merges/sec", lambda r: r["deplist_merge"]["merges_per_sec"]),
    (
        "scenario txns/wall-sec",
        lambda r: r["scenario"]["transactions_per_wall_sec"],
    ),
)


def compare_payloads(
    current: dict, baseline: dict, *, tolerance: float = 0.5
) -> list[dict[str, object]]:
    """Headline-rate drift of ``current`` against a recorded ``baseline``.

    Returns one row per metric with the ratio and a ``regressed`` flag set
    when current is slower than ``(1 - tolerance) x baseline`` — the CI
    smoke job prints these report-only (machines differ; the committed
    baseline documents a trajectory, it is not a hard gate). Payloads from
    different scales are refused: the workloads differ.
    """
    if current.get("scale") != baseline.get("scale"):
        raise ValueError(
            f"bench scales differ: current {current.get('scale')} vs "
            f"baseline {baseline.get('scale')}; run with --bench-scale "
            f"{baseline.get('scale')} to compare"
        )
    rows: list[dict[str, object]] = []
    for label, extract in _HEADLINE_METRICS:
        now = float(extract(current["results"]))
        then = float(extract(baseline["results"]))
        if then:
            ratio = now / then
        else:
            # Nothing to compare against (e.g. a smoke scale too small to
            # commit any transaction): equal-zero is parity, not a blow-up.
            ratio = 1.0 if now == 0 else math.inf
        rows.append(
            {
                "metric": label,
                "current": round(now, 1),
                "baseline": round(then, 1),
                "ratio": round(ratio, 3),
                "regressed": ratio < (1.0 - tolerance),
            }
        )
    return rows


_BASELINE_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def baseline_series(directory: str) -> list[str]:
    """The committed ``BENCH_<n>.json`` series in ``directory``, oldest first.

    Ordering is numeric on ``<n>`` (the PR number that recorded the
    payload), not lexicographic, so ``BENCH_10`` sorts after ``BENCH_9``.
    """
    entries: list[tuple[int, str]] = []
    for name in os.listdir(directory):
        match = _BASELINE_NAME.match(name)
        if match:
            entries.append((int(match.group(1)), os.path.join(directory, name)))
    entries.sort()
    return [path for _, path in entries]


def trajectory_rows(
    series: list[tuple[str, dict]], *, tolerance: float = 0.5
) -> list[dict[str, object]]:
    """Headline metrics across a whole baseline series, oldest -> newest.

    ``series`` holds ``(label, payload)`` pairs in trajectory order —
    typically every committed ``BENCH_<n>.json`` plus the run just
    finished. One row per headline metric, one column per point, plus the
    cumulative newest/oldest ratio and the same report-only ``regressed``
    flag as :func:`compare_payloads`. All points must share one scale: the
    trajectory documents one workload's history, not a mix.
    """
    if not series:
        raise ValueError("bench trajectory needs at least one payload")
    scales = {payload.get("scale") for _, payload in series}
    if len(scales) > 1:
        raise ValueError(
            f"bench scales differ along the trajectory: {sorted(scales, key=str)}; "
            "a series only documents drift at one scale"
        )
    rows: list[dict[str, object]] = []
    for label, extract in _HEADLINE_METRICS:
        values = [float(extract(payload["results"])) for _, payload in series]
        first, last = values[0], values[-1]
        if first:
            ratio = last / first
        else:
            ratio = 1.0 if last == 0 else math.inf
        row: dict[str, object] = {"metric": label}
        for (point_label, _), value in zip(series, values):
            row[point_label] = round(value, 1)
        row["total_ratio"] = round(ratio, 3)
        row["regressed"] = ratio < (1.0 - tolerance)
        rows.append(row)
    return rows
