"""Open-loop read-only transaction client.

Fires read-only transactions against a cache at a configured aggregate rate.
Each transaction reads its access set through the cache's transactional
interface — ``read(txn_id, key, lastOp)`` (§III-B) — with a small
client-to-cache round-trip gap between operations, so transactions genuinely
interleave with concurrent update commits and invalidations.

A transaction aborted by T-Cache is counted and dropped; §III-B notes the
client *can* retry, and ``retry_aborted=True`` enables that behaviour (used
by one of the examples), but the paper's experiments measure abort rates
without client-side retry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.cache.base import CacheServer
from repro.errors import TransactionAborted
from repro.sim.core import Simulator
from repro.workloads.base import Workload

__all__ = ["ReadOnlyClient", "ReadClientStats"]


@dataclass(slots=True)
class ReadClientStats:
    """Per-client counters over *logical* transactions.

    ``launched`` counts each logical transaction once, however often it is
    retried; ``attempts`` counts every try. ``committed``/``aborted`` are
    final outcomes, so ``committed + aborted <= launched`` always holds
    (strictly ``==`` once every in-flight transaction finished) and
    ``attempts == launched + retried_transactions``.
    """

    launched: int = 0
    committed: int = 0
    aborted: int = 0
    reads: int = 0
    attempts: int = 0
    retried_transactions: int = 0


class ReadOnlyClient:
    """Drives read-only transactions as a simulation process."""

    def __init__(
        self,
        sim: Simulator,
        cache: CacheServer,
        workload: Workload,
        *,
        rate: float,
        rng: np.random.Generator,
        txn_ids: Iterator[int],
        read_gap: float = 0.001,
        poisson: bool = True,
        retry_aborted: bool = False,
        max_retries: int = 2,
        name: str = "read-client",
    ) -> None:
        self._sim = sim
        self._cache = cache
        self._workload = workload
        self._rate = rate
        self._mean_gap = 1.0 / rate
        self._rng = rng
        self._txn_ids = txn_ids
        self._read_gap = read_gap
        self._poisson = poisson
        self._retry_aborted = retry_aborted
        self._max_retries = max_retries
        self.name = name
        self.stats = ReadClientStats()
        self.process = sim.process(self._run())

    def _run(self):
        while True:
            yield self._sim.timeout(self._next_gap())
            keys = self._workload.access_set(self._rng, self._sim.now)
            self._sim.process(self._transaction(keys, attempt=0))

    def _transaction(self, keys: list, attempt: int):
        stats = self.stats
        if attempt == 0:
            stats.launched += 1
        stats.attempts += 1
        txn_id = next(self._txn_ids)
        cache_read = self._cache.read
        last = len(keys) - 1
        try:
            for position, key in enumerate(keys):
                last_op = position == last
                cache_read(txn_id, key, last_op)
                stats.reads += 1
                if not last_op and self._read_gap:
                    yield self._sim.timeout(self._read_gap)
        except TransactionAborted:
            if self._retry_aborted and attempt < self._max_retries:
                self.stats.retried_transactions += 1
                yield from self._transaction(keys, attempt + 1)
            else:
                self.stats.aborted += 1
            return
        self.stats.committed += 1

    def _next_gap(self) -> float:
        if self._poisson:
            return float(self._rng.exponential(self._mean_gap))
        return self._mean_gap
