"""Open-loop transaction clients (§IV).

"Update clients access the database at a rate of 100 transactions per
second, and read-only clients access the cache at a rate of 500 transactions
per second." Both clients are open-loop: arrivals follow the configured rate
regardless of how long individual transactions take, which is how the
paper's fixed-rate clients behave.
"""

from repro.clients.read_client import ReadOnlyClient, ReadClientStats
from repro.clients.update_client import UpdateClient, UpdateClientStats

__all__ = [
    "ReadClientStats",
    "ReadOnlyClient",
    "UpdateClient",
    "UpdateClientStats",
]
