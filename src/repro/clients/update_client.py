"""Open-loop update-transaction client.

Fires update transactions against the database at a configured aggregate
rate with Poisson arrivals. Each transaction reads its whole access set and
overwrites every object with a fresh token value, matching §V-B1: "Update
transactions first read all objects from the database, and then update all
objects at the database."

Transactions wounded by deadlock avoidance are retried a bounded number of
times (fresh transaction, same access set); the paper's workloads produce
only occasional wounds, and retries keep the effective update rate at the
configured value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.db.database import Database
from repro.errors import TransactionAborted
from repro.sim.core import Event, Simulator
from repro.types import Key
from repro.workloads.base import Workload

__all__ = ["UpdateClient", "UpdateClientStats"]


@dataclass(slots=True)
class UpdateClientStats:
    launched: int = 0
    committed: int = 0
    aborted: int = 0
    retries: int = 0
    #: Transactions dropped after exhausting retries.
    abandoned: int = 0


class UpdateClient:
    """Drives update transactions as a simulation process."""

    def __init__(
        self,
        sim: Simulator,
        database: Database,
        workload: Workload,
        *,
        rate: float,
        rng: np.random.Generator,
        max_retries: int = 3,
        poisson: bool = True,
        name: str = "update-client",
    ) -> None:
        self._sim = sim
        self._database = database
        self._workload = workload
        self._rate = rate
        self._mean_gap = 1.0 / rate
        self._rng = rng
        self._max_retries = max_retries
        self._poisson = poisson
        self.name = name
        self.stats = UpdateClientStats()
        self._value_counter = itertools.count(1)
        self.process = sim.process(self._run())

    # ------------------------------------------------------------------
    # Process bodies
    # ------------------------------------------------------------------

    def _run(self):
        while True:
            yield self._sim.timeout(self._next_gap())
            keys = self._workload.access_set(self._rng, self._sim.now)
            self._sim.process(self._transaction(keys, attempt=0))

    def _transaction(self, keys: list[Key], attempt: int):
        self.stats.launched += 1
        writes = {key: f"{self.name}#{next(self._value_counter)}" for key in keys}
        process = self._database.execute_update(read_keys=keys, writes=writes)
        try:
            yield process
        except TransactionAborted:
            self.stats.aborted += 1
            if attempt < self._max_retries:
                self.stats.retries += 1
                # Brief backoff so the wounding transaction can finish.
                yield self._sim.timeout(self._next_gap() * 0.1)
                yield from self._transaction(keys, attempt + 1)
            else:
                self.stats.abandoned += 1
            return
        self.stats.committed += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _next_gap(self) -> float:
        if self._poisson:
            return float(self._rng.exponential(self._mean_gap))
        return self._mean_gap

    def completion_event(self) -> Event:
        """The client process itself (never completes unless killed)."""
        return self.process
