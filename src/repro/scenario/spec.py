"""Declarative description of a multi-edge, multi-backend topology.

A :class:`ScenarioSpec` is the paper's Figure 2 generalised to a fleet:
one or more transactional backends (:class:`BackendSpec`), one omniscient
consistency monitor, and N edge caches — each an :class:`EdgeSpec` with its
own cache variant, invalidation channel quality, and client populations. A
*placement* maps each edge to the backend that serves its misses, updates
and invalidations; the default places every edge on one default backend,
reproducing the paper's single-backend setting bit for bit. Specs are plain
data validated at construction; building one runs nothing.
:func:`repro.scenario.run_scenario` executes them.

The legacy single-column API (:func:`repro.experiments.runner.run_column`)
is a shim over this layer: a one-edge scenario built with
:meth:`ScenarioSpec.from_column` reproduces the pre-scenario runner's
results bit for bit (see the RNG naming notes in
:mod:`repro.scenario.runner`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.cache.kinds import CacheKind
from repro.core.deplist import UNBOUNDED, validate_pruning_policy
from repro.core.strategies import Strategy
from repro.db.database import TimingConfig
from repro.errors import ConfigurationError
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.experiments.config import ColumnConfig

__all__ = ["BackendSpec", "DEFAULT_BACKEND_NAME", "EdgeSpec", "ScenarioSpec"]

#: Name of the implicit backend of single-backend scenarios. Matches the
#: historical :class:`~repro.db.database.DatabaseConfig` default so that a
#: spec with no ``backends`` reproduces the pre-backend-tier wiring exactly.
DEFAULT_BACKEND_NAME = "db"

#: Cache kinds that run the T-Cache consistency checks (and may therefore
#: carry a per-edge ``deplist_limit``).
_CHECKING_KINDS = (CacheKind.TCACHE, CacheKind.MULTIVERSION)


@dataclass(slots=True)
class BackendSpec:
    """One transactional backend database of a scenario's backend tier.

    ``deplist_max``, ``timing`` and ``pruning_policy`` default to ``None``,
    meaning "inherit the scenario-wide value" — so a fleet can share one
    configuration while individual backends override it (e.g. a regional
    backend with longer dependency lists or slower commit phases).

    Each backend owns an independent version namespace: its commit-sequence
    counter starts at 1 and orders only its own transactions. The runner and
    the consistency monitor key everything version-related by
    ``(backend, version)`` — see :class:`~repro.monitor.monitor.ConsistencyMonitor`.
    """

    #: Unique name within the scenario; becomes the database name, the WAL
    #: and shard name prefix, and the monitor's version namespace.
    name: str
    #: 2PC participants the backend is partitioned over (stable-hash
    #: placement of keys to shards).
    shards: int = 1
    #: Backend-side dependency-list bound; ``None`` inherits the scenario's.
    deplist_max: int | None = None
    #: Transaction phase latencies; ``None`` inherits the scenario's.
    timing: TimingConfig | None = None
    #: Dependency-list pruning order; ``None`` inherits the scenario's.
    pruning_policy: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("backend name must be non-empty")
        if self.shards < 1:
            raise ConfigurationError(
                f"backend {self.name!r}: need at least one shard, got {self.shards}"
            )
        if (
            self.deplist_max is not None
            and self.deplist_max != UNBOUNDED
            and self.deplist_max < 0
        ):
            raise ConfigurationError(
                f"backend {self.name!r}: deplist_max must be >= 0, UNBOUNDED "
                f"or None, got {self.deplist_max}"
            )
        if self.pruning_policy is not None:
            validate_pruning_policy(
                self.pruning_policy, owner=f"backend {self.name!r}"
            )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description (``None`` marks inherited fields)."""
        return {
            "name": self.name,
            "shards": self.shards,
            "deplist_max": self.deplist_max,
            "timing": None if self.timing is None else asdict(self.timing),
            "pruning_policy": self.pruning_policy,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "BackendSpec":
        """Rebuild a backend spec from :meth:`as_dict` output."""
        timing = payload.get("timing")
        return cls(
            name=payload["name"],
            shards=payload.get("shards", 1),
            deplist_max=payload.get("deplist_max"),
            timing=None if timing is None else TimingConfig(**timing),
            pruning_policy=payload.get("pruning_policy"),
        )


@dataclass(slots=True)
class EdgeSpec:
    """One edge cache plus the client populations it serves.

    Defaults reproduce the paper's §IV column: read-only clients at
    500 txn/s against the cache, update clients at 100 txn/s against the
    shared database, 20 % of invalidations dropped uniformly at random.
    """

    #: Unique name within the scenario; also names the cache, channel and
    #: clients, and keys the per-edge monitor series.
    name: str
    #: Drives this edge's update clients (and, absent ``read_workload``, its
    #: read-only clients). Its key universe is loaded into the database.
    workload: Workload
    #: Separate access distribution for the read-only clients.
    read_workload: Workload | None = None

    cache_kind: CacheKind = CacheKind.TCACHE
    strategy: Strategy = Strategy.ABORT
    #: Entry lifetime for :attr:`CacheKind.TTL`.
    ttl: float | None = None
    #: Optional cache capacity (None: everything fits, as in the paper).
    cache_capacity: int | None = None
    #: Per-edge cap on how many dependency entries the cache *consults* when
    #: checking reads (§VII: heterogeneous list bounds). The database still
    #: ships lists bounded by the scenario's ``deplist_max``; an edge with a
    #: smaller limit checks only the freshest ``deplist_limit`` entries.
    #: ``None`` consults the full shipped list.
    deplist_limit: int | None = None
    #: Consistency protocol run by this edge, by registry name
    #: (:mod:`repro.protocols`). ``None`` keeps the historical behaviour of
    #: building straight from ``cache_kind``/``strategy``; a name overrides
    #: the cache kind entirely (the runner builds the protocol's cache and
    #: wires its backend-side service).
    protocol: str | None = None

    #: Aggregate update-transaction rate; 0 models a read-only region.
    update_rate: float = 100.0
    read_rate: float = 500.0
    #: Client-to-cache round trip between the reads of one transaction.
    read_gap: float = 0.001
    #: Retry aborted read-only transactions at the client (off in the paper).
    retry_aborted_reads: bool = False

    #: Fraction of this edge's invalidations dropped (§IV: 20 %).
    invalidation_loss: float = 0.2
    #: Mean invalidation delivery latency (exponential), seconds.
    invalidation_latency_mean: float = 0.05
    #: Half-open ``(start, end)`` sim-time windows during which this edge's
    #: invalidation channel drops *everything* — the §II bursty pipeline
    #: failures (config change, buffer saturation), declaratively.  The
    #: runner applies each window via :meth:`~repro.sim.channel.Channel.outage`;
    #: windows compose with the base ``invalidation_loss``.
    invalidation_outages: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("edge name must be non-empty")
        if self.update_rate < 0 or self.read_rate <= 0:
            raise ConfigurationError(
                f"edge {self.name!r}: update_rate must be >= 0 and "
                f"read_rate > 0, got {self.update_rate}/{self.read_rate}"
            )
        if self.read_gap < 0:
            raise ConfigurationError(
                f"edge {self.name!r}: read_gap must be >= 0, got {self.read_gap}"
            )
        if not 0.0 <= self.invalidation_loss <= 1.0:
            raise ConfigurationError(
                f"edge {self.name!r}: invalidation_loss must be in [0, 1], "
                f"got {self.invalidation_loss}"
            )
        if self.invalidation_latency_mean < 0:
            raise ConfigurationError(
                f"edge {self.name!r}: invalidation_latency_mean must be >= 0, "
                f"got {self.invalidation_latency_mean}"
            )
        if self.protocol is not None:
            # Resolve eagerly so a bad name fails at spec construction (and
            # JSON replay) with the registered names in the message, not at
            # build time deep inside the runner.
            from repro.protocols import get_protocol

            get_protocol(self.protocol)
        ttl_required = (
            self.protocol == "ttl"
            if self.protocol is not None
            else self.cache_kind is CacheKind.TTL
        )
        if ttl_required and (self.ttl is None or self.ttl <= 0):
            raise ConfigurationError(
                f"edge {self.name!r}: a TTL cache requires a positive ttl"
            )
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ConfigurationError(
                f"edge {self.name!r}: cache_capacity must be >= 1 or None, "
                f"got {self.cache_capacity}"
            )
        # Normalise (JSON round-trips deliver lists) and validate windows.
        self.invalidation_outages = tuple(
            (float(start), float(end)) for start, end in self.invalidation_outages
        )
        for start, end in self.invalidation_outages:
            if start < 0 or end <= start:
                raise ConfigurationError(
                    f"edge {self.name!r}: outage window [{start}, {end}) must "
                    "satisfy 0 <= start < end"
                )
        if self.deplist_limit is not None:
            if self.protocol is None and self.cache_kind not in _CHECKING_KINDS:
                raise ConfigurationError(
                    f"edge {self.name!r}: deplist_limit only applies to "
                    f"consistency-checking caches, not {self.cache_kind.name}"
                )
            if self.deplist_limit < 0:
                raise ConfigurationError(
                    f"edge {self.name!r}: deplist_limit must be >= 0 or None, "
                    f"got {self.deplist_limit}"
                )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description (workloads by class name, enums by name).

        ``workload_spec`` / ``read_workload_spec`` carry full replayable
        workload payloads for the portable synthetic families (``None`` for
        graph/trace workloads, which hold external state) — the inputs
        :meth:`from_dict` rebuilds edges from.
        """
        from repro.workloads.codec import workload_to_dict

        def _portable(workload) -> dict[str, object] | None:
            if workload is None:
                return None
            try:
                return workload_to_dict(workload)
            except ConfigurationError:
                return None

        return {
            "name": self.name,
            "workload": type(self.workload).__name__,
            "read_workload": (
                None
                if self.read_workload is None
                else type(self.read_workload).__name__
            ),
            "workload_spec": _portable(self.workload),
            "read_workload_spec": _portable(self.read_workload),
            "cache_kind": self.cache_kind.name,
            "strategy": self.strategy.name,
            "protocol": self.protocol,
            "ttl": self.ttl,
            "cache_capacity": self.cache_capacity,
            "deplist_limit": self.deplist_limit,
            "update_rate": self.update_rate,
            "read_rate": self.read_rate,
            "read_gap": self.read_gap,
            "retry_aborted_reads": self.retry_aborted_reads,
            "invalidation_loss": self.invalidation_loss,
            "invalidation_latency_mean": self.invalidation_latency_mean,
            "invalidation_outages": [list(window) for window in self.invalidation_outages],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EdgeSpec":
        """Rebuild an edge spec from :meth:`as_dict` output.

        Requires a portable ``workload_spec`` — an edge whose workload was
        graph- or trace-backed cannot be replayed from JSON.
        """
        from repro.workloads.codec import workload_from_dict

        workload_spec = payload.get("workload_spec")
        if workload_spec is None:
            raise ConfigurationError(
                f"edge {payload.get('name')!r}: no portable workload_spec in "
                "payload; only synthetic-family workloads replay from JSON"
            )
        read_spec = payload.get("read_workload_spec")
        if read_spec is None and payload.get("read_workload") is not None:
            # The edge *had* a read workload but it wasn't portable —
            # replaying without it would silently drive reads from the
            # update workload instead of the recorded distribution.
            raise ConfigurationError(
                f"edge {payload.get('name')!r}: read workload "
                f"{payload['read_workload']!r} has no portable "
                "read_workload_spec; only synthetic-family workloads replay "
                "from JSON"
            )
        kind_name = payload.get("cache_kind", "TCACHE")
        try:
            cache_kind = CacheKind[kind_name]
        except KeyError:
            raise ConfigurationError(
                f"edge {payload.get('name')!r}: unknown cache_kind "
                f"{kind_name!r}; registered kinds: "
                f"{', '.join(kind.name for kind in CacheKind)}"
            ) from None
        strategy_name = payload.get("strategy", "ABORT")
        try:
            strategy = Strategy[strategy_name]
        except KeyError:
            raise ConfigurationError(
                f"edge {payload.get('name')!r}: unknown strategy "
                f"{strategy_name!r}; registered strategies: "
                f"{', '.join(s.name for s in Strategy)}"
            ) from None
        return cls(
            name=payload["name"],
            workload=workload_from_dict(workload_spec),
            read_workload=(
                None if read_spec is None else workload_from_dict(read_spec)
            ),
            cache_kind=cache_kind,
            strategy=strategy,
            protocol=payload.get("protocol"),
            ttl=payload.get("ttl"),
            cache_capacity=payload.get("cache_capacity"),
            deplist_limit=payload.get("deplist_limit"),
            update_rate=payload.get("update_rate", 100.0),
            read_rate=payload.get("read_rate", 500.0),
            read_gap=payload.get("read_gap", 0.001),
            retry_aborted_reads=payload.get("retry_aborted_reads", False),
            invalidation_loss=payload.get("invalidation_loss", 0.2),
            invalidation_latency_mean=payload.get(
                "invalidation_latency_mean", 0.05
            ),
            invalidation_outages=tuple(
                tuple(window)
                for window in payload.get("invalidation_outages", ())
            ),
        )


@dataclass(slots=True)
class ScenarioSpec:
    """A fleet of edge caches in front of a tier of transactional backends.

    By default the tier is one :class:`BackendSpec` named
    :data:`DEFAULT_BACKEND_NAME` and every edge is placed on it — the
    paper's topology, bit-identical to the pre-backend-tier runner. Passing
    several ``backends`` plus a ``placement`` (a mapping from edge name to
    backend name, or a callable ``EdgeSpec -> backend name``) turns the
    scenario into a routed tier: each edge's cache misses, update clients
    and invalidation channel are wired to its assigned backend only, while
    one consistency monitor classifies the whole fleet using per-backend
    version namespaces.
    """

    name: str
    edges: list[EdgeSpec]
    seed: int = 1
    #: Simulated seconds of measured run (after warm-up).
    duration: float = 30.0
    #: Simulated seconds before measurement starts; caches fill and the
    #: first dependency lists propagate during warm-up.
    warmup: float = 5.0
    #: The paper's ``k``: the database-side dependency-list bound shared by
    #: the fleet; :data:`~repro.core.deplist.UNBOUNDED` for Theorem 1,
    #: 0 to disable dependency tracking. Backends may override it.
    deplist_max: int = 5
    #: Dependency-list pruning order: "lru" (the paper) or the ablation
    #: alternatives "newest-version" / "random". Backends may override it.
    pruning_policy: str = "lru"
    timing: TimingConfig = field(default_factory=TimingConfig)
    monitor_window: float = 1.0
    description: str = ""
    #: The backend tier, in build order. Defaults to one default backend.
    backends: list[BackendSpec] = field(default_factory=list)
    #: Edge name -> backend name. Accepts a mapping (possibly partial —
    #: unmapped edges go to the first backend) or a callable
    #: ``EdgeSpec -> backend name``; normalised to a complete dict at
    #: construction so specs stay plain picklable data.
    placement: Mapping[str, str] | Callable[[EdgeSpec], str] | None = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one edge"
            )
        names = [edge.name for edge in self.edges]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"scenario {self.name!r} has duplicate edge names: {duplicates}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {self.warmup}")
        if self.monitor_window <= 0:
            raise ConfigurationError(
                f"monitor_window must be positive, got {self.monitor_window}"
            )
        if self.deplist_max != UNBOUNDED and self.deplist_max < 0:
            raise ConfigurationError(
                f"deplist_max must be >= 0 or UNBOUNDED, got {self.deplist_max}"
            )
        validate_pruning_policy(self.pruning_policy)
        if not self.backends:
            self.backends = [BackendSpec(name=DEFAULT_BACKEND_NAME)]
        backend_names = [backend.name for backend in self.backends]
        if len(set(backend_names)) != len(backend_names):
            duplicates = sorted(
                {n for n in backend_names if backend_names.count(n) > 1}
            )
            raise ConfigurationError(
                f"scenario {self.name!r} has duplicate backend names: "
                f"{duplicates}"
            )
        self.placement = self._resolve_placement(set(backend_names))

    def _resolve_placement(self, backend_names: set[str]) -> dict[str, str]:
        """Normalise ``placement`` to a complete edge-name -> backend-name map."""
        default = self.backends[0].name
        if callable(self.placement):
            resolved = {edge.name: self.placement(edge) for edge in self.edges}
        else:
            given = dict(self.placement or {})
            unknown_edges = sorted(set(given) - {e.name for e in self.edges})
            if unknown_edges:
                raise ConfigurationError(
                    f"scenario {self.name!r}: placement names unknown edges "
                    f"{unknown_edges}"
                )
            resolved = {
                edge.name: given.get(edge.name, default) for edge in self.edges
            }
        unknown = sorted(set(resolved.values()) - backend_names)
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r}: placement routes edges to unknown "
                f"backends {unknown} (have {sorted(backend_names)})"
            )
        return resolved

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def total_time(self) -> float:
        return self.warmup + self.duration

    def edge(self, name: str) -> EdgeSpec:
        """The edge spec named ``name``."""
        for edge in self.edges:
            if edge.name == name:
                return edge
        raise KeyError(f"no edge named {name!r} in scenario {self.name!r}")

    # ------------------------------------------------------------------
    # Backend tier
    # ------------------------------------------------------------------

    def backend(self, name: str) -> BackendSpec:
        """The backend spec named ``name``."""
        for backend in self.backends:
            if backend.name == name:
                return backend
        raise KeyError(f"no backend named {name!r} in scenario {self.name!r}")

    def backend_for(self, edge_name: str) -> BackendSpec:
        """The backend serving the edge named ``edge_name``."""
        target = self.placement.get(edge_name)
        if target is None:
            raise KeyError(
                f"no edge named {edge_name!r} in scenario {self.name!r}"
            )
        return self.backend(target)

    def edges_on(self, backend_name: str) -> list[EdgeSpec]:
        """Every edge placed on ``backend_name``, in spec order."""
        self.backend(backend_name)  # raise KeyError for unknown backends
        return [
            edge
            for edge in self.edges
            if self.placement[edge.name] == backend_name
        ]

    def backend_deplist_max(self, backend: BackendSpec) -> int:
        """The effective dependency-list bound of ``backend``."""
        return (
            self.deplist_max
            if backend.deplist_max is None
            else backend.deplist_max
        )

    def backend_timing(self, backend: BackendSpec) -> TimingConfig:
        """The effective timing profile of ``backend``."""
        return self.timing if backend.timing is None else backend.timing

    def backend_pruning_policy(self, backend: BackendSpec) -> str:
        """The effective pruning policy of ``backend``."""
        return (
            self.pruning_policy
            if backend.pruning_policy is None
            else backend.pruning_policy
        )

    @classmethod
    def from_column(
        cls,
        config: "ColumnConfig",
        workload: Workload,
        *,
        read_workload: Workload | None = None,
        name: str = "column",
        backends: list[BackendSpec] | None = None,
    ) -> "ScenarioSpec":
        """A one-edge scenario equivalent to a legacy single-column run.

        With the default ``backends`` the resulting spec executes
        bit-identically to the pre-scenario ``run_column`` for the same
        config and workloads (the golden equivalence asserted by the
        integration tests); pass a custom tier (e.g. a sharded
        :class:`BackendSpec`) to re-run a column against it.
        """
        edge = EdgeSpec(
            name="edge0",
            workload=workload,
            read_workload=read_workload,
            cache_kind=config.cache_kind,
            strategy=config.strategy,
            ttl=config.ttl,
            cache_capacity=config.cache_capacity,
            update_rate=config.update_rate,
            read_rate=config.read_rate,
            read_gap=config.read_gap,
            retry_aborted_reads=config.retry_aborted_reads,
            invalidation_loss=config.invalidation_loss,
            invalidation_latency_mean=config.invalidation_latency_mean,
        )
        return cls(
            name=name,
            edges=[edge],
            seed=config.seed,
            duration=config.duration,
            warmup=config.warmup,
            deplist_max=config.deplist_max,
            pruning_policy=config.pruning_policy,
            timing=config.timing,
            monitor_window=config.monitor_window,
            backends=list(backends) if backends else [],
        )

    def edge_config(self, edge: EdgeSpec) -> "ColumnConfig":
        """The :class:`ColumnConfig` equivalent of one edge of this scenario.

        Used to stamp per-edge results with a self-describing config;
        ``deplist_limit`` has no single-column equivalent and is carried by
        the edge spec only. Backend-level overrides (deplist bound, timing,
        pruning) resolve through the edge's assigned backend.
        """
        from repro.experiments.config import ColumnConfig

        backend = self.backend_for(edge.name)
        return ColumnConfig(
            seed=self.seed,
            duration=self.duration,
            warmup=self.warmup,
            update_rate=edge.update_rate,
            read_rate=edge.read_rate,
            read_gap=edge.read_gap,
            deplist_max=self.backend_deplist_max(backend),
            pruning_policy=self.backend_pruning_policy(backend),
            strategy=edge.strategy,
            cache_kind=edge.cache_kind,
            ttl=edge.ttl,
            cache_capacity=edge.cache_capacity,
            invalidation_loss=edge.invalidation_loss,
            invalidation_latency_mean=edge.invalidation_latency_mean,
            timing=self.backend_timing(backend),
            monitor_window=self.monitor_window,
            retry_aborted_reads=edge.retry_aborted_reads,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description of the whole topology.

        Round-trips through :meth:`from_dict` when every edge workload is
        portable (the synthetic families), so ``--json`` scenario artifacts
        can be replayed from the CLI.
        """
        return {
            "scenario": self.name,
            "description": self.description,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "deplist_max": self.deplist_max,
            "pruning_policy": self.pruning_policy,
            "timing": asdict(self.timing),
            "monitor_window": self.monitor_window,
            "edges": [edge.as_dict() for edge in self.edges],
            "backends": [backend.as_dict() for backend in self.backends],
            "placement": dict(self.placement),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ScenarioSpec":
        """Rebuild a scenario from :meth:`as_dict` output (the round-trip
        loader behind ``repro-experiments scenario --spec file.json``).

        Payloads from before the backend tier (no ``backends`` key) load
        onto the default single backend.
        """
        timing = payload.get("timing")
        return cls(
            name=payload.get("scenario") or payload.get("name") or "scenario",
            description=payload.get("description", ""),
            seed=payload.get("seed", 1),
            duration=payload.get("duration", 30.0),
            warmup=payload.get("warmup", 5.0),
            deplist_max=payload.get("deplist_max", 5),
            pruning_policy=payload.get("pruning_policy", "lru"),
            timing=TimingConfig() if timing is None else TimingConfig(**timing),
            monitor_window=payload.get("monitor_window", 1.0),
            edges=[EdgeSpec.from_dict(edge) for edge in payload["edges"]],
            backends=[
                BackendSpec.from_dict(backend)
                for backend in payload.get("backends", [])
            ],
            placement=payload.get("placement"),
        )
