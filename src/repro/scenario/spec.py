"""Declarative description of a multi-edge topology.

A :class:`ScenarioSpec` is the paper's Figure 2 generalised to a fleet: one
transactional backend, one omniscient consistency monitor, and N edge caches
— each an :class:`EdgeSpec` with its own cache variant, invalidation channel
quality, and client populations. Specs are plain data validated at
construction; building one runs nothing. :func:`repro.scenario.run_scenario`
executes them.

The legacy single-column API (:func:`repro.experiments.runner.run_column`)
is a shim over this layer: a one-edge scenario built with
:meth:`ScenarioSpec.from_column` reproduces the pre-scenario runner's
results bit for bit (see the RNG naming notes in
:mod:`repro.scenario.runner`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from repro.cache.kinds import CacheKind
from repro.core.deplist import UNBOUNDED
from repro.core.strategies import Strategy
from repro.db.database import TimingConfig
from repro.errors import ConfigurationError
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.experiments.config import ColumnConfig

__all__ = ["EdgeSpec", "ScenarioSpec"]

#: Cache kinds that run the T-Cache consistency checks (and may therefore
#: carry a per-edge ``deplist_limit``).
_CHECKING_KINDS = (CacheKind.TCACHE, CacheKind.MULTIVERSION)


@dataclass(slots=True)
class EdgeSpec:
    """One edge cache plus the client populations it serves.

    Defaults reproduce the paper's §IV column: read-only clients at
    500 txn/s against the cache, update clients at 100 txn/s against the
    shared database, 20 % of invalidations dropped uniformly at random.
    """

    #: Unique name within the scenario; also names the cache, channel and
    #: clients, and keys the per-edge monitor series.
    name: str
    #: Drives this edge's update clients (and, absent ``read_workload``, its
    #: read-only clients). Its key universe is loaded into the database.
    workload: Workload
    #: Separate access distribution for the read-only clients.
    read_workload: Workload | None = None

    cache_kind: CacheKind = CacheKind.TCACHE
    strategy: Strategy = Strategy.ABORT
    #: Entry lifetime for :attr:`CacheKind.TTL`.
    ttl: float | None = None
    #: Optional cache capacity (None: everything fits, as in the paper).
    cache_capacity: int | None = None
    #: Per-edge cap on how many dependency entries the cache *consults* when
    #: checking reads (§VII: heterogeneous list bounds). The database still
    #: ships lists bounded by the scenario's ``deplist_max``; an edge with a
    #: smaller limit checks only the freshest ``deplist_limit`` entries.
    #: ``None`` consults the full shipped list.
    deplist_limit: int | None = None

    #: Aggregate update-transaction rate; 0 models a read-only region.
    update_rate: float = 100.0
    read_rate: float = 500.0
    #: Client-to-cache round trip between the reads of one transaction.
    read_gap: float = 0.001
    #: Retry aborted read-only transactions at the client (off in the paper).
    retry_aborted_reads: bool = False

    #: Fraction of this edge's invalidations dropped (§IV: 20 %).
    invalidation_loss: float = 0.2
    #: Mean invalidation delivery latency (exponential), seconds.
    invalidation_latency_mean: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("edge name must be non-empty")
        if self.update_rate < 0 or self.read_rate <= 0:
            raise ConfigurationError(
                f"edge {self.name!r}: update_rate must be >= 0 and "
                f"read_rate > 0, got {self.update_rate}/{self.read_rate}"
            )
        if self.read_gap < 0:
            raise ConfigurationError(
                f"edge {self.name!r}: read_gap must be >= 0, got {self.read_gap}"
            )
        if not 0.0 <= self.invalidation_loss <= 1.0:
            raise ConfigurationError(
                f"edge {self.name!r}: invalidation_loss must be in [0, 1], "
                f"got {self.invalidation_loss}"
            )
        if self.invalidation_latency_mean < 0:
            raise ConfigurationError(
                f"edge {self.name!r}: invalidation_latency_mean must be >= 0, "
                f"got {self.invalidation_latency_mean}"
            )
        if self.cache_kind is CacheKind.TTL and (self.ttl is None or self.ttl <= 0):
            raise ConfigurationError(
                f"edge {self.name!r}: CacheKind.TTL requires a positive ttl"
            )
        if self.cache_capacity is not None and self.cache_capacity < 1:
            raise ConfigurationError(
                f"edge {self.name!r}: cache_capacity must be >= 1 or None, "
                f"got {self.cache_capacity}"
            )
        if self.deplist_limit is not None:
            if self.cache_kind not in _CHECKING_KINDS:
                raise ConfigurationError(
                    f"edge {self.name!r}: deplist_limit only applies to "
                    f"consistency-checking caches, not {self.cache_kind.name}"
                )
            if self.deplist_limit < 0:
                raise ConfigurationError(
                    f"edge {self.name!r}: deplist_limit must be >= 0 or None, "
                    f"got {self.deplist_limit}"
                )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description (workloads by class name, enums by name)."""
        return {
            "name": self.name,
            "workload": type(self.workload).__name__,
            "read_workload": (
                None
                if self.read_workload is None
                else type(self.read_workload).__name__
            ),
            "cache_kind": self.cache_kind.name,
            "strategy": self.strategy.name,
            "ttl": self.ttl,
            "cache_capacity": self.cache_capacity,
            "deplist_limit": self.deplist_limit,
            "update_rate": self.update_rate,
            "read_rate": self.read_rate,
            "read_gap": self.read_gap,
            "retry_aborted_reads": self.retry_aborted_reads,
            "invalidation_loss": self.invalidation_loss,
            "invalidation_latency_mean": self.invalidation_latency_mean,
        }


@dataclass(slots=True)
class ScenarioSpec:
    """A fleet of edge caches in front of one transactional backend."""

    name: str
    edges: list[EdgeSpec]
    seed: int = 1
    #: Simulated seconds of measured run (after warm-up).
    duration: float = 30.0
    #: Simulated seconds before measurement starts; caches fill and the
    #: first dependency lists propagate during warm-up.
    warmup: float = 5.0
    #: The paper's ``k``: the database-side dependency-list bound shared by
    #: the fleet; :data:`~repro.core.deplist.UNBOUNDED` for Theorem 1,
    #: 0 to disable dependency tracking.
    deplist_max: int = 5
    #: Dependency-list pruning order: "lru" (the paper) or the ablation
    #: alternatives "newest-version" / "random".
    pruning_policy: str = "lru"
    timing: TimingConfig = field(default_factory=TimingConfig)
    monitor_window: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.edges:
            raise ConfigurationError(
                f"scenario {self.name!r} needs at least one edge"
            )
        names = [edge.name for edge in self.edges]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise ConfigurationError(
                f"scenario {self.name!r} has duplicate edge names: {duplicates}"
            )
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {self.warmup}")
        if self.monitor_window <= 0:
            raise ConfigurationError(
                f"monitor_window must be positive, got {self.monitor_window}"
            )
        if self.deplist_max != UNBOUNDED and self.deplist_max < 0:
            raise ConfigurationError(
                f"deplist_max must be >= 0 or UNBOUNDED, got {self.deplist_max}"
            )

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def total_time(self) -> float:
        return self.warmup + self.duration

    def edge(self, name: str) -> EdgeSpec:
        """The edge spec named ``name``."""
        for edge in self.edges:
            if edge.name == name:
                return edge
        raise KeyError(f"no edge named {name!r} in scenario {self.name!r}")

    @classmethod
    def from_column(
        cls,
        config: "ColumnConfig",
        workload: Workload,
        *,
        read_workload: Workload | None = None,
        name: str = "column",
    ) -> "ScenarioSpec":
        """A one-edge scenario equivalent to a legacy single-column run.

        The resulting spec executes bit-identically to the pre-scenario
        ``run_column`` for the same config and workloads (the golden
        equivalence asserted by the integration tests).
        """
        edge = EdgeSpec(
            name="edge0",
            workload=workload,
            read_workload=read_workload,
            cache_kind=config.cache_kind,
            strategy=config.strategy,
            ttl=config.ttl,
            cache_capacity=config.cache_capacity,
            update_rate=config.update_rate,
            read_rate=config.read_rate,
            read_gap=config.read_gap,
            retry_aborted_reads=config.retry_aborted_reads,
            invalidation_loss=config.invalidation_loss,
            invalidation_latency_mean=config.invalidation_latency_mean,
        )
        return cls(
            name=name,
            edges=[edge],
            seed=config.seed,
            duration=config.duration,
            warmup=config.warmup,
            deplist_max=config.deplist_max,
            pruning_policy=config.pruning_policy,
            timing=config.timing,
            monitor_window=config.monitor_window,
        )

    def edge_config(self, edge: EdgeSpec) -> "ColumnConfig":
        """The :class:`ColumnConfig` equivalent of one edge of this scenario.

        Used to stamp per-edge results with a self-describing config;
        ``deplist_limit`` has no single-column equivalent and is carried by
        the edge spec only.
        """
        from repro.experiments.config import ColumnConfig

        return ColumnConfig(
            seed=self.seed,
            duration=self.duration,
            warmup=self.warmup,
            update_rate=edge.update_rate,
            read_rate=edge.read_rate,
            read_gap=edge.read_gap,
            deplist_max=self.deplist_max,
            pruning_policy=self.pruning_policy,
            strategy=edge.strategy,
            cache_kind=edge.cache_kind,
            ttl=edge.ttl,
            cache_capacity=edge.cache_capacity,
            invalidation_loss=edge.invalidation_loss,
            invalidation_latency_mean=edge.invalidation_latency_mean,
            timing=self.timing,
            monitor_window=self.monitor_window,
            retry_aborted_reads=edge.retry_aborted_reads,
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description of the whole topology."""
        return {
            "scenario": self.name,
            "description": self.description,
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "deplist_max": self.deplist_max,
            "pruning_policy": self.pruning_policy,
            "timing": asdict(self.timing),
            "monitor_window": self.monitor_window,
            "edges": [edge.as_dict() for edge in self.edges],
        }
