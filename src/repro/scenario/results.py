"""Result records for single edges and whole fleets.

:class:`ColumnResult` — everything an experiment needs from one finished
edge (historically "one column" of a figure) — lives here so that both the
legacy single-column runner and the scenario executor can produce it;
:mod:`repro.experiments.runner` re-exports it under its historical import
path.

:class:`ScenarioResult` adds the fleet view: per-edge results in spec order,
:class:`FleetAggregates` computed from the shared consistency monitor, and —
since the backend became a routed tier — one :class:`BackendAggregates` per
backend (its load, commit counts and the read-only classifications of the
edges placed on it).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.cache.base import CacheStats
from repro.clients.read_client import ReadClientStats
from repro.clients.update_client import UpdateClientStats
from repro.db.database import DatabaseStats
from repro.monitor.stats import CLASSES, ClassCounts
from repro.sim.channel import ChannelStats

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.experiments.config import ColumnConfig
    from repro.scenario.spec import EdgeSpec, ScenarioSpec

__all__ = [
    "BackendAggregates",
    "ColumnResult",
    "FleetAggregates",
    "ScenarioResult",
]


@dataclass(slots=True)
class ColumnResult:
    """Everything an experiment needs from one finished edge run."""

    config: ColumnConfig
    #: Classification counts within the measured window only.
    counts: ClassCounts
    cache_stats: CacheStats
    db_stats: DatabaseStats
    channel_stats: ChannelStats
    update_client_stats: UpdateClientStats
    read_client_stats: ReadClientStats
    #: Per-window rates across the whole run including warm-up (Figs. 4, 5).
    series: list[dict[str, float]] = field(default_factory=list)
    #: T-Cache detection counters (zero for the baselines).
    detections_eq1: int = 0
    detections_eq2: int = 0
    retries_resolved: int = 0
    #: ``repro.telemetry/1`` metrics snapshot, set only for traced points.
    telemetry: dict | None = None
    #: Raw trace records of a traced point (sim-time keyed). Exported as
    #: JSONL by the CLI; never embedded in artifacts, which keeps traced and
    #: untraced artifacts byte-identical modulo the telemetry section.
    trace: list | None = None

    # ------------------------------------------------------------------
    # Figure metrics
    # ------------------------------------------------------------------

    @property
    def inconsistency_ratio(self) -> float:
        """Inconsistent commits / all commits, measured window."""
        return self.counts.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        """Detected / potential inconsistencies, measured window."""
        return self.counts.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.counts.abort_ratio

    @property
    def hit_ratio(self) -> float:
        return self.cache_stats.hit_ratio

    @property
    def db_access_rate(self) -> float:
        """Cache-originated database reads per measured second.

        Uses whole-run cache counters scaled to the full run time; the
        steady-state rate is what Fig. 7's bottom panels report.
        """
        return self.cache_stats.db_accesses / self.config.total_time

    def class_shares(self) -> dict[str, float]:
        """Fractions of read-only transactions per class (Figs. 6, 8)."""
        total = self.counts.total or 1
        return {label: getattr(self.counts, label) / total for label in CLASSES}


@dataclass(slots=True)
class BackendAggregates:
    """One backend database's view of the scenario it served.

    ``counts`` classifies the read-only transactions of the edges placed on
    this backend (measured window, from the monitor's per-backend series);
    ``db_stats`` is the backend's own live counters (whole run).
    """

    #: Backend name (= its version namespace).
    name: str
    #: Names of the edges placed on this backend, in spec order.
    edges: list[str]
    #: Read-only classification counts of this backend's edges (measured).
    counts: ClassCounts
    #: The backend database's own counters (whole run).
    db_stats: DatabaseStats
    #: Whole-run cache-originated reads this backend served.
    db_accesses: int
    #: ``db_accesses`` per simulated second — this backend's share of the
    #: tier's cache-miss read load.
    read_load: float

    @property
    def update_commits(self) -> int:
        """Committed update transactions at this backend (whole run)."""
        return self.db_stats.committed

    @property
    def inconsistency_ratio(self) -> float:
        """Inconsistent commits / all commits among this backend's edges."""
        return self.counts.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        return self.counts.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.counts.abort_ratio

    def as_dict(self) -> dict[str, object]:
        """JSON-safe record including the derived ratios."""
        payload = asdict(self)
        payload["update_commits"] = self.update_commits
        payload["inconsistency_ratio"] = self.inconsistency_ratio
        payload["detection_ratio"] = self.detection_ratio
        payload["abort_ratio"] = self.abort_ratio
        return payload


@dataclass(slots=True)
class FleetAggregates:
    """Fleet-level metrics of one scenario run, measured window only.

    Ratios come from the shared monitor's fleet-wide classification (the
    same numbers as summing the per-edge counts); the variances quantify
    cross-edge heterogeneity (population variance over per-edge ratios).
    """

    #: Fleet-wide classification counts within the measured window.
    counts: ClassCounts
    #: Whole-run cache reads/hits summed over every edge.
    cache_reads: int
    cache_hits: int
    #: Whole-run cache-originated backend reads summed over every edge.
    db_accesses: int
    #: ``db_accesses`` per simulated second (whole run) — the backend load
    #: the fleet generates beyond the update traffic.
    backend_read_rate: float
    #: Committed update transactions at the shared backend (whole run).
    update_commits: int
    #: Population variance of per-edge inconsistency ratios.
    inconsistency_variance: float
    #: Population variance of per-edge cache hit ratios.
    hit_ratio_variance: float
    #: Backend name -> inconsistency ratio of the edges placed on it — the
    #: cross-backend split of the fleet-wide ratio (one entry for
    #: single-backend scenarios).
    inconsistency_by_backend: dict[str, float] = field(default_factory=dict)

    @property
    def inconsistency_ratio(self) -> float:
        """Fleet-wide inconsistent commits / all commits."""
        return self.counts.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        """Fleet-wide detected / potential inconsistencies."""
        return self.counts.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.counts.abort_ratio

    @property
    def hit_ratio(self) -> float:
        """Fleet-wide cache hit ratio (whole run)."""
        return self.cache_hits / self.cache_reads if self.cache_reads else 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-safe record including the derived ratios."""
        payload = asdict(self)
        payload["inconsistency_ratio"] = self.inconsistency_ratio
        payload["detection_ratio"] = self.detection_ratio
        payload["abort_ratio"] = self.abort_ratio
        payload["hit_ratio"] = self.hit_ratio
        return payload


@dataclass(slots=True)
class ScenarioResult:
    """Results of one executed scenario: per-edge, per-backend and fleet
    views."""

    spec: ScenarioSpec
    #: One :class:`ColumnResult` per edge, in spec order. Each carries its
    #: assigned backend's stats as its ``db_stats`` (edges on the same
    #: backend hold the same object).
    edges: list[ColumnResult]
    fleet: FleetAggregates
    #: Tier-wide backend counters. For a single backend this is the
    #: backend's own stats object (the same one every edge result holds);
    #: for a routed tier it is the sum over backends.
    db_stats: DatabaseStats
    #: One :class:`BackendAggregates` per backend, in spec order.
    backends: list[BackendAggregates] = field(default_factory=list)
    #: ``repro.telemetry/1`` metrics snapshot, set only for traced runs.
    telemetry: dict | None = None
    #: Raw trace records of a traced run (see :class:`ColumnResult.trace`).
    trace: list | None = None

    def pairs(self) -> Iterator[tuple[EdgeSpec, ColumnResult]]:
        """``(edge spec, edge result)`` pairs in spec order."""
        return zip(self.spec.edges, self.edges)

    def edge(self, name: str) -> ColumnResult:
        """The result of the edge named ``name``."""
        for edge_spec, result in self.pairs():
            if edge_spec.name == name:
                return result
        raise KeyError(
            f"no edge named {name!r} in scenario {self.spec.name!r}"
        )

    def backend(self, name: str) -> BackendAggregates:
        """The aggregates of the backend named ``name``."""
        for aggregate in self.backends:
            if aggregate.name == name:
                return aggregate
        raise KeyError(
            f"no backend named {name!r} in scenario {self.spec.name!r}"
        )

    def to_artifact(self) -> dict[str, object]:
        """JSON-safe record: topology + per-edge counts/series + per-backend
        + fleet aggregates."""
        payload = self.spec.as_dict()
        payload["edges"] = [
            {
                **edge_spec.as_dict(),
                "backend": self.spec.placement[edge_spec.name],
                "counts": asdict(result.counts),
                "series": result.series,
                "hit_ratio": result.hit_ratio,
                "db_access_rate": result.db_access_rate,
                "detections_eq1": result.detections_eq1,
                "detections_eq2": result.detections_eq2,
                "retries_resolved": result.retries_resolved,
            }
            for edge_spec, result in self.pairs()
        ]
        # Merge each backend's spec (already in the payload) with its
        # aggregates, mirroring the per-edge records; the merged entries
        # still satisfy ScenarioSpec.from_dict, so result artifacts replay.
        payload["backends"] = [
            {**backend_spec.as_dict(), **aggregate.as_dict()}
            for backend_spec, aggregate in zip(self.spec.backends, self.backends)
        ]
        payload["fleet"] = self.fleet.as_dict()
        payload["db_stats"] = asdict(self.db_stats)
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return payload
