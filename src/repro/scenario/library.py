"""Ready-made multi-edge scenarios the single-column API could not express.

Three families, all parameterised and cheap to scale down for smoke tests:

* :func:`heterogeneous_loss_fleet` — N identical edges whose invalidation
  channels degrade progressively (0 % loss at the first edge, ``max_loss``
  at the last). The fleet aggregate shows how one bad region drags global
  inconsistency while the per-edge rows localise it.
* :func:`geo_skewed_scenario` — regions with *disjoint* hot sets (each edge
  updates and mostly reads its own key slice) plus a globally shared,
  globally updated segment that every region occasionally reads — the
  TransEdge/CausalMesh evaluation shape.
* :func:`flash_crowd_scenario` — one edge serving a flash crowd (high read
  rate concentrated on a small hot set) next to quiet edges, all over the
  same catalogue.
"""

from __future__ import annotations

from repro.core.strategies import Strategy
from repro.errors import ConfigurationError
from repro.scenario.spec import EdgeSpec, ScenarioSpec
from repro.workloads.synthetic import (
    MixtureWorkload,
    OffsetWorkload,
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    UniformWorkload,
)

__all__ = [
    "flash_crowd_scenario",
    "geo_skewed_scenario",
    "heterogeneous_loss_fleet",
]


def heterogeneous_loss_fleet(
    *,
    edges: int = 3,
    max_loss: float = 0.4,
    n_objects: int = 1000,
    cluster_size: int = 5,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 101,
    read_rate: float = 400.0,
    update_rate: float = 80.0,
    strategy: Strategy = Strategy.ABORT,
) -> ScenarioSpec:
    """N identical edges over one catalogue, loss ramping from 0 to max."""
    if edges < 1:
        raise ConfigurationError(f"need at least one edge, got {edges}")
    workload = PerfectClusterWorkload(n_objects=n_objects, cluster_size=cluster_size)
    specs = [
        EdgeSpec(
            name=f"edge{index}",
            workload=workload,
            strategy=strategy,
            read_rate=read_rate,
            update_rate=update_rate,
            # 0 % at the first edge, max_loss at the last; a one-edge
            # "fleet" degenerates to the clean end of the ramp.
            invalidation_loss=max_loss * index / max(1, edges - 1),
        )
        for index in range(edges)
    ]
    return ScenarioSpec(
        name=f"hetero-loss-{edges}edges",
        description=(
            f"{edges} edges over one catalogue; invalidation loss ramps "
            f"0 -> {max_loss:g}"
        ),
        edges=specs,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def geo_skewed_scenario(
    *,
    regions: int = 3,
    objects_per_region: int = 600,
    shared_objects: int = 200,
    cluster_size: int = 5,
    remote_read_fraction: float = 0.1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 211,
    read_rate: float = 400.0,
    update_rate: float = 80.0,
    shared_update_rate: float = 40.0,
) -> ScenarioSpec:
    """Regions with disjoint hot sets plus a globally shared segment.

    Each region's updates stay local; its reads are a mixture of the local
    slice and the shared segment (``remote_read_fraction``). The shared
    segment is updated by a dedicated write-heavy "origin" edge, so every
    region's view of it depends on that region's invalidation quality.
    """
    if regions < 2:
        raise ConfigurationError(f"geo skew needs >= 2 regions, got {regions}")
    if not 0.0 <= remote_read_fraction <= 1.0:
        raise ConfigurationError(
            f"remote_read_fraction must be in [0, 1], got {remote_read_fraction}"
        )
    shared = OffsetWorkload(
        PerfectClusterWorkload(
            n_objects=shared_objects, cluster_size=cluster_size
        ),
        offset=regions * objects_per_region,
    )
    specs = []
    for index in range(regions):
        local = OffsetWorkload(
            PerfectClusterWorkload(
                n_objects=objects_per_region, cluster_size=cluster_size
            ),
            offset=index * objects_per_region,
        )
        specs.append(
            EdgeSpec(
                name=f"region{index}",
                workload=local,
                read_workload=MixtureWorkload(
                    [(1.0 - remote_read_fraction, local), (remote_read_fraction, shared)]
                ),
                read_rate=read_rate,
                update_rate=update_rate,
                # Farther regions see progressively worse invalidation paths.
                invalidation_loss=0.1 + 0.2 * index / max(1, regions - 1),
                invalidation_latency_mean=0.05 * (1 + index),
            )
        )
    specs.append(
        EdgeSpec(
            name="origin",
            workload=shared,
            read_rate=100.0,
            update_rate=shared_update_rate,
            invalidation_loss=0.05,
            invalidation_latency_mean=0.01,
        )
    )
    return ScenarioSpec(
        name=f"geo-skew-{regions}regions",
        description=(
            f"{regions} regions with disjoint hot sets + shared segment "
            f"({remote_read_fraction:.0%} remote reads)"
        ),
        edges=specs,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def flash_crowd_scenario(
    *,
    quiet_edges: int = 2,
    n_objects: int = 1000,
    hot_objects: int = 100,
    cluster_size: int = 5,
    crowd_read_rate: float = 1500.0,
    quiet_read_rate: float = 150.0,
    update_rate: float = 100.0,
    hot_alpha: float = 4.0,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 307,
) -> ScenarioSpec:
    """One flash-crowd edge hammering a hot subset next to quiet edges.

    All edges share one catalogue updated at ``update_rate`` from the first
    quiet edge (the steady background traffic); the crowd edge itself is a
    read-only population concentrated on the first ``hot_objects`` keys with
    Pareto skew ``hot_alpha``.
    """
    if quiet_edges < 1:
        raise ConfigurationError(
            f"need at least one quiet edge, got {quiet_edges}"
        )
    if hot_objects > n_objects:
        raise ConfigurationError(
            f"hot_objects {hot_objects} exceeds catalogue size {n_objects}"
        )
    catalogue = PerfectClusterWorkload(n_objects=n_objects, cluster_size=cluster_size)
    hot_set = ParetoClusterWorkload(
        n_objects=hot_objects, cluster_size=cluster_size, alpha=hot_alpha
    )
    specs = [
        EdgeSpec(
            name="crowd",
            workload=catalogue,
            read_workload=hot_set,
            read_rate=crowd_read_rate,
            update_rate=0.0,  # a pure read surge
            strategy=Strategy.EVICT,
            invalidation_loss=0.2,
        )
    ]
    for index in range(quiet_edges):
        specs.append(
            EdgeSpec(
                name=f"quiet{index}",
                workload=catalogue,
                read_workload=UniformWorkload(n_objects=n_objects),
                read_rate=quiet_read_rate,
                # Background update traffic originates at the quiet edges.
                update_rate=update_rate if index == 0 else update_rate / 2,
                invalidation_loss=0.2,
            )
        )
    return ScenarioSpec(
        name=f"flash-crowd-{1 + quiet_edges}edges",
        description=(
            f"read surge ({crowd_read_rate:g}/s on {hot_objects} hot keys) "
            f"next to {quiet_edges} quiet edges"
        ),
        edges=specs,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )
