"""Ready-made multi-edge scenarios the single-column API could not express.

Five families, all parameterised and cheap to scale down for smoke tests:

* :func:`heterogeneous_loss_fleet` — N identical edges whose invalidation
  channels degrade progressively (0 % loss at the first edge, ``max_loss``
  at the last). The fleet aggregate shows how one bad region drags global
  inconsistency while the per-edge rows localise it.
* :func:`geo_skewed_scenario` — regions with *disjoint* hot sets (each edge
  updates and mostly reads its own key slice) plus a globally shared,
  globally updated segment that every region occasionally reads — the
  TransEdge/CausalMesh evaluation shape.
* :func:`flash_crowd_scenario` — one edge serving a flash crowd (high read
  rate concentrated on a small hot set) next to quiet edges, all over the
  same catalogue.

Four exercise the routed backend tier:

* :func:`regional_backends_scenario` — one backend database per region,
  several edges per region placed on it (a metro edge with a clean channel,
  outskirts with lossier ones), each region over its own key slice — the
  TransEdge shape of edge nodes over partitioned backends.
* :func:`hot_backend_overload` — a tier where one backend serves a
  flash-crowd edge while its peers idle; the per-backend aggregates expose
  the load imbalance that edge-level views average away.
* :func:`region_failure_drill` — one region's invalidation pipeline blacks
  out mid-run while a share of its users is displaced onto the surviving
  regions' backends; the drill measures both the failed region's stale
  serving and the survivors' absorption cost.
* :func:`capacity_planning_sweep` — not one fleet but a whole
  :class:`~repro.experiments.sweep.SweepSpec` grid: the regional tier re-run
  across load multipliers and shard counts on one shared seed, the "how
  much tier do we need" question as a chunked-dispatch-friendly workload.
"""

from __future__ import annotations

from repro.core.strategies import Strategy
from repro.errors import ConfigurationError
from repro.scenario.spec import BackendSpec, EdgeSpec, ScenarioSpec
from repro.workloads.synthetic import (
    MixtureWorkload,
    OffsetWorkload,
    ParetoClusterWorkload,
    PerfectClusterWorkload,
    PhaseSwitchWorkload,
    UniformWorkload,
)

__all__ = [
    "capacity_planning_sweep",
    "flash_crowd_scenario",
    "geo_skewed_scenario",
    "heterogeneous_loss_fleet",
    "hot_backend_overload",
    "region_failure_drill",
    "regional_backends_scenario",
]


def heterogeneous_loss_fleet(
    *,
    edges: int = 3,
    max_loss: float = 0.4,
    n_objects: int = 1000,
    cluster_size: int = 5,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 101,
    read_rate: float = 400.0,
    update_rate: float = 80.0,
    strategy: Strategy = Strategy.ABORT,
) -> ScenarioSpec:
    """N identical edges over one catalogue, loss ramping from 0 to max."""
    if edges < 1:
        raise ConfigurationError(f"need at least one edge, got {edges}")
    workload = PerfectClusterWorkload(n_objects=n_objects, cluster_size=cluster_size)
    specs = [
        EdgeSpec(
            name=f"edge{index}",
            workload=workload,
            strategy=strategy,
            read_rate=read_rate,
            update_rate=update_rate,
            # 0 % at the first edge, max_loss at the last; a one-edge
            # "fleet" degenerates to the clean end of the ramp.
            invalidation_loss=max_loss * index / max(1, edges - 1),
        )
        for index in range(edges)
    ]
    return ScenarioSpec(
        name=f"hetero-loss-{edges}edges",
        description=(
            f"{edges} edges over one catalogue; invalidation loss ramps "
            f"0 -> {max_loss:g}"
        ),
        edges=specs,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def geo_skewed_scenario(
    *,
    regions: int = 3,
    objects_per_region: int = 600,
    shared_objects: int = 200,
    cluster_size: int = 5,
    remote_read_fraction: float = 0.1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 211,
    read_rate: float = 400.0,
    update_rate: float = 80.0,
    shared_update_rate: float = 40.0,
) -> ScenarioSpec:
    """Regions with disjoint hot sets plus a globally shared segment.

    Each region's updates stay local; its reads are a mixture of the local
    slice and the shared segment (``remote_read_fraction``). The shared
    segment is updated by a dedicated write-heavy "origin" edge, so every
    region's view of it depends on that region's invalidation quality.
    """
    if regions < 2:
        raise ConfigurationError(f"geo skew needs >= 2 regions, got {regions}")
    if not 0.0 <= remote_read_fraction <= 1.0:
        raise ConfigurationError(
            f"remote_read_fraction must be in [0, 1], got {remote_read_fraction}"
        )
    shared = OffsetWorkload(
        PerfectClusterWorkload(
            n_objects=shared_objects, cluster_size=cluster_size
        ),
        offset=regions * objects_per_region,
    )
    specs = []
    for index in range(regions):
        local = OffsetWorkload(
            PerfectClusterWorkload(
                n_objects=objects_per_region, cluster_size=cluster_size
            ),
            offset=index * objects_per_region,
        )
        specs.append(
            EdgeSpec(
                name=f"region{index}",
                workload=local,
                read_workload=MixtureWorkload(
                    [(1.0 - remote_read_fraction, local), (remote_read_fraction, shared)]
                ),
                read_rate=read_rate,
                update_rate=update_rate,
                # Farther regions see progressively worse invalidation paths.
                invalidation_loss=0.1 + 0.2 * index / max(1, regions - 1),
                invalidation_latency_mean=0.05 * (1 + index),
            )
        )
    specs.append(
        EdgeSpec(
            name="origin",
            workload=shared,
            read_rate=100.0,
            update_rate=shared_update_rate,
            invalidation_loss=0.05,
            invalidation_latency_mean=0.01,
        )
    )
    return ScenarioSpec(
        name=f"geo-skew-{regions}regions",
        description=(
            f"{regions} regions with disjoint hot sets + shared segment "
            f"({remote_read_fraction:.0%} remote reads)"
        ),
        edges=specs,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def flash_crowd_scenario(
    *,
    quiet_edges: int = 2,
    n_objects: int = 1000,
    hot_objects: int = 100,
    cluster_size: int = 5,
    crowd_read_rate: float = 1500.0,
    quiet_read_rate: float = 150.0,
    update_rate: float = 100.0,
    hot_alpha: float = 4.0,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 307,
) -> ScenarioSpec:
    """One flash-crowd edge hammering a hot subset next to quiet edges.

    All edges share one catalogue updated at ``update_rate`` from the first
    quiet edge (the steady background traffic); the crowd edge itself is a
    read-only population concentrated on the first ``hot_objects`` keys with
    Pareto skew ``hot_alpha``.
    """
    if quiet_edges < 1:
        raise ConfigurationError(
            f"need at least one quiet edge, got {quiet_edges}"
        )
    if hot_objects > n_objects:
        raise ConfigurationError(
            f"hot_objects {hot_objects} exceeds catalogue size {n_objects}"
        )
    catalogue = PerfectClusterWorkload(n_objects=n_objects, cluster_size=cluster_size)
    hot_set = ParetoClusterWorkload(
        n_objects=hot_objects, cluster_size=cluster_size, alpha=hot_alpha
    )
    specs = [
        EdgeSpec(
            name="crowd",
            workload=catalogue,
            read_workload=hot_set,
            read_rate=crowd_read_rate,
            update_rate=0.0,  # a pure read surge
            strategy=Strategy.EVICT,
            invalidation_loss=0.2,
        )
    ]
    for index in range(quiet_edges):
        specs.append(
            EdgeSpec(
                name=f"quiet{index}",
                workload=catalogue,
                read_workload=UniformWorkload(n_objects=n_objects),
                read_rate=quiet_read_rate,
                # Background update traffic originates at the quiet edges.
                update_rate=update_rate if index == 0 else update_rate / 2,
                invalidation_loss=0.2,
            )
        )
    return ScenarioSpec(
        name=f"flash-crowd-{1 + quiet_edges}edges",
        description=(
            f"read surge ({crowd_read_rate:g}/s on {hot_objects} hot keys) "
            f"next to {quiet_edges} quiet edges"
        ),
        edges=specs,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def regional_backends_scenario(
    *,
    regions: int = 2,
    edges_per_region: int = 2,
    objects_per_region: int = 400,
    cluster_size: int = 5,
    shards: int = 1,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 401,
    read_rate: float = 300.0,
    update_rate: float = 60.0,
    max_loss: float = 0.35,
) -> ScenarioSpec:
    """One backend database per region, several edges placed on each.

    Region ``r`` owns a disjoint key slice served by its own backend
    (optionally sharded); its first edge is the metro site with a clean
    invalidation channel, and each further edge sits farther out with a
    progressively lossier, slower channel. All edges of a region read and
    update the regional slice, so every backend carries its region's full
    update stream while the monitor splits inconsistency per backend.
    """
    if regions < 1:
        raise ConfigurationError(f"need at least one region, got {regions}")
    if edges_per_region < 1:
        raise ConfigurationError(
            f"need at least one edge per region, got {edges_per_region}"
        )
    backends = [
        BackendSpec(name=f"region{index}-db", shards=shards)
        for index in range(regions)
    ]
    edges: list[EdgeSpec] = []
    placement: dict[str, str] = {}
    for region in range(regions):
        slice_workload = OffsetWorkload(
            PerfectClusterWorkload(
                n_objects=objects_per_region, cluster_size=cluster_size
            ),
            offset=region * objects_per_region,
        )
        for rank in range(edges_per_region):
            # rank 0 is the metro edge; channels degrade with distance.
            distance = (
                rank / (edges_per_region - 1) if edges_per_region > 1 else 0.0
            )
            edge = EdgeSpec(
                name=f"region{region}-edge{rank}",
                workload=slice_workload,
                read_rate=read_rate,
                update_rate=update_rate / edges_per_region,
                invalidation_loss=max_loss * distance,
                invalidation_latency_mean=0.02 * (1 + 3 * distance),
            )
            edges.append(edge)
            placement[edge.name] = backends[region].name
    return ScenarioSpec(
        name=f"regional-backends-{regions}x{edges_per_region}",
        description=(
            f"{regions} regional backends ({shards} shard(s) each), "
            f"{edges_per_region} edges per region over disjoint key slices"
        ),
        edges=edges,
        backends=backends,
        placement=placement,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def hot_backend_overload(
    *,
    backends: int = 3,
    n_objects: int = 400,
    hot_objects: int = 100,
    cluster_size: int = 5,
    crowd_read_rate: float = 1200.0,
    quiet_read_rate: float = 150.0,
    update_rate: float = 100.0,
    hot_alpha: float = 4.0,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 503,
) -> ScenarioSpec:
    """One overloaded backend in an otherwise quiet tier.

    Backend 0 serves two edges: a steady updater over its whole slice and a
    read-only crowd edge hammering a small hot subset. Every other backend
    serves a single quiet edge over its own slice. The per-backend
    aggregates expose the skew — read load, update commits and
    inconsistency concentrate on the hot backend — which the fleet-level
    averages alone would hide.
    """
    if backends < 2:
        raise ConfigurationError(
            f"overload needs at least two backends, got {backends}"
        )
    if hot_objects > n_objects:
        raise ConfigurationError(
            f"hot_objects {hot_objects} exceeds slice size {n_objects}"
        )
    tier = [BackendSpec(name=f"backend{index}") for index in range(backends)]
    hot_slice = PerfectClusterWorkload(
        n_objects=n_objects, cluster_size=cluster_size
    )
    hot_set = ParetoClusterWorkload(
        n_objects=hot_objects, cluster_size=cluster_size, alpha=hot_alpha
    )
    edges = [
        EdgeSpec(
            name="hot-updater",
            workload=hot_slice,
            read_workload=UniformWorkload(n_objects=n_objects),
            read_rate=quiet_read_rate,
            update_rate=update_rate,
            invalidation_loss=0.2,
        ),
        EdgeSpec(
            name="hot-crowd",
            workload=hot_slice,
            read_workload=hot_set,
            read_rate=crowd_read_rate,
            update_rate=0.0,  # a pure read surge
            strategy=Strategy.EVICT,
            invalidation_loss=0.2,
        ),
    ]
    placement = {"hot-updater": "backend0", "hot-crowd": "backend0"}
    for index in range(1, backends):
        slice_workload = OffsetWorkload(
            PerfectClusterWorkload(n_objects=n_objects, cluster_size=cluster_size),
            offset=index * n_objects,
        )
        edge = EdgeSpec(
            name=f"quiet{index}",
            workload=slice_workload,
            read_rate=quiet_read_rate,
            update_rate=update_rate / 4,
            invalidation_loss=0.1,
        )
        edges.append(edge)
        placement[edge.name] = f"backend{index}"
    return ScenarioSpec(
        name=f"hot-backend-{backends}backends",
        description=(
            f"backend0 serves a {crowd_read_rate:g}/s crowd on "
            f"{hot_objects} hot keys while {backends - 1} peer backend(s) idle"
        ),
        edges=edges,
        backends=tier,
        placement=placement,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def region_failure_drill(
    *,
    regions: int = 3,
    failed_region: int = 0,
    objects_per_region: int = 400,
    cluster_size: int = 5,
    takeover_fraction: float = 0.6,
    fail_at: float | None = None,
    recover_at: float | None = None,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 601,
    read_rate: float = 300.0,
    update_rate: float = 60.0,
) -> ScenarioSpec:
    """One region fails mid-run; the surviving tier absorbs its users.

    Each region has its own backend and one edge over a disjoint key slice.
    At ``fail_at`` (sim time; default 40 % into the measured window) the
    failed region's invalidation pipeline blacks out until ``recover_at``
    (default 70 % in) — the §II bursty failure, so its cache serves
    coherently stale data and the inconsistency bill arrives on recovery.
    Simultaneously ``takeover_fraction`` of the failed region's traffic is
    displaced onto the survivors, split evenly: every surviving edge's
    update *and* read workloads phase-switch at ``fail_at`` from pure-local
    to a mixture that includes a replica of the failed slice on the
    survivor's own backend (backends are independent key namespaces, so the
    replica keys are loaded at build time).  Per-backend rows show the
    surviving backends' commits and read load jump while the failed
    backend's edge drifts stale — failover load *and* consistency cost in
    one drill.
    """
    if regions < 2:
        raise ConfigurationError(
            f"a failure drill needs >= 2 regions, got {regions}"
        )
    if not 0 <= failed_region < regions:
        raise ConfigurationError(
            f"failed_region must be in [0, {regions}), got {failed_region}"
        )
    if not 0.0 <= takeover_fraction <= 1.0:
        raise ConfigurationError(
            f"takeover_fraction must be in [0, 1], got {takeover_fraction}"
        )
    fail_at = warmup + 0.4 * duration if fail_at is None else fail_at
    recover_at = warmup + 0.7 * duration if recover_at is None else recover_at
    if not 0 <= fail_at < recover_at:
        raise ConfigurationError(
            f"need 0 <= fail_at < recover_at, got [{fail_at}, {recover_at})"
        )

    def slice_for(region: int) -> OffsetWorkload:
        return OffsetWorkload(
            PerfectClusterWorkload(
                n_objects=objects_per_region, cluster_size=cluster_size
            ),
            offset=region * objects_per_region,
        )

    failed_slice = slice_for(failed_region)
    displaced_share = takeover_fraction / (regions - 1)
    backends = [
        BackendSpec(name=f"region{index}-db") for index in range(regions)
    ]
    edges: list[EdgeSpec] = []
    placement: dict[str, str] = {}
    for region in range(regions):
        local = slice_for(region)
        if region == failed_region:
            edge = EdgeSpec(
                name=f"region{region}",
                workload=local,
                read_rate=read_rate,
                update_rate=update_rate,
                invalidation_loss=0.1,
                # The failure window: total invalidation blackout.
                invalidation_outages=((fail_at, recover_at),),
            )
        else:
            # PhaseSwitch demands one key universe across phases, so the
            # pre-failure mixture carries the replica at weight zero.
            calm = MixtureWorkload([(1.0, local), (0.0, failed_slice)])
            absorbing = MixtureWorkload(
                [(1.0 - displaced_share, local), (displaced_share, failed_slice)]
            )
            takeover = PhaseSwitchWorkload(calm, absorbing, switch_time=fail_at)
            edge = EdgeSpec(
                name=f"region{region}",
                workload=takeover,
                read_workload=takeover,
                read_rate=read_rate,
                update_rate=update_rate,
                invalidation_loss=0.1,
            )
        edges.append(edge)
        placement[edge.name] = backends[region].name
    return ScenarioSpec(
        name=f"region-failure-{regions}regions",
        description=(
            f"region{failed_region} blacks out over [{fail_at:g}, "
            f"{recover_at:g}) while {takeover_fraction:.0%} of its traffic "
            f"shifts to {regions - 1} surviving backend(s)"
        ),
        edges=edges,
        backends=backends,
        placement=placement,
        seed=seed,
        duration=duration,
        warmup=warmup,
    )


def capacity_planning_sweep(
    *,
    regions: int = 2,
    edges_per_region: int = 2,
    load_factors: tuple[float, ...] = (0.5, 1.0, 2.0),
    shard_options: tuple[int, ...] = (1, 2),
    objects_per_region: int = 400,
    base_read_rate: float = 300.0,
    base_update_rate: float = 60.0,
    duration: float = 30.0,
    warmup: float = 5.0,
    seed: int = 701,
):
    """A capacity-planning grid over the regional tier, as a sweep spec.

    Re-runs :func:`regional_backends_scenario` across every
    ``(load factor, shard count)`` combination on one shared seed, so rows
    differ only by the knob under study: how does the tier's per-backend
    read load, commit throughput and inconsistency move as client traffic
    multiplies, and how much of it does sharding buy back?  Returns a
    :class:`~repro.experiments.sweep.SweepSpec` whose points are whole
    scenarios — exactly the independent, chunkable units the dispatch tier
    (``run_sweep(spec, dispatch=...)``) fans out across hosts.
    """
    # Imported lazily: the sweep engine imports the scenario package, so a
    # module-level import here would be circular.
    from repro.experiments.sweep import SweepPoint, SweepSpec

    if not load_factors:
        raise ConfigurationError("need at least one load factor")
    if not shard_options:
        raise ConfigurationError("need at least one shard count")
    if any(factor <= 0 for factor in load_factors):
        raise ConfigurationError(
            f"load factors must be positive, got {load_factors}"
        )
    points = [
        SweepPoint(
            label=f"load{factor:g}x-shards{shards}",
            scenario=regional_backends_scenario(
                regions=regions,
                edges_per_region=edges_per_region,
                objects_per_region=objects_per_region,
                shards=shards,
                duration=duration,
                warmup=warmup,
                seed=seed,
                read_rate=base_read_rate * factor,
                update_rate=base_update_rate * factor,
            ),
            params={"load_factor": factor, "shards": shards},
        )
        for factor in load_factors
        for shards in shard_options
    ]
    return SweepSpec(
        name="capacity-planning",
        description=(
            f"{regions}-region tier under load x{list(load_factors)} with "
            f"{list(shard_options)} shard option(s), one shared seed"
        ),
        root_seed=seed,
        points=points,
    )
