"""Build and run a multi-edge, multi-backend scenario.

The executor generalises the historical single-column runner: one simulated
clock, one *tier* of transactional backends, one omniscient consistency
monitor — and one cache + invalidation channel + client population per
:class:`~repro.scenario.spec.EdgeSpec`. Every edge is wired to exactly one
backend (its placement): its cache misses read that backend, its update
clients commit there, and that backend's invalidation stream fans out to the
edge's channel with the edge's own loss and latency. Each backend allocates
versions from its own commit sequence, so the monitor classifies reads per
backend namespace (serialization-graph edges keyed by ``(backend,
version)``), and a cache receiving an invalidation stamped with a foreign
namespace raises — backends never share state.

Determinism and legacy equivalence
----------------------------------

Randomness follows the package's named-stream policy
(:class:`~repro.sim.rng.RngStreams`): each consumer draws from its own
independently seeded generator, so adding edges (or backends — databases
consume no randomness) never perturbs the draws of existing ones. Edge 0
uses the *historical* stream names (``invalidation-channel``,
``update-client``, ``read-client``) and the historical read-transaction id
range (ids from 1); every later edge namespaces its streams by edge name and
gets a disjoint id range. A one-edge scenario on the default single backend
therefore reproduces the pre-scenario ``run_column`` results bit for bit —
the golden-equivalence contract the integration tests enforce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cache.base import CacheServer
from repro.clients.read_client import ReadOnlyClient
from repro.clients.update_client import UpdateClient, UpdateClientStats
from repro.db.database import Database, DatabaseConfig, DatabaseStats
from repro.monitor.monitor import ConsistencyMonitor
from repro.protocols import protocol_for_edge
from repro.monitor.stats import CLASSES, ClassCounts, TimeSeries
from repro.scenario.results import (
    BackendAggregates,
    ColumnResult,
    FleetAggregates,
    ScenarioResult,
)
from repro.scenario.spec import BackendSpec, EdgeSpec, ScenarioSpec
from repro.sim.channel import Channel
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.types import Key

__all__ = [
    "Scenario",
    "ScenarioEdge",
    "build_scenario",
    "collect_column_result",
    "measured_counts",
    "run_scenario",
]

#: Read-transaction id stride between edges: edge ``i`` draws ids from
#: ``1 + i * stride``, keeping ids unique fleet-wide (edge 0 keeps the
#: historical range starting at 1).
TXN_ID_STRIDE = 1_000_000_000


@dataclass(slots=True)
class ScenarioEdge:
    """One wired edge: cache, invalidation channel and client populations."""

    spec: EdgeSpec
    index: int
    cache: CacheServer
    channel: Channel
    #: The backend database this edge is placed on.
    database: Database
    #: ``None`` when the edge's ``update_rate`` is 0 (a read-only region).
    update_client: UpdateClient | None
    read_client: ReadOnlyClient


@dataclass(slots=True)
class Scenario:
    """A fully wired fleet, exposed for integration tests and examples."""

    sim: Simulator
    spec: ScenarioSpec
    #: Backend databases in :attr:`ScenarioSpec.backends` order.
    databases: list[Database]
    monitor: ConsistencyMonitor
    edges: list[ScenarioEdge]

    @property
    def database(self) -> Database:
        """The primary (first) backend — *the* backend of single-backend
        scenarios, kept for the legacy single-column API."""
        return self.databases[0]

    def backend(self, name: str) -> Database:
        """The wired backend database named ``name``."""
        for database in self.databases:
            if database.namespace == name:
                return database
        raise KeyError(
            f"no backend named {name!r} in scenario {self.spec.name!r}"
        )

    def edge(self, name: str) -> ScenarioEdge:
        """The wired edge named ``name``."""
        for edge in self.edges:
            if edge.spec.name == name:
                return edge
        raise KeyError(f"no edge named {name!r} in scenario {self.spec.name!r}")


def _stream_name(index: int, edge_name: str, base: str) -> str:
    """Edge 0 keeps the historical stream names; see the module docstring."""
    return base if index == 0 else f"{edge_name}/{base}"


def _initial_objects(spec: ScenarioSpec, backend: BackendSpec) -> dict[Key, object]:
    """The union key universe of the edges placed on ``backend``, in edge
    order. Backends are independent stores: a key name appearing on two
    backends denotes two unrelated objects."""
    initial: dict[Key, object] = {}
    for edge in spec.edges_on(backend.name):
        for key in edge.workload.all_keys():
            initial.setdefault(key, f"init:{key}")
        if edge.read_workload is not None:
            for key in edge.read_workload.all_keys():
                initial.setdefault(key, f"init:{key}")
    return initial


def _make_cache(
    sim: Simulator,
    database: Database,
    edge: EdgeSpec,
    services: dict[tuple[str, str | None], object] | None = None,
) -> CacheServer:
    """Build the edge's cache through the protocol registry.

    Every cache — including the historical ``cache_kind`` families, which
    the registry exposes under their protocol names — is constructed here,
    so the registry is the single seam for adding consistency protocols.
    ``services`` memoises one backend-side service per ``(protocol,
    backend namespace)`` pair: edges sharing a backend share its lock
    manager / signer / session registry, which is what gives cross-edge
    protocols their semantics.
    """
    protocol = protocol_for_edge(edge)
    service = None
    if protocol.backend_service is not None:
        if services is None:
            service = protocol.backend_service(sim, database)
        else:
            service_key = (protocol.name, getattr(database, "namespace", None))
            service = services.get(service_key)
            if service is None:
                service = services[service_key] = protocol.backend_service(
                    sim, database
                )
    return protocol.build_cache(sim, database, edge, service)


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Wire every component of a fleet without running the clock."""
    sim = Simulator()
    streams = RngStreams(spec.seed)

    databases: list[Database] = []
    by_name: dict[str, Database] = {}
    for backend_spec in spec.backends:
        database = Database(
            sim,
            DatabaseConfig(
                shards=backend_spec.shards,
                deplist_max=spec.backend_deplist_max(backend_spec),
                timing=spec.backend_timing(backend_spec),
                name=backend_spec.name,
                pruning_policy=spec.backend_pruning_policy(backend_spec),
            ),
        )
        database.load(_initial_objects(spec, backend_spec))
        databases.append(database)
        by_name[backend_spec.name] = database

    monitor = ConsistencyMonitor(sim, window=spec.monitor_window)
    for database in databases:
        monitor.bind_backend(database.namespace)
        if len(databases) == 1:
            # The historical hookup: the bound method itself, recording into
            # the default namespace that bind_backend just aliased.
            database.add_commit_listener(monitor.record_update)
        else:
            database.add_commit_listener(
                lambda txn, _backend=database.namespace: monitor.record_update(
                    txn, backend=_backend
                )
            )

    edges: list[ScenarioEdge] = []
    protocol_services: dict[tuple[str, str | None], object] = {}
    for index, edge_spec in enumerate(spec.edges):
        database = by_name[spec.placement[edge_spec.name]]
        cache = _make_cache(sim, database, edge_spec, protocol_services)
        channel = Channel(
            sim,
            cache.handle_invalidation,
            latency=lambda rng, mean=edge_spec.invalidation_latency_mean: float(
                rng.exponential(mean)
            ),
            loss_probability=edge_spec.invalidation_loss,
            rng=streams.stream(
                _stream_name(index, edge_spec.name, "invalidation-channel")
            ),
            name=f"{edge_spec.name}/invalidations",
        )
        for outage_start, outage_end in edge_spec.invalidation_outages:
            channel.outage(outage_start, outage_end)
        database.register_invalidation_channel(channel)
        cache.add_transaction_listener(
            lambda record, _source=edge_spec.name, _backend=database.namespace: (
                monitor.record_read_only(record, source=_source, backend=_backend)
            )
        )

        update_client = None
        if edge_spec.update_rate > 0:
            update_client = UpdateClient(
                sim,
                database,
                edge_spec.workload,
                rate=edge_spec.update_rate,
                rng=streams.stream(
                    _stream_name(index, edge_spec.name, "update-client")
                ),
                # Unlike the other component names this one is load-bearing:
                # the client embeds it in every value it writes, so edge 0
                # keeps the historical name for bit-identical stored state.
                name=(
                    "update-client"
                    if index == 0
                    else f"{edge_spec.name}/update-client"
                ),
            )
        read_client = ReadOnlyClient(
            sim,
            cache,
            edge_spec.read_workload or edge_spec.workload,
            rate=edge_spec.read_rate,
            rng=streams.stream(_stream_name(index, edge_spec.name, "read-client")),
            txn_ids=itertools.count(1 + index * TXN_ID_STRIDE),
            read_gap=edge_spec.read_gap,
            retry_aborted=edge_spec.retry_aborted_reads,
            name=f"{edge_spec.name}/read-client",
        )
        edges.append(
            ScenarioEdge(
                spec=edge_spec,
                index=index,
                cache=cache,
                channel=channel,
                database=database,
                update_client=update_client,
                read_client=read_client,
            )
        )

    return Scenario(
        sim=sim, spec=spec, databases=databases, monitor=monitor, edges=edges
    )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario to completion and collect per-edge + fleet metrics."""
    scenario = build_scenario(spec)
    scenario.sim.run(until=spec.total_time)
    return collect_scenario_result(scenario)


def measured_counts(series: TimeSeries, warmup: float) -> ClassCounts:
    """Classification counts from the windows at or after ``warmup``."""
    measured = ClassCounts()
    for start, counts in series.buckets():
        if start >= warmup:
            for label in CLASSES:
                setattr(measured, label, getattr(measured, label) + getattr(counts, label))
    return measured


def collect_column_result(
    config,
    series: TimeSeries,
    warmup: float,
    *,
    cache: CacheServer,
    db_stats,
    channel_stats,
    update_client: UpdateClient | None,
    read_client: ReadOnlyClient,
) -> ColumnResult:
    """Assemble one edge's :class:`ColumnResult` from its components.

    Shared by the scenario collector and the single-column shim
    (:func:`repro.experiments.runner.collect_result`) so the two paths can
    never drift in how metrics are extracted.
    """
    return ColumnResult(
        config=config,
        counts=measured_counts(series, warmup),
        cache_stats=cache.stats,
        db_stats=db_stats,
        channel_stats=channel_stats,
        update_client_stats=(
            update_client.stats
            if update_client is not None
            else UpdateClientStats()
        ),
        read_client_stats=read_client.stats,
        series=series.rates(),
        detections_eq1=getattr(cache, "detections_eq1", 0),
        detections_eq2=getattr(cache, "detections_eq2", 0),
        retries_resolved=getattr(cache, "retries_resolved", 0),
    )


def _variance(values: list[float]) -> float:
    """Population variance; 0.0 for fleets of one."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return sum((value - mean) ** 2 for value in values) / len(values)


def _combined_db_stats(databases: list[Database]) -> DatabaseStats:
    """Tier-wide backend counters.

    For a single backend this is the backend's own live stats object
    (preserving the historical identity ``result.db_stats is
    result.edges[0].db_stats``); for a routed tier it is a synthesised sum.
    """
    if len(databases) == 1:
        return databases[0].stats
    total = DatabaseStats()
    for database in databases:
        total.committed += database.stats.committed
        total.aborted += database.stats.aborted
        total.entry_reads += database.stats.entry_reads
        total.invalidations_sent += database.stats.invalidations_sent
    return total


def collect_scenario_result(scenario: Scenario) -> ScenarioResult:
    """Extract a :class:`ScenarioResult` from a finished scenario."""
    spec = scenario.spec
    monitor = scenario.monitor

    edge_results: list[ColumnResult] = []
    for edge in scenario.edges:
        series = monitor.source_series.get(edge.spec.name)
        if series is None:  # edge finished no transaction at all
            series = TimeSeries(window=spec.monitor_window)
        edge_results.append(
            collect_column_result(
                spec.edge_config(edge.spec),
                series,
                spec.warmup,
                cache=edge.cache,
                db_stats=edge.database.stats,
                channel_stats=edge.channel.stats,
                update_client=edge.update_client,
                read_client=edge.read_client,
            )
        )

    results_by_edge = {
        edge.spec.name: result
        for edge, result in zip(scenario.edges, edge_results)
    }
    backend_aggregates: list[BackendAggregates] = []
    for backend_spec, database in zip(spec.backends, scenario.databases):
        edge_names = [e.name for e in spec.edges_on(backend_spec.name)]
        series = monitor.backend_series.get(database.namespace)
        counts = (
            measured_counts(series, spec.warmup)
            if series is not None
            else ClassCounts()
        )
        db_accesses = sum(
            results_by_edge[name].cache_stats.db_accesses for name in edge_names
        )
        backend_aggregates.append(
            BackendAggregates(
                name=backend_spec.name,
                edges=edge_names,
                counts=counts,
                db_stats=database.stats,
                db_accesses=db_accesses,
                read_load=db_accesses / spec.total_time,
            )
        )

    cache_reads = sum(result.cache_stats.reads for result in edge_results)
    cache_hits = sum(result.cache_stats.hits for result in edge_results)
    db_accesses = sum(result.cache_stats.db_accesses for result in edge_results)
    fleet = FleetAggregates(
        counts=measured_counts(monitor.series, spec.warmup),
        cache_reads=cache_reads,
        cache_hits=cache_hits,
        db_accesses=db_accesses,
        backend_read_rate=db_accesses / spec.total_time,
        update_commits=sum(
            database.stats.committed for database in scenario.databases
        ),
        inconsistency_variance=_variance(
            [result.inconsistency_ratio for result in edge_results]
        ),
        hit_ratio_variance=_variance(
            [result.hit_ratio for result in edge_results]
        ),
        inconsistency_by_backend={
            aggregate.name: aggregate.inconsistency_ratio
            for aggregate in backend_aggregates
        },
    )
    return ScenarioResult(
        spec=spec,
        edges=edge_results,
        fleet=fleet,
        db_stats=_combined_db_stats(scenario.databases),
        backends=backend_aggregates,
    )
