"""Build and run a multi-edge scenario.

The executor generalises the historical single-column runner: one simulated
clock, one transactional backend, one omniscient consistency monitor — and
one cache + invalidation channel + client population per
:class:`~repro.scenario.spec.EdgeSpec`. Every edge's updates commit at the
shared database, whose invalidation stream fans out to every edge's channel
with that edge's own loss and latency.

Determinism and legacy equivalence
----------------------------------

Randomness follows the package's named-stream policy
(:class:`~repro.sim.rng.RngStreams`): each consumer draws from its own
independently seeded generator, so adding edges never perturbs the draws of
existing ones. Edge 0 uses the *historical* stream names
(``invalidation-channel``, ``update-client``, ``read-client``) and the
historical read-transaction id range (ids from 1); every later edge
namespaces its streams by edge name and gets a disjoint id range. A
one-edge scenario therefore reproduces the pre-scenario ``run_column``
results bit for bit — the golden-equivalence contract the integration tests
enforce.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.cache.base import CacheServer
from repro.cache.kinds import CacheKind
from repro.cache.ttl import TTLCache
from repro.clients.read_client import ReadOnlyClient
from repro.clients.update_client import UpdateClient, UpdateClientStats
from repro.core.tcache import TCache
from repro.db.database import Database, DatabaseConfig
from repro.monitor.monitor import ConsistencyMonitor
from repro.monitor.stats import CLASSES, ClassCounts, TimeSeries
from repro.scenario.results import ColumnResult, FleetAggregates, ScenarioResult
from repro.scenario.spec import EdgeSpec, ScenarioSpec
from repro.sim.channel import Channel
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.types import Key

__all__ = [
    "Scenario",
    "ScenarioEdge",
    "build_scenario",
    "collect_column_result",
    "measured_counts",
    "run_scenario",
]

#: Read-transaction id stride between edges: edge ``i`` draws ids from
#: ``1 + i * stride``, keeping ids unique fleet-wide (edge 0 keeps the
#: historical range starting at 1).
TXN_ID_STRIDE = 1_000_000_000


@dataclass(slots=True)
class ScenarioEdge:
    """One wired edge: cache, invalidation channel and client populations."""

    spec: EdgeSpec
    index: int
    cache: CacheServer
    channel: Channel
    #: ``None`` when the edge's ``update_rate`` is 0 (a read-only region).
    update_client: UpdateClient | None
    read_client: ReadOnlyClient


@dataclass(slots=True)
class Scenario:
    """A fully wired fleet, exposed for integration tests and examples."""

    sim: Simulator
    spec: ScenarioSpec
    database: Database
    monitor: ConsistencyMonitor
    edges: list[ScenarioEdge]

    def edge(self, name: str) -> ScenarioEdge:
        """The wired edge named ``name``."""
        for edge in self.edges:
            if edge.spec.name == name:
                return edge
        raise KeyError(f"no edge named {name!r} in scenario {self.spec.name!r}")


def _stream_name(index: int, edge_name: str, base: str) -> str:
    """Edge 0 keeps the historical stream names; see the module docstring."""
    return base if index == 0 else f"{edge_name}/{base}"


def _initial_objects(spec: ScenarioSpec) -> dict[Key, object]:
    """The union key universe across every edge's workloads, in edge order."""
    initial: dict[Key, object] = {}
    for edge in spec.edges:
        for key in edge.workload.all_keys():
            initial.setdefault(key, f"init:{key}")
        if edge.read_workload is not None:
            for key in edge.read_workload.all_keys():
                initial.setdefault(key, f"init:{key}")
    return initial


def _make_cache(sim: Simulator, database: Database, edge: EdgeSpec) -> CacheServer:
    name = {"name": edge.name}
    if edge.cache_kind is CacheKind.TCACHE:
        return TCache(
            sim,
            database,
            strategy=edge.strategy,
            capacity=edge.cache_capacity,
            deplist_limit=edge.deplist_limit,
            **name,
        )
    if edge.cache_kind is CacheKind.MULTIVERSION:
        from repro.core.multiversion import MultiversionTCache

        return MultiversionTCache(
            sim,
            database,
            capacity=edge.cache_capacity,
            deplist_limit=edge.deplist_limit,
            **name,
        )
    if edge.cache_kind is CacheKind.TTL:
        return TTLCache(
            sim, database, ttl=edge.ttl, capacity=edge.cache_capacity, **name
        )
    return CacheServer(sim, database, capacity=edge.cache_capacity, **name)


def build_scenario(spec: ScenarioSpec) -> Scenario:
    """Wire every component of a fleet without running the clock."""
    sim = Simulator()
    streams = RngStreams(spec.seed)

    database = Database(
        sim,
        DatabaseConfig(
            deplist_max=spec.deplist_max,
            timing=spec.timing,
            pruning_policy=spec.pruning_policy,
        ),
    )
    database.load(_initial_objects(spec))

    monitor = ConsistencyMonitor(sim, window=spec.monitor_window)
    database.add_commit_listener(monitor.record_update)

    edges: list[ScenarioEdge] = []
    for index, edge_spec in enumerate(spec.edges):
        cache = _make_cache(sim, database, edge_spec)
        channel = Channel(
            sim,
            cache.handle_invalidation,
            latency=lambda rng, mean=edge_spec.invalidation_latency_mean: float(
                rng.exponential(mean)
            ),
            loss_probability=edge_spec.invalidation_loss,
            rng=streams.stream(
                _stream_name(index, edge_spec.name, "invalidation-channel")
            ),
            name=f"{edge_spec.name}/invalidations",
        )
        database.register_invalidation_channel(channel)
        cache.add_transaction_listener(
            lambda record, _source=edge_spec.name: monitor.record_read_only(
                record, source=_source
            )
        )

        update_client = None
        if edge_spec.update_rate > 0:
            update_client = UpdateClient(
                sim,
                database,
                edge_spec.workload,
                rate=edge_spec.update_rate,
                rng=streams.stream(
                    _stream_name(index, edge_spec.name, "update-client")
                ),
                # Unlike the other component names this one is load-bearing:
                # the client embeds it in every value it writes, so edge 0
                # keeps the historical name for bit-identical stored state.
                name=(
                    "update-client"
                    if index == 0
                    else f"{edge_spec.name}/update-client"
                ),
            )
        read_client = ReadOnlyClient(
            sim,
            cache,
            edge_spec.read_workload or edge_spec.workload,
            rate=edge_spec.read_rate,
            rng=streams.stream(_stream_name(index, edge_spec.name, "read-client")),
            txn_ids=itertools.count(1 + index * TXN_ID_STRIDE),
            read_gap=edge_spec.read_gap,
            retry_aborted=edge_spec.retry_aborted_reads,
            name=f"{edge_spec.name}/read-client",
        )
        edges.append(
            ScenarioEdge(
                spec=edge_spec,
                index=index,
                cache=cache,
                channel=channel,
                update_client=update_client,
                read_client=read_client,
            )
        )

    return Scenario(
        sim=sim, spec=spec, database=database, monitor=monitor, edges=edges
    )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Run one scenario to completion and collect per-edge + fleet metrics."""
    scenario = build_scenario(spec)
    scenario.sim.run(until=spec.total_time)
    return collect_scenario_result(scenario)


def measured_counts(series: TimeSeries, warmup: float) -> ClassCounts:
    """Classification counts from the windows at or after ``warmup``."""
    measured = ClassCounts()
    for start, counts in series.buckets():
        if start >= warmup:
            for label in CLASSES:
                setattr(measured, label, getattr(measured, label) + getattr(counts, label))
    return measured


def collect_column_result(
    config,
    series: TimeSeries,
    warmup: float,
    *,
    cache: CacheServer,
    db_stats,
    channel_stats,
    update_client: UpdateClient | None,
    read_client: ReadOnlyClient,
) -> ColumnResult:
    """Assemble one edge's :class:`ColumnResult` from its components.

    Shared by the scenario collector and the single-column shim
    (:func:`repro.experiments.runner.collect_result`) so the two paths can
    never drift in how metrics are extracted.
    """
    return ColumnResult(
        config=config,
        counts=measured_counts(series, warmup),
        cache_stats=cache.stats,
        db_stats=db_stats,
        channel_stats=channel_stats,
        update_client_stats=(
            update_client.stats
            if update_client is not None
            else UpdateClientStats()
        ),
        read_client_stats=read_client.stats,
        series=series.rates(),
        detections_eq1=getattr(cache, "detections_eq1", 0),
        detections_eq2=getattr(cache, "detections_eq2", 0),
        retries_resolved=getattr(cache, "retries_resolved", 0),
    )


def _variance(values: list[float]) -> float:
    """Population variance; 0.0 for fleets of one."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    return sum((value - mean) ** 2 for value in values) / len(values)


def collect_scenario_result(scenario: Scenario) -> ScenarioResult:
    """Extract a :class:`ScenarioResult` from a finished scenario."""
    spec = scenario.spec
    monitor = scenario.monitor
    db_stats = scenario.database.stats

    edge_results: list[ColumnResult] = []
    for edge in scenario.edges:
        series = monitor.source_series.get(edge.spec.name)
        if series is None:  # edge finished no transaction at all
            series = TimeSeries(window=spec.monitor_window)
        edge_results.append(
            collect_column_result(
                spec.edge_config(edge.spec),
                series,
                spec.warmup,
                cache=edge.cache,
                db_stats=db_stats,
                channel_stats=edge.channel.stats,
                update_client=edge.update_client,
                read_client=edge.read_client,
            )
        )

    cache_reads = sum(result.cache_stats.reads for result in edge_results)
    cache_hits = sum(result.cache_stats.hits for result in edge_results)
    db_accesses = sum(result.cache_stats.db_accesses for result in edge_results)
    fleet = FleetAggregates(
        counts=measured_counts(monitor.series, spec.warmup),
        cache_reads=cache_reads,
        cache_hits=cache_hits,
        db_accesses=db_accesses,
        backend_read_rate=db_accesses / spec.total_time,
        update_commits=db_stats.committed,
        inconsistency_variance=_variance(
            [result.inconsistency_ratio for result in edge_results]
        ),
        hit_ratio_variance=_variance(
            [result.hit_ratio for result in edge_results]
        ),
    )
    return ScenarioResult(
        spec=spec, edges=edge_results, fleet=fleet, db_stats=db_stats
    )
