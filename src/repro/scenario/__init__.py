"""Declarative multi-edge, multi-backend topologies: the scenario layer.

The paper's setting is many edge caches in front of one transactional
backend; this package makes that topology — generalised to a routed tier of
backends — a first-class, declarative input:

* :mod:`repro.scenario.spec` — :class:`EdgeSpec` (one cache + channel +
  client population), :class:`BackendSpec` (one backend database: shards
  and optional per-backend overrides) and :class:`ScenarioSpec` (a
  validated fleet of edges placed on a backend tier, sharing one clock and
  one consistency monitor); ``as_dict``/``from_dict`` round-trip specs
  through JSON.
* :mod:`repro.scenario.runner` — :func:`build_scenario` / :func:`run_scenario`
  wire and execute a fleet: one ``Database`` per backend, each edge routed
  to its placement, per-backend version namespaces at the monitor. A
  one-edge scenario on the default backend reproduces the historical
  single-column runner bit for bit.
* :mod:`repro.scenario.results` — :class:`ColumnResult` (the per-edge view,
  re-exported by :mod:`repro.experiments.runner` under its historical path),
  :class:`BackendAggregates` (per-backend load + consistency split) and
  :class:`ScenarioResult` with :class:`FleetAggregates`.
* :mod:`repro.scenario.library` — ready-made fleets (geo-skewed regions,
  flash crowds, heterogeneous invalidation loss, regional backend tiers,
  hot-backend overload) that the single-column API could not express.

The sweep engine (:mod:`repro.experiments.sweep`) accepts scenario points,
so grids over whole topologies — backend counts and shard counts included —
parallelise exactly like figure columns.
"""

from repro.scenario.library import (
    capacity_planning_sweep,
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
    hot_backend_overload,
    region_failure_drill,
    regional_backends_scenario,
)
from repro.scenario.results import (
    BackendAggregates,
    ColumnResult,
    FleetAggregates,
    ScenarioResult,
)
from repro.scenario.runner import (
    Scenario,
    ScenarioEdge,
    build_scenario,
    run_scenario,
)
from repro.scenario.spec import (
    DEFAULT_BACKEND_NAME,
    BackendSpec,
    EdgeSpec,
    ScenarioSpec,
)

__all__ = [
    "BackendAggregates",
    "BackendSpec",
    "ColumnResult",
    "DEFAULT_BACKEND_NAME",
    "EdgeSpec",
    "FleetAggregates",
    "Scenario",
    "ScenarioEdge",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario",
    "capacity_planning_sweep",
    "flash_crowd_scenario",
    "geo_skewed_scenario",
    "heterogeneous_loss_fleet",
    "hot_backend_overload",
    "region_failure_drill",
    "regional_backends_scenario",
    "run_scenario",
]
