"""Declarative multi-edge topologies: the scenario layer.

The paper's setting is many edge caches in front of one transactional
backend; this package makes that topology a first-class, declarative input:

* :mod:`repro.scenario.spec` — :class:`EdgeSpec` (one cache + channel +
  client population) and :class:`ScenarioSpec` (a validated fleet of edges
  sharing one database, one clock and one consistency monitor).
* :mod:`repro.scenario.runner` — :func:`build_scenario` / :func:`run_scenario`
  wire and execute a fleet; a one-edge scenario reproduces the historical
  single-column runner bit for bit.
* :mod:`repro.scenario.results` — :class:`ColumnResult` (the per-edge view,
  re-exported by :mod:`repro.experiments.runner` under its historical path)
  and :class:`ScenarioResult` with :class:`FleetAggregates`.
* :mod:`repro.scenario.library` — ready-made fleets (geo-skewed regions,
  flash crowds, heterogeneous invalidation loss) that the single-column API
  could not express.

The sweep engine (:mod:`repro.experiments.sweep`) accepts scenario points,
so grids over whole topologies parallelise exactly like figure columns.
"""

from repro.scenario.library import (
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
)
from repro.scenario.results import ColumnResult, FleetAggregates, ScenarioResult
from repro.scenario.runner import (
    Scenario,
    ScenarioEdge,
    build_scenario,
    run_scenario,
)
from repro.scenario.spec import EdgeSpec, ScenarioSpec

__all__ = [
    "ColumnResult",
    "EdgeSpec",
    "FleetAggregates",
    "Scenario",
    "ScenarioEdge",
    "ScenarioResult",
    "ScenarioSpec",
    "build_scenario",
    "flash_crowd_scenario",
    "geo_skewed_scenario",
    "heterogeneous_loss_fleet",
    "run_scenario",
]
