"""Versioned object store: the committed state of one participant.

Each key maps to its current :class:`~repro.types.VersionedValue` — value,
version (the id of the update transaction that wrote it, §III-A) and the
pruned dependency list the database computed at that transaction's commit.
Strict two-phase locking above this layer guarantees that readers of the
store only ever observe committed state, so the store itself needs no
multi-versioning.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.core.deplist import DependencyList
from repro.errors import KeyNotFound
from repro.types import INITIAL_VERSION, Key, Version, VersionedValue

__all__ = ["VersionedStore"]


class VersionedStore:
    """Current committed version of every object on one shard."""

    def __init__(self) -> None:
        self._entries: dict[Key, VersionedValue] = {}
        #: Writes applied, for statistics and recovery assertions.
        self.install_count = 0

    def load(self, initial: Mapping[Key, object]) -> None:
        """Bulk-load initial objects at :data:`INITIAL_VERSION` (no deps)."""
        for key, value in initial.items():
            self._entries[key] = VersionedValue(
                key=key, value=value, version=INITIAL_VERSION, deps=()
            )

    def get(self, key: Key) -> VersionedValue:
        entry = self._entries.get(key)
        if entry is None:
            raise KeyNotFound(key)
        return entry

    def contains(self, key: Key) -> bool:
        return key in self._entries

    def install(
        self, key: Key, value: object, version: Version, deps: DependencyList
    ) -> VersionedValue:
        """Install a committed write.

        Versions must move forward: two-phase locking serialises writers per
        key, so a regression would mean a protocol bug — fail loudly.
        """
        current = self._entries.get(key)
        if current is not None and version <= current.version:
            raise AssertionError(
                f"version regression on {key!r}: {current.version} -> {version}"
            )
        entry = VersionedValue(key=key, value=value, version=version, deps=deps.entries)
        self._entries[key] = entry
        self.install_count += 1
        return entry

    def version_of(self, key: Key) -> Version:
        return self.get(key).version

    def keys(self) -> Iterator[Key]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict[Key, VersionedValue]:
        """A shallow copy of the committed state (entries are immutable)."""
        return dict(self._entries)
