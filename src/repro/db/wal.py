"""Write-ahead log for participants and the 2PC coordinator.

The log is in-memory (the simulation has no disks) but structurally faithful:
append-only records with monotonically increasing LSNs, forced at the 2PC
decision points, and a recovery scan that reconstructs the prepared-but-
undecided transaction set after a crash — the state the presumed-abort
protocol in :mod:`repro.db.coordinator` resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

from repro.types import TxnId

__all__ = ["RecordType", "LogRecord", "WriteAheadLog"]


class RecordType(Enum):
    BEGIN = "begin"
    PREPARE = "prepare"
    COMMIT = "commit"
    ABORT = "abort"
    #: Coordinator-side: the global commit/abort decision.
    DECISION_COMMIT = "decision-commit"
    DECISION_ABORT = "decision-abort"


@dataclass(frozen=True, slots=True)
class LogRecord:
    lsn: int
    record_type: RecordType
    txn_id: TxnId
    #: Buffered writes for PREPARE records: {key: (value, ...)}; free-form
    #: payload otherwise.
    payload: Any = None


@dataclass
class WriteAheadLog:
    """Append-only log with LSN assignment and recovery analysis."""

    name: str = "wal"
    _records: list[LogRecord] = field(default_factory=list)

    def append(self, record_type: RecordType, txn_id: TxnId, payload: Any = None) -> LogRecord:
        record = LogRecord(len(self._records), record_type, txn_id, payload)
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def records_for(self, txn_id: TxnId) -> list[LogRecord]:
        return [r for r in self._records if r.txn_id == txn_id]

    def prepared_undecided(self) -> dict[TxnId, LogRecord]:
        """Recovery analysis: prepared transactions with no final record.

        Returns the PREPARE record (whose payload carries the buffered
        writes) for every transaction that must be resolved with the
        coordinator under presumed abort.
        """
        prepared: dict[TxnId, LogRecord] = {}
        decided: set[TxnId] = set()
        for record in self._records:
            if record.record_type is RecordType.PREPARE:
                prepared[record.txn_id] = record
            elif record.record_type in (RecordType.COMMIT, RecordType.ABORT):
                decided.add(record.txn_id)
        return {txn: rec for txn, rec in prepared.items() if txn not in decided}

    def committed_transactions(self) -> list[TxnId]:
        return [r.txn_id for r in self._records if r.record_type is RecordType.COMMIT]

    def truncate(self) -> None:
        """Drop all records (used between experiment repetitions)."""
        self._records.clear()
