"""Invalidation records streamed from the database to caches (§IV).

"On startup, the cache registers an upcall that can be used by the database
to report invalidations; after each update transaction, the database
asynchronously sends invalidations to the cache for all objects that were
modified." The records travel over a lossy :class:`~repro.sim.channel.Channel`
— the experiment drops 20 % of them — which is the root cause of the stale
reads T-Cache detects.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.types import Key, TxnId, Version

__all__ = ["InvalidationRecord"]


class InvalidationRecord(NamedTuple):
    """One modified object announced by a committed update transaction.

    One is built per written object of every commit; a ``NamedTuple`` keeps
    that (and the channel hop) cheap.
    """

    key: Key
    #: The version the committing transaction installed. A cache holding a
    #: copy with an older version must drop it; a newer or equal copy means
    #: the invalidation arrived late (reordered) and is ignored.
    version: Version
    txn_id: TxnId
    commit_time: float
    #: Version namespace of the issuing backend. Versions from different
    #: backends are incomparable, so a cache only honours invalidations
    #: stamped with its own backend's namespace (mis-wiring is an error).
    namespace: str = "db"
