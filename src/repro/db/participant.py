"""A storage participant (shard) in the two-phase-commit protocol.

Each participant owns a :class:`~repro.db.store.VersionedStore`, a
:class:`~repro.db.locks.LockManager` and a :class:`~repro.db.wal.WriteAheadLog`.
The coordinator drives it through the classic lifecycle: lock acquisition and
write buffering during transaction execution, then PREPARE (force a log
record carrying the buffered writes, vote), then COMMIT (install versions,
release locks) or ABORT (discard, release).

Failure injection: :meth:`crash` wipes volatile state (locks, buffered
writes) while preserving the "durable" store and log; :meth:`recover` replays
the log and resolves prepared-but-undecided transactions against the
coordinator's decision record, implementing presumed abort.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.core.deplist import DependencyList
from repro.db.locks import LockManager, LockMode
from repro.db.store import VersionedStore
from repro.db.wal import RecordType, WriteAheadLog
from repro.errors import InvalidTransactionState, ParticipantFailure
from repro.sim.core import Event, Simulator
from repro.types import Key, TxnId, Version, VersionedValue

__all__ = ["Participant"]


class Participant:
    """One shard of the transactional key-value store."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self.store = VersionedStore()
        self.locks = LockManager(sim)
        self.wal = WriteAheadLog(name=f"{name}-wal")
        self._buffered: dict[TxnId, dict[Key, object]] = {}
        self._prepared: set[TxnId] = set()
        self._crashed = False
        #: Votes returned, for statistics and tests.
        self.votes_yes = 0
        self.votes_no = 0

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------

    def register_txn(
        self, txn_id: TxnId, age: int, on_wound: Callable[[TxnId], None]
    ) -> None:
        self._require_alive()
        self.locks.register(txn_id, age, on_wound)
        self.wal.append(RecordType.BEGIN, txn_id)
        self._buffered[txn_id] = {}

    def lock(self, txn_id: TxnId, key: Key, mode: LockMode) -> Event:
        self._require_alive()
        return self.locks.acquire(txn_id, key, mode)

    def read(self, txn_id: TxnId, key: Key) -> VersionedValue:
        """Read under an already-held lock (asserted, not re-acquired)."""
        self._require_alive()
        if key not in self.locks.held_keys(txn_id):
            raise InvalidTransactionState(txn_id, f"read of {key!r} without a lock")
        return self.store.get(key)

    def read_latest(self, key: Key) -> VersionedValue:
        """Lock-free read of the current committed version.

        This is the single-entry read path caches use (§III-B: "performing
        single-entry reads (no locks, no transactions)").
        """
        self._require_alive()
        return self.store.get(key)

    def buffer_write(self, txn_id: TxnId, key: Key, value: object) -> None:
        self._require_alive()
        if key not in self.locks.held_keys(txn_id):
            raise InvalidTransactionState(txn_id, f"write of {key!r} without a lock")
        if self.locks.holders(key).get(txn_id) is not LockMode.EXCLUSIVE:
            raise InvalidTransactionState(txn_id, f"write of {key!r} without X lock")
        self._buffered.setdefault(txn_id, {})[key] = value

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def prepare(self, txn_id: TxnId) -> bool:
        """Phase one: force the buffered writes to the log and vote.

        A crashed participant votes NO (the coordinator treats silence and a
        NO vote identically: global abort).
        """
        if self._crashed:
            self.votes_no += 1
            return False
        buffered = self._buffered.get(txn_id)
        if buffered is None:
            raise InvalidTransactionState(txn_id, "prepare without registration")
        self.wal.append(RecordType.PREPARE, txn_id, dict(buffered))
        self._prepared.add(txn_id)
        self.locks.mark_prepared(txn_id)
        self.votes_yes += 1
        return True

    def commit(
        self,
        txn_id: TxnId,
        version: Version,
        deps_per_key: Mapping[Key, DependencyList],
    ) -> list[VersionedValue]:
        """Phase two, commit decision: install writes and release locks."""
        self._require_alive()
        if txn_id not in self._prepared:
            raise InvalidTransactionState(txn_id, "commit before prepare")
        buffered = self._buffered.pop(txn_id, {})
        self.wal.append(RecordType.COMMIT, txn_id)
        installed = [
            self.store.install(key, value, version, deps_per_key[key])
            for key, value in buffered.items()
        ]
        self._prepared.discard(txn_id)
        self.locks.release_all(txn_id)
        return installed

    def abort(self, txn_id: TxnId) -> None:
        """Discard buffered writes and release locks (any pre-commit state)."""
        if self._crashed:
            # Volatile state is already gone; log the decision if possible.
            return
        if txn_id in self._buffered or txn_id in self._prepared:
            self.wal.append(RecordType.ABORT, txn_id)
        self._buffered.pop(txn_id, None)
        self._prepared.discard(txn_id)
        self.locks.release_all(txn_id)

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Lose volatile state; keep the store and the log (the "disk")."""
        self._crashed = True
        self._buffered.clear()
        self._prepared.clear()
        self.locks = LockManager(self._sim)

    def recover(self, decisions: Mapping[TxnId, bool]) -> dict[TxnId, str]:
        """Replay the log; resolve in-doubt transactions via ``decisions``.

        ``decisions`` maps txn id -> True (committed) as recorded by the
        coordinator; missing entries mean abort (presumed abort). Returns the
        resolution per in-doubt transaction for test assertions. Committed
        in-doubt writes are *not* re-installed here — the coordinator retains
        authority over versions and dependency lists and re-drives commit via
        :meth:`complete_recovered_commit`.
        """
        if not self._crashed:
            raise ParticipantFailure(self.name, "recover called while alive")
        self._crashed = False
        resolutions: dict[TxnId, str] = {}
        for txn_id, record in self.wal.prepared_undecided().items():
            if decisions.get(txn_id):
                self._buffered[txn_id] = dict(record.payload)
                self._prepared.add(txn_id)
                resolutions[txn_id] = "in-doubt: awaiting coordinator commit"
            else:
                self.wal.append(RecordType.ABORT, txn_id)
                resolutions[txn_id] = "aborted (presumed abort)"
        return resolutions

    def complete_recovered_commit(
        self,
        txn_id: TxnId,
        version: Version,
        deps_per_key: Mapping[Key, DependencyList],
    ) -> list[VersionedValue]:
        """Finish an in-doubt transaction the recovery marked committed.

        Locks died with the crash; installation is safe because the
        coordinator had already serialised this transaction before the
        failure.
        """
        if txn_id not in self._prepared:
            raise InvalidTransactionState(txn_id, "no recovered prepare state")
        buffered = self._buffered.pop(txn_id, {})
        self.wal.append(RecordType.COMMIT, txn_id)
        self._prepared.discard(txn_id)
        return [
            self.store.install(key, value, version, deps_per_key[key])
            for key, value in buffered.items()
        ]

    def _require_alive(self) -> None:
        if self._crashed:
            raise ParticipantFailure(self.name, "participant is crashed")
