"""Transactional key-value database with two-phase commit (§IV substrate).

The paper's experimental column is fronted by "a single database
[implementing] a transactional key-value store with two-phase commit". This
package is that store, built for the simulation kernel but structurally a
real distributed database:

* :mod:`repro.db.locks` — strict two-phase locking with wound-wait deadlock
  avoidance.
* :mod:`repro.db.wal` — per-node write-ahead log with crash/recovery replay.
* :mod:`repro.db.store` — versioned object store (current committed version
  plus the §III-A dependency list).
* :mod:`repro.db.participant` — a storage shard: locks + WAL + store,
  prepare/commit/abort handlers.
* :mod:`repro.db.coordinator` — the two-phase-commit driver.
* :mod:`repro.db.database` — public facade: transaction execution,
  lock-free single-entry reads for caches, version assignment, dependency
  list maintenance and invalidation fan-out.
* :mod:`repro.db.invalidation` — the asynchronous invalidation records.
"""

from repro.db.database import Database, DatabaseConfig, TimingConfig
from repro.db.invalidation import InvalidationRecord
from repro.db.locks import LockManager, LockMode
from repro.db.participant import Participant
from repro.db.store import VersionedStore
from repro.db.wal import LogRecord, RecordType, WriteAheadLog

__all__ = [
    "Database",
    "DatabaseConfig",
    "InvalidationRecord",
    "LockManager",
    "LockMode",
    "LogRecord",
    "Participant",
    "RecordType",
    "TimingConfig",
    "VersionedStore",
    "WriteAheadLog",
]
