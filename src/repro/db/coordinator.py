"""The two-phase-commit driver for update transactions.

The coordinator executes each update transaction as a simulation process:
lock acquisition (strict 2PL, wound-wait), execution (read the current
versions, compute new values), PREPARE at every involved participant, then
the commit decision — at which point the transaction receives its *version*
(a global commit-sequence number, satisfying §III-A's requirement that a
transaction's version exceed the versions of all objects it accessed) and its
§III-A dependency lists are computed and installed with every written object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Mapping, Sequence

from repro.core.deplist import DependencyList
from repro.db.participant import Participant
from repro.db.wal import RecordType, WriteAheadLog
from repro.errors import (
    DeadlockDetected,
    InvalidTransactionState,
    ParticipantFailure,
    ReproError,
    TransactionAborted,
    TwoPhaseCommitError,
)
from repro.db.locks import LockMode
from repro.sim.core import Simulator
from repro.types import CommittedTransaction, Key, TxnId, Version, VersionedValue

__all__ = ["Coordinator", "TransactionHandle", "TransactionState", "TimingProfile"]


class TransactionState(Enum):
    ACTIVE = "active"
    PREPARING = "preparing"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class TimingProfile:
    """Simulated latencies of the transaction phases, in seconds.

    Defaults give an update transaction a footprint of a few milliseconds,
    matching the paper's setting where 100 update transactions per second
    overlap only occasionally but genuinely contend under clustered access.
    """

    lock_delay: float = 0.0
    execute_delay: float = 0.002
    prepare_delay: float = 0.001
    commit_delay: float = 0.001


@dataclass(slots=True)
class TransactionHandle:
    """Coordinator-side state of one update transaction."""

    txn_id: TxnId
    age: int
    read_keys: tuple[Key, ...]
    write_keys: tuple[Key, ...]
    compute: Callable[[dict[Key, VersionedValue]], Mapping[Key, object]]
    start_time: float
    state: TransactionState = TransactionState.ACTIVE
    wounded: bool = False
    abort_reason: str | None = None
    reads: dict[Key, VersionedValue] = field(default_factory=dict)
    #: Memoised all_keys(); the key sets are frozen at construction.
    _keys_cache: tuple[Key, ...] | None = None

    def all_keys(self) -> tuple[Key, ...]:
        cached = self._keys_cache
        if cached is None:
            seen = dict.fromkeys(self.read_keys)
            seen.update(dict.fromkeys(self.write_keys))
            cached = self._keys_cache = tuple(seen)
        return cached


class Coordinator:
    """Drives 2PC over a set of participants with a shared version counter."""

    def __init__(
        self,
        sim: Simulator,
        shard_for: Callable[[Key], Participant],
        *,
        timing: TimingProfile,
        allocate_version: Callable[[], Version],
        deplist_max: int,
        wal: WriteAheadLog,
        deplist_bound_for: Callable[[Key], int] | None = None,
        pinned_for: Callable[[Key], frozenset[Key]] | None = None,
        pruning_policy: str = "lru",
    ) -> None:
        self._sim = sim
        self._shard_for = shard_for
        self._timing = timing
        self._allocate_version = allocate_version
        self._deplist_max = deplist_max
        self._deplist_bound_for = deplist_bound_for
        self._pinned_for = pinned_for
        self._pruning_policy = pruning_policy
        self.wal = wal
        #: Commit decisions by txn id, consulted during participant recovery
        #: (presumed abort: missing means aborted).
        self.decisions: dict[TxnId, bool] = {}
        self.committed_count = 0
        self.aborted_count = 0

    # ------------------------------------------------------------------
    # The transaction process
    # ------------------------------------------------------------------

    def run_transaction(self, txn: TransactionHandle):
        """Generator to be driven as a simulation process.

        Returns the :class:`CommittedTransaction` on success; raises
        :class:`TransactionAborted` when wounded or when a participant
        fails.
        """
        participants = self._participants_for(txn)
        try:
            for participant in participants:
                participant.register_txn(txn.txn_id, txn.age, self._wound_handler(txn))
            yield from self._lock_phase(txn)
            yield from self._execute_phase(txn)
            votes_ok = yield from self._prepare_phase(txn, participants)
            if not votes_ok:
                raise TwoPhaseCommitError(txn.txn_id, "a participant voted NO")
            result = yield from self._commit_phase(txn, participants)
            return result
        except ReproError as error:
            self._abort(txn, participants, reason=str(error))
            raise TransactionAborted(txn.txn_id, txn.abort_reason or str(error)) from error

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _lock_phase(self, txn: TransactionHandle):
        write_set = set(txn.write_keys)
        # Deterministic global order keeps the common path deadlock-light;
        # wound-wait still protects arbitrary orders (exercised in tests).
        for key in sorted(txn.all_keys()):
            self._check_wounded(txn)
            mode = LockMode.EXCLUSIVE if key in write_set else LockMode.SHARED
            yield self._shard_for(key).lock(txn.txn_id, key, mode)
            if self._timing.lock_delay:
                yield self._sim.timeout(self._timing.lock_delay)
        self._check_wounded(txn)

    def _execute_phase(self, txn: TransactionHandle):
        if self._timing.execute_delay:
            yield self._sim.timeout(self._timing.execute_delay)
        self._check_wounded(txn)
        for key in txn.all_keys():
            txn.reads[key] = self._shard_for(key).read(txn.txn_id, key)
        new_values = txn.compute(dict(txn.reads))
        unexpected = set(new_values) - set(txn.write_keys)
        if unexpected:
            raise InvalidTransactionState(
                txn.txn_id, f"writes outside the declared write set: {sorted(unexpected)}"
            )
        for key, value in new_values.items():
            self._shard_for(key).buffer_write(txn.txn_id, key, value)

    def _prepare_phase(self, txn: TransactionHandle, participants: Sequence[Participant]):
        self._check_wounded(txn)
        txn.state = TransactionState.PREPARING
        votes: list[bool] = []
        for participant in participants:
            if self._timing.prepare_delay:
                yield self._sim.timeout(self._timing.prepare_delay)
            votes.append(participant.prepare(txn.txn_id))
        if all(votes):
            txn.state = TransactionState.PREPARED
            return True
        return False

    def _commit_phase(self, txn: TransactionHandle, participants: Sequence[Participant]):
        version = self._allocate_version()
        deps_per_key = self._dependency_lists(txn, version)
        self.decisions[txn.txn_id] = True
        self.wal.append(RecordType.DECISION_COMMIT, txn.txn_id, version)
        if self._timing.commit_delay:
            yield self._sim.timeout(self._timing.commit_delay)
        installed: list[VersionedValue] = []
        for participant in participants:
            installed.extend(participant.commit(txn.txn_id, version, deps_per_key))
        txn.state = TransactionState.COMMITTED
        self.committed_count += 1
        committed = CommittedTransaction(
            txn_id=version,
            reads={key: value.version for key, value in txn.reads.items()},
            writes={key: version for key in txn.write_keys},
            commit_time=self._sim.now,
        )
        return _CommitOutcome(committed, tuple(installed), version)

    # ------------------------------------------------------------------
    # Dependency list computation (§III-A)
    # ------------------------------------------------------------------

    def _dependency_lists(
        self, txn: TransactionHandle, version: Version
    ) -> dict[Key, DependencyList]:
        """The full-dep-list aggregation, pruned per written object.

        Direct entries: written objects at the *new* version (a dependant
        must see the transaction's effect), purely-read objects at the
        version observed. Inherited entries: the dependency lists stored
        with every object in the read and write sets. Each written object
        stores the merge minus its self-entry.
        """
        write_set = set(txn.write_keys)
        direct: dict[Key, Version] = {}
        for key, entry in txn.reads.items():
            direct[key] = version if key in write_set else entry.version
        for key in write_set:
            direct.setdefault(key, version)
        # Stored deps tuples are the entries of lists this merge built at
        # earlier commits — already deduplicated, so skip re-subsumption.
        inherited = [
            DependencyList.from_trusted(entry.deps) for entry in txn.reads.values()
        ]
        return {
            key: DependencyList.merge(
                direct,
                inherited,
                max_len=self._bound_for(key),
                exclude=key,
                pinned=self._pinned_for(key) if self._pinned_for else None,
                policy=self._pruning_policy,
            )
            for key in write_set
        }

    def _bound_for(self, key: Key) -> int:
        """Per-object dependency-list bound (§VII extension).

        Falls back to the global bound when no override is registered.
        """
        if self._deplist_bound_for is not None:
            override = self._deplist_bound_for(key)
            if override is not None:
                return override
        return self._deplist_max

    # ------------------------------------------------------------------
    # Abort handling
    # ------------------------------------------------------------------

    def _wound_handler(self, txn: TransactionHandle) -> Callable[[TxnId], None]:
        def on_wound(_victim: TxnId) -> None:
            # A transaction that reached PREPARING is immune: a prepared
            # participant may no longer unilaterally abort, and prepared
            # transactions never wait for locks, so no deadlock can involve
            # them.
            if txn.state is not TransactionState.ACTIVE or txn.wounded:
                return
            txn.wounded = True
            txn.abort_reason = "wounded by an older transaction"
            self._abort_participants(txn)

        return on_wound

    def _check_wounded(self, txn: TransactionHandle) -> None:
        if txn.wounded:
            raise DeadlockDetected(txn.txn_id, "wounded by an older transaction")

    def _abort_participants(self, txn: TransactionHandle) -> None:
        for participant in self._participants_for(txn):
            try:
                participant.abort(txn.txn_id)
            except ParticipantFailure:
                continue

    def _abort(
        self, txn: TransactionHandle, participants: Sequence[Participant], *, reason: str
    ) -> None:
        if txn.state in (TransactionState.COMMITTED, TransactionState.ABORTED):
            return
        txn.state = TransactionState.ABORTED
        txn.abort_reason = txn.abort_reason or reason
        self.decisions.setdefault(txn.txn_id, False)
        self.wal.append(RecordType.DECISION_ABORT, txn.txn_id, reason)
        self.aborted_count += 1
        for participant in participants:
            try:
                participant.abort(txn.txn_id)
            except ParticipantFailure:
                continue

    def _participants_for(self, txn: TransactionHandle) -> list[Participant]:
        seen: dict[str, Participant] = {}
        for key in txn.all_keys():
            participant = self._shard_for(key)
            seen.setdefault(participant.name, participant)
        return [seen[name] for name in sorted(seen)]


@dataclass(frozen=True, slots=True)
class _CommitOutcome:
    """Internal return value of a successful transaction process."""

    committed: CommittedTransaction
    installed: tuple[VersionedValue, ...]
    version: Version
