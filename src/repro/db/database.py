"""Public facade of the transactional key-value database.

This is the backend of the paper's Figure 2: update clients submit
transactions here; caches perform lock-free single-entry reads and receive
asynchronous invalidations for every object an update transaction modified.
Versions are global commit-sequence numbers, so the version order is a valid
serialization of the update transactions — the anchor for both the §III-A
dependency semantics and the consistency monitor's serialization-graph tests.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.deplist import UNBOUNDED, validate_pruning_policy
from repro.db.coordinator import Coordinator, TimingProfile, TransactionHandle
from repro.db.invalidation import InvalidationRecord
from repro.db.participant import Participant
from repro.db.wal import WriteAheadLog
from repro.errors import ConfigurationError
from repro.sim.channel import Channel
from repro.sim.core import Simulator
from repro.sim.process import Process
from repro.types import CommittedTransaction, Key, Version, VersionedValue

__all__ = ["Database", "DatabaseConfig", "TimingConfig", "DatabaseStats"]

# Re-exported under the historical name used throughout the experiments.
TimingConfig = TimingProfile


@dataclass(slots=True)
class DatabaseConfig:
    """Static configuration of the backend database.

    ``deplist_max`` is the paper's ``k`` — the bound on stored dependency
    lists. ``deplist_max=0`` disables dependency tracking entirely (the
    consistency-unaware baseline); :data:`~repro.core.deplist.UNBOUNDED`
    gives the Theorem 1 configuration.
    """

    shards: int = 1
    deplist_max: int = 5
    timing: TimingProfile = field(default_factory=TimingProfile)
    name: str = "db"
    #: Pruning order for dependency lists — "lru" (the paper), or the
    #: ablation alternatives "newest-version" / "random".
    pruning_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"need at least one shard, got {self.shards}")
        if self.deplist_max != UNBOUNDED and self.deplist_max < 0:
            raise ConfigurationError(
                f"deplist_max must be >= 0 or UNBOUNDED, got {self.deplist_max}"
            )
        validate_pruning_policy(self.pruning_policy)


@dataclass(slots=True)
class DatabaseStats:
    """Counters the experiments report."""

    committed: int = 0
    aborted: int = 0
    #: Lock-free single-entry reads served (the cache-miss traffic).
    entry_reads: int = 0
    invalidations_sent: int = 0

    @property
    def total_transactions(self) -> int:
        return self.committed + self.aborted


class Database:
    """A sharded transactional key-value store with dependency tracking."""

    def __init__(self, sim: Simulator, config: DatabaseConfig | None = None) -> None:
        self._sim = sim
        self.config = config or DatabaseConfig()
        self.participants = [
            Participant(sim, f"{self.config.name}-shard{i}")
            for i in range(self.config.shards)
        ]
        self._txn_counter = itertools.count(1)
        self._version_counter = itertools.count(1)
        self._latest_version: Version = 0
        #: §VII extensions: per-object list bounds and pinned dependencies.
        self._deplist_bounds: dict[Key, int] = {}
        self._pinned_deps: dict[Key, frozenset[Key]] = {}
        self.coordinator = Coordinator(
            sim,
            self.shard_for,
            timing=self.config.timing,
            allocate_version=self._allocate_version,
            deplist_max=self.config.deplist_max,
            wal=WriteAheadLog(name=f"{self.config.name}-coordinator-wal"),
            deplist_bound_for=self._deplist_bounds.get,
            pinned_for=self._pinned_for,
            pruning_policy=self.config.pruning_policy,
        )
        self.stats = DatabaseStats()
        self._invalidation_channels: list[Channel] = []
        self._commit_listeners: list[Callable[[CommittedTransaction], None]] = []

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def load(self, initial: Mapping[Key, object]) -> None:
        """Bulk-load the initial objects (version 0, empty dependencies)."""
        per_shard: dict[str, dict[Key, object]] = {}
        for key, value in initial.items():
            shard = self.shard_for(key)
            per_shard.setdefault(shard.name, {})[key] = value
        for participant in self.participants:
            participant.store.load(per_shard.get(participant.name, {}))

    def register_invalidation_channel(self, channel: Channel) -> None:
        """Attach a cache's invalidation upcall channel (§IV)."""
        self._invalidation_channels.append(channel)

    def add_commit_listener(self, listener: Callable[[CommittedTransaction], None]) -> None:
        """Observer for committed update transactions (the monitor taps in)."""
        self._commit_listeners.append(listener)

    # ------------------------------------------------------------------
    # §VII extensions
    # ------------------------------------------------------------------

    def set_deplist_bound(self, key: Key, bound: int) -> None:
        """Override the dependency-list bound for one object (§VII).

        "If the workload accesses objects in clusters of different sizes,
        objects of larger clusters call for longer dependency lists" — this
        lets the operator spend the space budget unevenly.
        """
        if bound != UNBOUNDED and bound < 0:
            raise ConfigurationError(f"bound must be >= 0 or UNBOUNDED, got {bound}")
        self._deplist_bounds[key] = bound

    def pin_dependency(self, carrier: Key, dependency: Key) -> None:
        """Declare ``dependency`` semantically important for ``carrier``.

        §VII: "the application could explicitly inform the cache of relevant
        object dependencies, and those could then be treated as more
        important and retained, while other less important ones are managed
        by some other policy such as LRU." Pinned entries outrank every
        other entry when ``carrier``'s dependency list is pruned.
        """
        current = self._pinned_deps.get(carrier, frozenset())
        self._pinned_deps[carrier] = current | {dependency}

    def _pinned_for(self, key: Key) -> frozenset[Key]:
        return self._pinned_deps.get(key, frozenset())

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def execute_update(
        self,
        read_keys: Sequence[Key],
        writes: Mapping[Key, object] | None = None,
        *,
        write_keys: Iterable[Key] | None = None,
        compute: Callable[[dict[Key, VersionedValue]], Mapping[Key, object]] | None = None,
    ) -> Process:
        """Run an update transaction; returns its simulation process.

        Either pass the new values directly via ``writes`` or declare
        ``write_keys`` and a ``compute`` function receiving the read
        entries. The process's value on success is the
        :class:`CommittedTransaction`; on abort the process fails with
        :class:`~repro.errors.TransactionAborted`.
        """
        if (writes is None) == (compute is None):
            raise ConfigurationError("pass exactly one of writes= or compute=")
        if writes is not None:
            write_keys = tuple(writes)
            payload = dict(writes)
            compute_fn = lambda _reads: payload  # noqa: E731 - trivial closure
        else:
            if write_keys is None:
                raise ConfigurationError("compute= requires write_keys=")
            write_keys = tuple(dict.fromkeys(write_keys))
            compute_fn = compute

        txn_id = next(self._txn_counter)
        handle = TransactionHandle(
            txn_id=txn_id,
            age=txn_id,
            read_keys=tuple(dict.fromkeys(read_keys)),
            write_keys=tuple(write_keys),
            compute=compute_fn,
            start_time=self._sim.now,
        )
        return self._sim.process(self._transaction_process(handle))

    def _transaction_process(self, handle: TransactionHandle):
        try:
            outcome = yield from self.coordinator.run_transaction(handle)
        except GeneratorExit:
            # The process generator is being reaped (simulation ended with
            # the transaction in flight and the interpreter collected it) —
            # that is teardown, not an abort, and counting it would mutate
            # the stats object after results were already collected.
            raise
        except BaseException:
            self.stats.aborted += 1
            raise
        self.stats.committed += 1
        self._publish_commit(outcome.committed, outcome.installed)
        return outcome.committed

    def _publish_commit(
        self, committed: CommittedTransaction, installed: tuple[VersionedValue, ...]
    ) -> None:
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("db"):
            tracer.emit(
                self._sim.now,
                "db",
                "commit",
                {
                    "backend": self.namespace,
                    "txn": committed.txn_id,
                    "writes": len(installed),
                },
            )
            tracer.metrics.count("db.commits")
        for listener in self._commit_listeners:
            listener(committed)
        for entry in installed:
            record = InvalidationRecord(
                key=entry.key,
                version=entry.version,
                txn_id=committed.txn_id,
                commit_time=self._sim.now,
                namespace=self.namespace,
            )
            for channel in self._invalidation_channels:
                channel.send(record)
                self.stats.invalidations_sent += 1

    # ------------------------------------------------------------------
    # Cache-facing reads
    # ------------------------------------------------------------------

    def read_entry(self, key: Key) -> VersionedValue:
        """Lock-free read of the current committed entry (cache-miss path)."""
        self.stats.entry_reads += 1
        entry = self.shard_for(key).read_latest(key)
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("db"):
            tracer.emit(
                self._sim.now,
                "db",
                "entry_read",
                {"backend": self.namespace, "key": key, "version": entry.version},
            )
            tracer.metrics.count("db.entry_reads")
        return entry

    # ------------------------------------------------------------------
    # Topology and versions
    # ------------------------------------------------------------------

    @property
    def namespace(self) -> str:
        """This backend's version namespace (its configured name).

        Versions are commit-sequence numbers allocated per backend, so they
        are only ordered within one namespace; the consistency monitor keys
        serialization-graph edges by ``(namespace, version)`` and caches
        reject invalidations stamped with a foreign namespace.
        """
        return self.config.name

    def shard_for(self, key: Key) -> Participant:
        """The participant that stores ``key`` (stable hash placement).

        Uses CRC-32 of the encoded key, not builtin ``hash``: the builtin
        is salted per process, which would place keys differently in every
        ``multiprocessing`` sweep worker and break the serial ≡ parallel
        determinism guarantee for multi-shard backends.
        """
        if len(self.participants) == 1:
            return self.participants[0]
        index = zlib.crc32(key.encode("utf-8")) % len(self.participants)
        return self.participants[index]

    def _allocate_version(self) -> Version:
        version = next(self._version_counter)
        self._latest_version = version
        return version

    @property
    def latest_version(self) -> Version:
        return self._latest_version

    def current_version_of(self, key: Key) -> Version:
        """The committed version of ``key`` (diagnostics and tests)."""
        return self.shard_for(key).store.version_of(key)
