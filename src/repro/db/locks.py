"""Strict two-phase locking with wound-wait deadlock avoidance.

Each :class:`~repro.db.participant.Participant` owns one lock manager for the
keys it stores. Transactions acquire shared (S) or exclusive (X) locks during
their execution phase and hold them until commit or abort (strict 2PL), which
is what makes the database serializable — the property both the paper's
Theorem 1 proof and our consistency monitor build on.

Deadlock avoidance is wound-wait (Rosenkrantz et al.): a requester *older*
than a conflicting holder wounds (aborts) the younger holder; a *younger*
requester waits. Age is the transaction's start sequence number, so the
scheme is deadlock-free and the oldest transaction always makes progress.
Transactions that have entered the prepared state of two-phase commit are
immune to wounding — a prepared participant may no longer unilaterally abort
— which is safe because prepared transactions never wait for locks and
therefore cannot take part in a deadlock cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import DeadlockDetected, SimulationError
from repro.sim.core import Event, Simulator
from repro.types import Key, TxnId

__all__ = ["LockMode", "LockManager", "LockRequest"]


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible_with(self, other: "LockMode") -> bool:
        return self is LockMode.SHARED and other is LockMode.SHARED


@dataclass(slots=True)
class LockRequest:
    """A queued lock request waiting for conflicting holders to release."""

    txn_id: TxnId
    age: int
    mode: LockMode
    event: Event
    cancelled: bool = False


@dataclass(slots=True)
class _KeyLock:
    """Lock state for a single key."""

    holders: dict[TxnId, LockMode] = field(default_factory=dict)
    queue: list[LockRequest] = field(default_factory=list)


class LockManager:
    """Per-participant S/X lock table.

    The manager itself knows nothing about transactions beyond an id, an age
    (start sequence) and a wound callback; the participant supplies those.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._locks: dict[Key, _KeyLock] = {}
        self._held_by_txn: dict[TxnId, set[Key]] = {}
        #: Keys on whose queue each transaction ever waited, in join order.
        #: Lets release_all cancel waits without scanning every lock table
        #: entry in the store (dict-as-ordered-set for determinism).
        self._queued_by_txn: dict[TxnId, dict[Key, None]] = {}
        self._ages: dict[TxnId, int] = {}
        self._wound_callbacks: dict[TxnId, Callable[[TxnId], None]] = {}
        self._prepared: set[TxnId] = set()
        #: Total wounds issued, for experiment statistics.
        self.wounds = 0

    # ------------------------------------------------------------------
    # Transaction registration
    # ------------------------------------------------------------------

    def register(self, txn_id: TxnId, age: int, on_wound: Callable[[TxnId], None]) -> None:
        """Introduce a transaction before its first lock request."""
        if txn_id in self._ages:
            raise SimulationError(f"transaction {txn_id} registered twice")
        self._ages[txn_id] = age
        self._wound_callbacks[txn_id] = on_wound
        self._held_by_txn[txn_id] = set()

    def mark_prepared(self, txn_id: TxnId) -> None:
        """Make ``txn_id`` immune to wounding (entered 2PC prepared state)."""
        self._prepared.add(txn_id)

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------

    def acquire(self, txn_id: TxnId, key: Key, mode: LockMode) -> Event:
        """Request a lock; the returned event succeeds when granted.

        The event fails with :class:`DeadlockDetected` if the requester is
        wounded while waiting. Lock upgrades (S already held, X requested)
        are honoured in place when the requester is the sole holder and get
        queue priority otherwise.
        """
        if txn_id not in self._ages:
            raise SimulationError(f"transaction {txn_id} not registered with lock manager")
        event = self._sim.event()
        state = self._locks.get(key)
        if state is None:
            state = self._locks[key] = _KeyLock()

        held = state.holders.get(txn_id)
        if held is not None:
            if held is LockMode.EXCLUSIVE or held is mode:
                event.succeed(mode)  # already sufficient
                return event
            # Upgrade S -> X.
            others = [t for t in state.holders if t != txn_id]
            if not others:
                state.holders[txn_id] = LockMode.EXCLUSIVE
                event.succeed(mode)
                return event
            self._wound_younger(txn_id, others)
            state.queue.insert(0, LockRequest(txn_id, self._ages[txn_id], mode, event))
            self._queued_by_txn.setdefault(txn_id, {})[key] = None
            return event

        conflicting = [
            holder
            for holder, held_mode in state.holders.items()
            if not mode.compatible_with(held_mode)
        ]
        if not conflicting and not self._blocked_by_queue(state, txn_id, mode):
            self._grant(state, txn_id, key, mode)
            event.succeed(mode)
            return event

        if conflicting:
            self._wound_younger(txn_id, conflicting)
        state.queue.append(LockRequest(txn_id, self._ages[txn_id], mode, event))
        self._queued_by_txn.setdefault(txn_id, {})[key] = None
        return event

    def release_all(self, txn_id: TxnId) -> None:
        """Release every lock held by ``txn_id`` and cancel its waits."""
        keys = self._held_by_txn.pop(txn_id, set())
        for key in keys:
            state = self._locks.get(key)
            if state is None:
                continue
            state.holders.pop(txn_id, None)
            self._promote_waiters(state, key)
        for queued_key in self._queued_by_txn.pop(txn_id, ()):
            state = self._locks.get(queued_key)
            if state is None:
                continue
            for request in state.queue:
                if request.txn_id == txn_id and not request.cancelled:
                    request.cancelled = True
                    if not request.event.triggered:
                        request.event.fail(
                            DeadlockDetected(txn_id, "lock wait cancelled by abort")
                        )
        self._ages.pop(txn_id, None)
        self._wound_callbacks.pop(txn_id, None)
        self._prepared.discard(txn_id)

    # ------------------------------------------------------------------
    # Introspection (tests and statistics)
    # ------------------------------------------------------------------

    def holders(self, key: Key) -> dict[TxnId, LockMode]:
        state = self._locks.get(key)
        return dict(state.holders) if state else {}

    def queue_length(self, key: Key) -> int:
        state = self._locks.get(key)
        return sum(1 for r in state.queue if not r.cancelled) if state else 0

    def held_keys(self, txn_id: TxnId) -> set[Key]:
        return set(self._held_by_txn.get(txn_id, set()))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _grant(self, state: _KeyLock, txn_id: TxnId, key: Key, mode: LockMode) -> None:
        state.holders[txn_id] = mode
        self._held_by_txn.setdefault(txn_id, set()).add(key)

    def _blocked_by_queue(self, state: _KeyLock, txn_id: TxnId, mode: LockMode) -> bool:
        """FIFO fairness: a new request must not overtake waiting ones.

        Shared requests may still be granted alongside compatible holders if
        every queued request is also shared (no writer starvation risk).
        """
        for request in state.queue:
            if request.cancelled:
                continue
            if mode is LockMode.EXCLUSIVE or request.mode is LockMode.EXCLUSIVE:
                return True
        return False

    def _wound_younger(self, requester: TxnId, holders: list[TxnId]) -> None:
        requester_age = self._ages[requester]
        for holder in holders:
            holder_age = self._ages.get(holder)
            if holder_age is None or holder in self._prepared:
                continue
            if requester_age < holder_age:
                self.wounds += 1
                callback = self._wound_callbacks.get(holder)
                if callback is not None:
                    # Deliver asynchronously so the victim aborts through its
                    # own control flow, not re-entrantly inside acquire().
                    self._sim.schedule(0.0, callback, holder)

    def _promote_waiters(self, state: _KeyLock, key: Key) -> None:
        """Grant queued requests that are now compatible, in FIFO order."""
        while state.queue:
            request = state.queue[0]
            if request.cancelled:
                state.queue.pop(0)
                continue
            held = state.holders.get(request.txn_id)
            if held is LockMode.SHARED and request.mode is LockMode.EXCLUSIVE:
                # Pending upgrade: grant once sole holder.
                others = [t for t in state.holders if t != request.txn_id]
                if others:
                    return
                state.holders[request.txn_id] = LockMode.EXCLUSIVE
                state.queue.pop(0)
                if not request.event.triggered:
                    request.event.succeed(request.mode)
                continue
            conflicting = [
                holder
                for holder, held_mode in state.holders.items()
                if holder != request.txn_id
                and not request.mode.compatible_with(held_mode)
            ]
            if conflicting:
                return
            state.queue.pop(0)
            self._grant(state, request.txn_id, key, request.mode)
            if not request.event.triggered:
                request.event.succeed(request.mode)
