"""Configuration of one experimental column (Figure 2).

Defaults reproduce §IV: update clients at 100 txn/s against the database,
read-only clients at 500 txn/s against a single cache, 5 objects per
transaction (carried by the workload), 20 % of invalidations dropped
uniformly at random, dependency lists bounded at 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# CacheKind moved to the cache layer with the scenario redesign so that
# scenario specs can name cache variants without importing the experiment
# harness; it is re-exported here under its historical path.
from repro.cache.kinds import CacheKind
from repro.core.deplist import UNBOUNDED, validate_pruning_policy
from repro.core.strategies import Strategy
from repro.db.database import TimingConfig
from repro.errors import ConfigurationError

__all__ = ["CacheKind", "ColumnConfig"]


@dataclass(slots=True)
class ColumnConfig:
    """All knobs of a single-column run."""

    seed: int = 1
    #: Simulated seconds of measured run (after warm-up).
    duration: float = 30.0
    #: Simulated seconds before measurement starts; the cache fills and the
    #: first dependency lists propagate during warm-up.
    warmup: float = 5.0

    update_rate: float = 100.0
    read_rate: float = 500.0
    #: Client-to-cache round trip between the reads of one transaction.
    read_gap: float = 0.001

    #: The paper's ``k``; UNBOUNDED for the Theorem 1 configuration,
    #: 0 to disable dependency tracking.
    deplist_max: int = 5
    #: Dependency-list pruning order: "lru" (the paper) or the ablation
    #: alternatives "newest-version" / "random".
    pruning_policy: str = "lru"
    strategy: Strategy = Strategy.ABORT
    cache_kind: CacheKind = CacheKind.TCACHE
    #: Entry lifetime for CacheKind.TTL.
    ttl: float | None = None
    #: Optional cache capacity (None: everything fits, as in the paper).
    cache_capacity: int | None = None

    #: Fraction of invalidations dropped (§IV: 20 %).
    invalidation_loss: float = 0.2
    #: Mean invalidation delivery latency (exponential), seconds.
    invalidation_latency_mean: float = 0.05

    timing: TimingConfig = field(default_factory=TimingConfig)
    monitor_window: float = 1.0
    #: Retry aborted read-only transactions at the client (off in the paper).
    retry_aborted_reads: bool = False

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.duration}")
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0, got {self.warmup}")
        if self.update_rate < 0 or self.read_rate <= 0:
            raise ConfigurationError("rates must be positive")
        if not 0.0 <= self.invalidation_loss <= 1.0:
            raise ConfigurationError(
                f"invalidation_loss must be in [0, 1], got {self.invalidation_loss}"
            )
        if self.deplist_max != UNBOUNDED and self.deplist_max < 0:
            raise ConfigurationError(
                f"deplist_max must be >= 0 or UNBOUNDED, got {self.deplist_max}"
            )
        validate_pruning_policy(self.pruning_policy)
        if self.cache_kind is CacheKind.TTL and (self.ttl is None or self.ttl <= 0):
            raise ConfigurationError("CacheKind.TTL requires a positive ttl")

    @property
    def total_time(self) -> float:
        return self.warmup + self.duration

    def as_scenario(
        self, workload, *, read_workload=None, name: str = "column", backends=None
    ):
        """This config as a one-edge :class:`~repro.scenario.spec.ScenarioSpec`.

        With the default backend tier the scenario executes bit-identically
        to ``run_column`` with the same arguments; use it as the starting
        point for growing a single-column experiment into a fleet, or pass
        ``backends=[BackendSpec(...)]`` to re-run the column against a
        custom (e.g. sharded) backend.
        """
        from repro.scenario.spec import ScenarioSpec

        return ScenarioSpec.from_column(
            self, workload, read_workload=read_workload, name=name,
            backends=backends,
        )
