"""Figure 8 — ABORT vs EVICT vs RETRY on the realistic workloads.

"In these experiments we use dependency lists of length 3. ... With the
Amazon workload, ABORT is able to detect 70 % of the inconsistent
transactions, whereas with the less-clustered Orkut workload it only
detects 43 %. In both cases EVICT reduces uncommittable transactions
considerably — 20 % with the Amazon workload and 36 % with Orkut. In the
Amazon workload, RETRY further reduces this value to 11 % of its value with
ABORT."
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.realistic import WORKLOAD_NAMES, realistic_workload
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep

__all__ = ["run", "spec"]


def make_config(seed: int = 8, duration: float = 30.0) -> ColumnConfig:
    return ColumnConfig(seed=seed, duration=duration, warmup=5.0, deplist_max=3)


def spec(
    *,
    seed: int = 8,
    duration: float = 30.0,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
) -> SweepSpec:
    """Fig. 8's six bars: one column per (workload, strategy)."""
    config = make_config(seed=seed, duration=duration)
    points = []
    for name in workloads:
        workload = realistic_workload(name, seed=seed)
        for strategy in Strategy:
            points.append(
                SweepPoint(
                    label=f"{name}:{strategy.name}",
                    config=replace(config, strategy=strategy),
                    workload=workload,
                    params={"workload": name, "strategy": strategy.name},
                )
            )
    return SweepSpec(
        name="fig8",
        description="ABORT vs EVICT vs RETRY on realistic workloads (§V-B2)",
        root_seed=seed,
        points=points,
    )


def run(
    *,
    seed: int = 8,
    duration: float = 30.0,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, object]]:
    """One row per (workload, strategy), Fig. 8's six bars."""
    sweep = run_sweep(
        spec(seed=seed, duration=duration, workloads=workloads),
        jobs=jobs,
        dispatch=dispatch,
    )
    rows: list[dict[str, object]] = []
    for point, result in sweep.pairs():
        shares = result.class_shares()
        rows.append(
            {
                "workload": point.params["workload"],
                "strategy": point.params["strategy"],
                "consistent_pct": 100.0 * shares["consistent"],
                "inconsistent_pct": 100.0 * shares["inconsistent"],
                "aborted_pct": 100.0
                * (shares["aborted_necessary"] + shares["aborted_unnecessary"]),
                "detection_ratio_pct": 100.0 * result.detection_ratio,
            }
        )
    return rows


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run(), title="Figure 8: strategy comparison (realistic workloads)")
