"""Figure 4 — convergence of T-Cache when clusters form.

"Initially accesses are uniformly at random from the entire set (i.e., no
clustering whatsoever), then at a single moment they become perfectly
clustered into clusters of size 5. Transactions are aborted on detecting an
inconsistency. We use a transaction rate of approximately 500 per second.
The database includes 1000 objects. ... Before t = 58s access is
unclustered, and as a result the dependency lists are useless; only few
inconsistencies are detected ... At t = 58s, accesses become perfectly
clustered. As desired, we see fast improvement of inconsistency detection."

The output is the per-second stacked series of Fig. 4: consistent commits,
inconsistent commits and aborts, in transactions per second.
"""

from __future__ import annotations

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import ColumnResult
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.workloads.synthetic import (
    PerfectClusterWorkload,
    PhaseSwitchWorkload,
    UniformWorkload,
)

__all__ = ["SWITCH_TIME", "run", "run_result", "phase_summaries", "spec"]

#: The paper switches the workload at t = 58 s.
SWITCH_TIME = 58.0


def make_workload(n_objects: int = 1000, switch_time: float = SWITCH_TIME):
    return PhaseSwitchWorkload(
        before=UniformWorkload(n_objects),
        after=PerfectClusterWorkload(n_objects, cluster_size=5),
        switch_time=switch_time,
    )


def make_config(seed: int = 4, duration: float = 160.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed,
        duration=duration,
        warmup=0.0,  # the whole timeline is the figure
        deplist_max=5,
        strategy=Strategy.ABORT,
    )


def spec(
    *, seed: int = 4, duration: float = 160.0, switch_time: float = SWITCH_TIME
) -> SweepSpec:
    """Figure 4 is a single timeline, i.e. a one-point sweep."""
    return SweepSpec(
        name="fig4",
        description="convergence after sudden cluster formation (§V-A)",
        root_seed=seed,
        points=[
            SweepPoint(
                label="timeline",
                config=make_config(seed=seed, duration=duration),
                workload=make_workload(switch_time=switch_time),
                params={"switch_time": switch_time},
            )
        ],
    )


def run_result(
    *,
    seed: int = 4,
    duration: float = 160.0,
    switch_time: float = SWITCH_TIME,
    jobs: int | None = 1,
    dispatch=None,
) -> ColumnResult:
    sweep = run_sweep(
        spec(seed=seed, duration=duration, switch_time=switch_time),
        jobs=jobs,
        dispatch=dispatch,
    )
    return sweep.results[0]


def run(
    *,
    seed: int = 4,
    duration: float = 160.0,
    switch_time: float = SWITCH_TIME,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, float]]:
    """Per-second rows: time, consistent, inconsistent, aborted [txn/s]."""
    result = run_result(
        seed=seed,
        duration=duration,
        switch_time=switch_time,
        jobs=jobs,
        dispatch=dispatch,
    )
    return [
        {
            "time": row["time"],
            "consistent_tps": row["consistent"],
            "inconsistent_tps": row["inconsistent"],
            "aborted_tps": row["aborted_necessary"] + row["aborted_unnecessary"],
        }
        for row in result.series
    ]


def phase_summaries(
    rows: list[dict[str, float]], switch_time: float = SWITCH_TIME
) -> dict[str, dict[str, float]]:
    """Mean rates before and after the switch (skipping 5 s of transition).

    This is the quantitative reading of Fig. 4 the benchmarks assert on:
    the inconsistent-commit rate collapses after cluster formation while the
    abort rate rises.
    """

    def mean_rates(selected: list[dict[str, float]]) -> dict[str, float]:
        if not selected:
            return {"consistent_tps": 0.0, "inconsistent_tps": 0.0, "aborted_tps": 0.0}
        keys = ("consistent_tps", "inconsistent_tps", "aborted_tps")
        return {key: sum(row[key] for row in selected) / len(selected) for key in keys}

    before = [row for row in rows if 5.0 <= row["time"] < switch_time - 1.0]
    after = [row for row in rows if row["time"] >= switch_time + 5.0]
    return {"before": mean_rates(before), "after": mean_rates(after)}


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    rows = run()
    print_table(rows[::10], title="Figure 4: convergence (every 10th second)")
    summaries = phase_summaries(rows)
    print("\nbefore switch:", summaries["before"])
    print("after  switch:", summaries["after"])
