"""The protocol race: every registered consistency protocol, same scenarios.

The paper evaluates one protocol. The protocol zoo (:mod:`repro.protocols`)
makes alternatives first-class, and this experiment races them: each racing
protocol runs the same three library fleets (heterogeneous loss, geo skew,
flash crowd) under identical seeds and workloads — only the per-edge
``protocol`` differs — and the artifact ranks them on the three axes the
designs actually trade against each other:

* **inconsistency rate** — committed read-only transactions the omniscient
  monitor classifies as inconsistent;
* **read latency proxy** — cache round trip plus the protocol's backend
  round trips per read (validation, causal refresh, proof re-signing),
  weighted by nominal RTTs (:data:`EDGE_RTT_MS` / :data:`BACKEND_RTT_MS`);
* **backend load** — cache-originated backend reads per simulated second.

Ranking is lexicographic: fewest inconsistencies first, then cheapest
reads. That places the pessimistic ``locking`` bound at one end (zero
inconsistency, a backend round trip per read) and the best-effort caches at
the other, with the paper's detector and the causal/verified designs
competing in between — the figure-style deliverable of the ROADMAP's
protocol-zoo item.

The sweep is an ordinary :class:`~repro.experiments.sweep.SweepSpec` over
portable scenario points, so it runs serial, multiprocess (``--jobs``),
distributed (``--dispatch``) and fleet-submitted (``--fleet``) with
byte-identical artifacts (asserted by the integration suite and the
``protocol-smoke`` CI job).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from repro.errors import ConfigurationError
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.scenario.library import (
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
)
from repro.scenario.results import ScenarioResult
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "RACE_PROTOCOLS",
    "RACE_SCHEMA",
    "EDGE_RTT_MS",
    "BACKEND_RTT_MS",
    "TTL_SECONDS",
    "spec",
    "race_rows",
    "ranking_rows",
    "artifact",
    "validate_artifact",
    "run",
]

#: The default field: the paper's detector as incumbent plus the three
#: protocol-zoo competitors. Any registered protocol name may race.
RACE_PROTOCOLS: tuple[str, ...] = (
    "tcache-detector",
    "causal",
    "verified-read",
    "locking",
)

RACE_SCHEMA = "repro.protocol-race/1"

#: Nominal client-to-edge round trip charged to every cache read, ms.
EDGE_RTT_MS = 1.0
#: Nominal edge-to-backend round trip charged per backend read, ms. The
#: 20:1 ratio against :data:`EDGE_RTT_MS` follows the paper's edge/backend
#: setting (§II): the whole point of edge caching is that the backend is an
#: order of magnitude farther away.
BACKEND_RTT_MS = 20.0

#: Expiry granted to TTL-family protocols when a library edge does not set
#: its own ``ttl`` (the library fleets are detector-oriented and leave it
#: unset); one second sits between the paper's update interarrivals.
TTL_SECONDS = 1.0


def _base_scenarios(duration: float, seed: int) -> list[tuple[str, ScenarioSpec]]:
    warmup = max(1.0, duration / 6.0)
    return [
        (
            "hetero-loss",
            heterogeneous_loss_fleet(duration=duration, warmup=warmup, seed=seed),
        ),
        (
            "geo-skew",
            geo_skewed_scenario(duration=duration, warmup=warmup, seed=seed + 1),
        ),
        (
            "flash-crowd",
            flash_crowd_scenario(duration=duration, warmup=warmup, seed=seed + 2),
        ),
    ]


def _with_protocol(scenario: ScenarioSpec, protocol: str) -> ScenarioSpec:
    def _adapt(edge):
        ttl = edge.ttl
        if protocol == "ttl" and ttl is None:
            ttl = TTL_SECONDS
        return replace(edge, protocol=protocol, ttl=ttl)

    return replace(
        scenario,
        name=f"{scenario.name}/{protocol}",
        edges=[_adapt(edge) for edge in scenario.edges],
    )


def spec(
    *,
    protocols: Sequence[str] = RACE_PROTOCOLS,
    duration: float = 30.0,
    seed: int = 101,
) -> SweepSpec:
    """One sweep point per (library scenario, racing protocol) pair.

    Every protocol sees the same scenarios at the same seeds; the per-point
    seed offsets come from point order, so the point grid is laid out
    scenario-major to keep each scenario's seed stable across protocol
    fields of different sizes.
    """
    if not protocols:
        raise ConfigurationError("protocol race needs at least one protocol")
    from repro.protocols import get_protocol

    for name in protocols:
        get_protocol(name)  # fail loudly before any simulation runs
    points = [
        SweepPoint(
            label=f"{scenario_label}/{protocol}",
            scenario=_with_protocol(scenario, protocol),
            params={"scenario": scenario_label, "protocol": protocol},
        )
        for scenario_label, scenario in _base_scenarios(duration, seed)
        for protocol in protocols
    ]
    return SweepSpec(
        name="protocol-race",
        description=(
            "consistency-protocol race: "
            + ", ".join(protocols)
            + " across the library fleets"
        ),
        root_seed=seed,
        points=points,
    )


def race_rows(
    pairs: Sequence[tuple[Mapping[str, object], ScenarioResult]],
) -> list[dict[str, object]]:
    """One row per (scenario, protocol) point, in sweep order."""
    rows: list[dict[str, object]] = []
    for params, result in pairs:
        fleet = result.fleet
        reads = fleet.cache_reads
        backend_reads_per_read = fleet.db_accesses / reads if reads else 0.0
        rows.append(
            {
                "scenario": params["scenario"],
                "protocol": params["protocol"],
                "inconsistency_pct": round(100.0 * fleet.inconsistency_ratio, 3),
                "abort_pct": round(100.0 * fleet.abort_ratio, 3),
                "read_latency_ms": round(
                    EDGE_RTT_MS + backend_reads_per_read * BACKEND_RTT_MS, 3
                ),
                "backend_reads_per_s": round(fleet.backend_read_rate, 1),
                "hit_pct": round(100.0 * fleet.hit_ratio, 1),
                "update_commits": fleet.update_commits,
            }
        )
    return rows


def ranking_rows(rows: Sequence[Mapping[str, object]]) -> list[dict[str, object]]:
    """Per-protocol means across scenarios, ranked.

    Lexicographic order: lowest mean inconsistency wins; mean read latency
    breaks ties (then the protocol name, for full determinism).
    """
    by_protocol: dict[str, list[Mapping[str, object]]] = {}
    for row in rows:
        by_protocol.setdefault(str(row["protocol"]), []).append(row)

    def _mean(group: list[Mapping[str, object]], field: str) -> float:
        return sum(float(row[field]) for row in group) / len(group)

    aggregated = [
        {
            "protocol": protocol,
            "scenarios": len(group),
            "inconsistency_pct": round(_mean(group, "inconsistency_pct"), 3),
            "abort_pct": round(_mean(group, "abort_pct"), 3),
            "read_latency_ms": round(_mean(group, "read_latency_ms"), 3),
            "backend_reads_per_s": round(_mean(group, "backend_reads_per_s"), 1),
            "hit_pct": round(_mean(group, "hit_pct"), 1),
        }
        for protocol, group in by_protocol.items()
    ]
    aggregated.sort(
        key=lambda row: (
            row["inconsistency_pct"],
            row["read_latency_ms"],
            row["protocol"],
        )
    )
    for rank, row in enumerate(aggregated, start=1):
        row["rank"] = rank
    return aggregated


def artifact(
    rows: Sequence[Mapping[str, object]],
    ranking: Sequence[Mapping[str, object]],
    *,
    duration: float,
    seed: int,
) -> dict[str, object]:
    """The schema'd race artifact (deterministic for fixed inputs)."""
    return {
        "schema": RACE_SCHEMA,
        "duration": duration,
        "seed": seed,
        "protocols": sorted({str(row["protocol"]) for row in rows}),
        "scenarios": sorted({str(row["scenario"]) for row in rows}),
        "rows": [dict(row) for row in rows],
        "ranking": [dict(row) for row in ranking],
    }


_ROW_FIELDS = {
    "scenario": str,
    "protocol": str,
    "inconsistency_pct": (int, float),
    "abort_pct": (int, float),
    "read_latency_ms": (int, float),
    "backend_reads_per_s": (int, float),
    "hit_pct": (int, float),
    "update_commits": int,
}

_RANKING_FIELDS = {
    "rank": int,
    "protocol": str,
    "scenarios": int,
    "inconsistency_pct": (int, float),
    "abort_pct": (int, float),
    "read_latency_ms": (int, float),
    "backend_reads_per_s": (int, float),
    "hit_pct": (int, float),
}


def validate_artifact(payload: Mapping[str, object]) -> None:
    """Assert ``payload`` matches :data:`RACE_SCHEMA` (hand-rolled — the
    container has no jsonschema); raises :class:`ConfigurationError`."""

    def _fail(message: str) -> None:
        raise ConfigurationError(f"protocol-race artifact invalid: {message}")

    if not isinstance(payload, Mapping):
        _fail(f"payload must be a mapping, got {type(payload).__name__}")
    if payload.get("schema") != RACE_SCHEMA:
        _fail(f"schema must be {RACE_SCHEMA!r}, got {payload.get('schema')!r}")
    for field in ("protocols", "scenarios", "rows", "ranking"):
        if not isinstance(payload.get(field), list):
            _fail(f"{field!r} must be a list")
    for field, expected in (("duration", (int, float)), ("seed", int)):
        if not isinstance(payload.get(field), expected):
            _fail(f"{field!r} must be {expected}")
    if not payload["protocols"]:
        _fail("at least one protocol required")
    for section, schema in (("rows", _ROW_FIELDS), ("ranking", _RANKING_FIELDS)):
        for i, row in enumerate(payload[section]):
            if not isinstance(row, Mapping):
                _fail(f"{section}[{i}] must be a mapping")
            for field, types in schema.items():
                value = row.get(field)
                if not isinstance(value, types) or isinstance(value, bool):
                    _fail(
                        f"{section}[{i}].{field} must be {types}, "
                        f"got {value!r}"
                    )
    expected = len(payload["protocols"]) * len(payload["scenarios"])
    if len(payload["rows"]) != expected:
        _fail(
            f"expected {expected} rows (protocols x scenarios), "
            f"got {len(payload['rows'])}"
        )
    if len(payload["ranking"]) != len(payload["protocols"]):
        _fail(
            f"expected {len(payload['protocols'])} ranking rows, "
            f"got {len(payload['ranking'])}"
        )
    ranks = [row["rank"] for row in payload["ranking"]]
    if ranks != list(range(1, len(ranks) + 1)):
        _fail(f"ranking must be 1..{len(ranks)} in order, got {ranks}")
    if "telemetry" in payload:
        # Present only on traced runs: one repro.telemetry/1 section per
        # race point, keyed by its point label.
        from repro.telemetry import validate_telemetry

        sections = payload["telemetry"]
        if not isinstance(sections, Mapping):
            _fail("'telemetry' must be a mapping of point label -> section")
        for label, section in sections.items():
            try:
                validate_telemetry(section)
            except ConfigurationError as exc:
                _fail(f"telemetry[{label!r}]: {exc}")


def run(
    *,
    protocols: Sequence[str] = RACE_PROTOCOLS,
    duration: float = 30.0,
    seed: int = 101,
    jobs: int | None = 1,
    dispatch=None,
) -> tuple[list[dict[str, object]], list[dict[str, object]], dict[str, object]]:
    """Run the race; returns (per-point rows, ranking, schema'd artifact)."""
    sweep = run_sweep(
        spec(protocols=protocols, duration=duration, seed=seed),
        jobs=jobs,
        dispatch=dispatch,
    )
    rows = race_rows([(point.params, result) for point, result in sweep.pairs()])
    ranking = ranking_rows(rows)
    payload = artifact(rows, ranking, duration=duration, seed=seed)
    telemetry_sections = {
        point.label: result.telemetry
        for point, result in sweep.pairs()
        if result.telemetry is not None
    }
    if telemetry_sections:
        # Traced runs only: normalized_artifact strips this key, so a
        # traced race still normalizes to its untraced twin.
        payload["telemetry"] = telemetry_sections
    validate_artifact(payload)
    return rows, ranking, payload
