"""Figure 7(c)/(d) — efficacy and overhead on the realistic workloads.

Panel (c): sweep the maximum dependency-list size for T-Cache and measure
the inconsistency ratio, the cache hit ratio, and the database access rate
(normalised to the no-dependency baseline). The paper's reading: "a single
dependency reduces inconsistencies to 56 % of their original value, two
dependencies reduce inconsistencies to 11 % ... In both workloads there is
no visible effect on cache hit ratio."

Panel (d): sweep the cache-entry TTL of the consistency-unaware baseline.
The paper's reading: "By increasing database access rate to more than twice
its original load we only observe a reduction of inconsistencies of about
10 %."

Strategy note: §V-B2 does not name the strategy but observes that "the abort
rate is negligible in all runs" — which only holds for RETRY (ABORT and
EVICT turn every detection into an abort). The sweep therefore runs RETRY;
the k=0 baseline is strategy-independent because nothing is ever detected
without dependencies.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import CacheKind, ColumnConfig
from repro.experiments.realistic import WORKLOAD_NAMES, realistic_workload
from repro.experiments.sweep import SweepPoint, SweepSpec, SweepResult, run_sweep

__all__ = [
    "DEFAULT_DEPLIST_SIZES",
    "DEFAULT_TTLS",
    "deplist_spec",
    "run_deplist_sweep",
    "run_ttl_sweep",
    "ttl_spec",
]

#: Panel (c) x-axis: dependency list bounds 0 (baseline) through 5.
DEFAULT_DEPLIST_SIZES: tuple[int, ...] = (0, 1, 2, 3, 4, 5)

#: Panel (d) x-axis (seconds, descending like the paper's reversed log axis).
#: None denotes the no-TTL baseline the sweep is normalised against. The
#: paper sweeps 30–6400 s; our simulated column repairs lost invalidations
#: within ~2.5 s (per-object update recurrence ≈ 2 s at the paper's rates),
#: so the equivalent knee sits at single-digit seconds — the sweep covers
#: the same regimes (no effect → mild effect → ≥2x database load).
DEFAULT_TTLS: tuple[float | None, ...] = (None, 30.0, 10.0, 5.0, 3.0, 2.0, 1.0, 0.5)


def make_config(seed: int = 7, duration: float = 30.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed,
        duration=duration,
        warmup=5.0,
        strategy=Strategy.RETRY,
    )


def deplist_spec(
    sizes: tuple[int, ...] = DEFAULT_DEPLIST_SIZES,
    *,
    seed: int = 7,
    duration: float = 30.0,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
) -> SweepSpec:
    """Panel (c) grid: one column per (workload, dependency list size)."""
    config = make_config(seed=seed, duration=duration)
    points = []
    for name in workloads:
        workload = realistic_workload(name, seed=seed)
        for size in sizes:
            points.append(
                SweepPoint(
                    label=f"{name}:k={size}",
                    config=replace(config, deplist_max=size),
                    workload=workload,
                    params={"workload": name, "deplist_max": size},
                )
            )
    return SweepSpec(
        name="fig7c",
        description="dependency-list sweep on realistic workloads (§V-B2)",
        root_seed=seed,
        points=points,
    )


def _deplist_rows(sweep: SweepResult) -> list[dict[str, object]]:
    """Normalise each workload's columns against its k=0 baseline, in order."""
    rows: list[dict[str, object]] = []
    baseline_rate: float | None = None
    baseline_ratio: float | None = None
    for point, result in sweep.pairs():
        rate = result.db_access_rate
        ratio = result.inconsistency_ratio
        if point.params["deplist_max"] == 0:
            baseline_rate = rate or 1.0
            baseline_ratio = ratio or 1.0
        rows.append(
            {
                "workload": point.params["workload"],
                "deplist_max": point.params["deplist_max"],
                "inconsistency_ratio_pct": 100.0 * ratio,
                "vs_baseline_pct": 100.0 * ratio / baseline_ratio,
                "hit_ratio": result.hit_ratio,
                "db_rate_normed_pct": 100.0 * rate / baseline_rate,
                "abort_ratio_pct": 100.0 * result.abort_ratio,
            }
        )
    return rows


def run_deplist_sweep(
    sizes: tuple[int, ...] = DEFAULT_DEPLIST_SIZES,
    *,
    seed: int = 7,
    duration: float = 30.0,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, object]]:
    """Panel (c): one row per (workload, dependency list size)."""
    sweep = run_sweep(
        deplist_spec(sizes, seed=seed, duration=duration, workloads=workloads),
        jobs=jobs,
        dispatch=dispatch,
    )
    return _deplist_rows(sweep)


def ttl_spec(
    ttls: tuple[float | None, ...] = DEFAULT_TTLS,
    *,
    seed: int = 7,
    duration: float = 30.0,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
) -> SweepSpec:
    """Panel (d) grid: one column per (workload, TTL), TTL=None baseline."""
    config = make_config(seed=seed, duration=duration)
    points = []
    for name in workloads:
        workload = realistic_workload(name, seed=seed)
        for ttl in ttls:
            if ttl is None:
                point = replace(config, cache_kind=CacheKind.PLAIN)
            else:
                point = replace(config, cache_kind=CacheKind.TTL, ttl=ttl)
            points.append(
                SweepPoint(
                    label=f"{name}:ttl={'inf' if ttl is None else ttl}",
                    config=point,
                    workload=workload,
                    params={"workload": name, "ttl": ttl},
                )
            )
    return SweepSpec(
        name="fig7d",
        description="TTL sweep of the consistency-unaware baseline (§V-B2)",
        root_seed=seed,
        points=points,
    )


def _ttl_rows(sweep: SweepResult) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    baseline_rate: float | None = None
    baseline_ratio: float | None = None
    for point, result in sweep.pairs():
        ttl = point.params["ttl"]
        rate = result.db_access_rate
        ratio = result.inconsistency_ratio
        if ttl is None:
            baseline_rate = rate or 1.0
            baseline_ratio = ratio or 1.0
        rows.append(
            {
                "workload": point.params["workload"],
                "ttl": "inf" if ttl is None else ttl,
                "inconsistency_ratio_pct": 100.0 * ratio,
                "vs_baseline_pct": 100.0 * ratio / baseline_ratio,
                "hit_ratio": result.hit_ratio,
                "db_rate_normed_pct": 100.0 * rate / baseline_rate,
            }
        )
    return rows


def run_ttl_sweep(
    ttls: tuple[float | None, ...] = DEFAULT_TTLS,
    *,
    seed: int = 7,
    duration: float = 30.0,
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, object]]:
    """Panel (d): one row per (workload, TTL), baseline TTL=None first."""
    sweep = run_sweep(
        ttl_spec(ttls, seed=seed, duration=duration, workloads=workloads),
        jobs=jobs,
        dispatch=dispatch,
    )
    return _ttl_rows(sweep)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(
        run_deplist_sweep(), title="Figure 7c: T-Cache dependency-list sweep"
    )
    print()
    print_table(run_ttl_sweep(), title="Figure 7d: TTL baseline sweep")
