"""Figure 6 — ABORT vs EVICT vs RETRY on the synthetic workload.

"We use the approximate clusters workload with 2000 objects, a window size
of 5, a Pareto alpha parameter of 1.0, and the maximum dependency list size
is set to 5. ... For each strategy, the lower portion of the graph is the
ratio of committed transactions that are consistent, the middle portion is
committed transactions that are inconsistent, and the top portion is aborted
transactions."

Expected shape: EVICT shrinks the undetected-inconsistent band to a fraction
of its ABORT value (paper: 28 %), RETRY shrinks it further (paper: 23 %) and
also converts many aborts into commits.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import run_column
from repro.workloads.synthetic import ParetoClusterWorkload

__all__ = ["run", "run_strategy"]


def make_config(seed: int = 6, duration: float = 30.0) -> ColumnConfig:
    return ColumnConfig(seed=seed, duration=duration, warmup=5.0, deplist_max=5)


def run_strategy(
    strategy: Strategy, config: ColumnConfig | None = None
) -> dict[str, object]:
    config = replace(config or make_config(), strategy=strategy)
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=1.0)
    result = run_column(config, workload)
    shares = result.class_shares()
    return {
        "strategy": strategy.name,
        "consistent_pct": 100.0 * shares["consistent"],
        "inconsistent_pct": 100.0
        * (shares["inconsistent"]),
        "aborted_pct": 100.0
        * (shares["aborted_necessary"] + shares["aborted_unnecessary"]),
        "retries_resolved": result.retries_resolved,
        "strategy_evictions": result.cache_stats.strategy_evictions,
    }


def run(*, seed: int = 6, duration: float = 30.0) -> list[dict[str, object]]:
    """One row per strategy, same workload and seed for comparability."""
    config = make_config(seed=seed, duration=duration)
    return [
        run_strategy(strategy, config)
        for strategy in (Strategy.ABORT, Strategy.EVICT, Strategy.RETRY)
    ]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run(), title="Figure 6: strategy comparison (synthetic, alpha=1)")
