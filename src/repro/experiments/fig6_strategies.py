"""Figure 6 — ABORT vs EVICT vs RETRY on the synthetic workload.

"We use the approximate clusters workload with 2000 objects, a window size
of 5, a Pareto alpha parameter of 1.0, and the maximum dependency list size
is set to 5. ... For each strategy, the lower portion of the graph is the
ratio of committed transactions that are consistent, the middle portion is
committed transactions that are inconsistent, and the top portion is aborted
transactions."

Expected shape: EVICT shrinks the undetected-inconsistent band to a fraction
of its ABORT value (paper: 28 %), RETRY shrinks it further (paper: 23 %) and
also converts many aborts into commits.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import ColumnResult, run_column
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.workloads.synthetic import ParetoClusterWorkload

__all__ = ["run", "run_strategy", "spec"]


def make_config(seed: int = 6, duration: float = 30.0) -> ColumnConfig:
    return ColumnConfig(seed=seed, duration=duration, warmup=5.0, deplist_max=5)


def spec(*, seed: int = 6, duration: float = 30.0) -> SweepSpec:
    """One column per strategy — same workload and seed for comparability."""
    config = make_config(seed=seed, duration=duration)
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=1.0)
    return SweepSpec(
        name="fig6",
        description="ABORT vs EVICT vs RETRY, synthetic alpha=1 (§V-A)",
        root_seed=seed,
        points=[
            SweepPoint(
                label=strategy.name,
                config=replace(config, strategy=strategy),
                workload=workload,
                params={"strategy": strategy.name},
            )
            for strategy in Strategy
        ],
    )


def _row(strategy: Strategy, result: ColumnResult) -> dict[str, object]:
    shares = result.class_shares()
    return {
        "strategy": strategy.name,
        "consistent_pct": 100.0 * shares["consistent"],
        "inconsistent_pct": 100.0
        * (shares["inconsistent"]),
        "aborted_pct": 100.0
        * (shares["aborted_necessary"] + shares["aborted_unnecessary"]),
        "retries_resolved": result.retries_resolved,
        "strategy_evictions": result.cache_stats.strategy_evictions,
    }


def run_strategy(
    strategy: Strategy, config: ColumnConfig | None = None
) -> dict[str, object]:
    config = replace(config or make_config(), strategy=strategy)
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=1.0)
    return _row(strategy, run_column(config, workload))


def run(
    *, seed: int = 6, duration: float = 30.0, jobs: int | None = 1, dispatch=None
) -> list[dict[str, object]]:
    """One row per strategy, same workload and seed for comparability."""
    sweep = run_sweep(spec(seed=seed, duration=duration), jobs=jobs, dispatch=dispatch)
    return [
        _row(Strategy[point.label], result) for point, result in sweep.pairs()
    ]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run(), title="Figure 6: strategy comparison (synthetic, alpha=1)")
