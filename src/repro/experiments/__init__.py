"""Experiment harness: the single-column setup of Figure 2 plus one module
per evaluation figure.

* :mod:`repro.experiments.config` — the experiment knobs (rates, loss,
  dependency-list bound, strategy, cache kind).
* :mod:`repro.experiments.runner` — builds simulator + database +
  invalidation channel + cache + clients + monitor, runs, collects results.
* :mod:`repro.experiments.fig3_alpha` … :mod:`repro.experiments.fig8_strategies`
  — parameter sweeps reproducing Figures 3–8.
* :mod:`repro.experiments.theorem1` — the unbounded-resources configuration
  of Theorem 1.
* :mod:`repro.experiments.sweep` — the declarative, ``multiprocessing``-backed
  sweep engine every figure module builds its grid on; its points are single
  columns or whole multi-edge scenarios (:mod:`repro.scenario`).
* :mod:`repro.experiments.scenarios` — the CLI's multi-edge scenario
  experiment over the :mod:`repro.scenario.library` fleets.
* :mod:`repro.experiments.report` — plain-text table rendering and JSON
  artifact output shared by the CLI, benches and examples.
"""

from repro.experiments.config import ColumnConfig, CacheKind
from repro.experiments.runner import ColumnResult, run_column
from repro.experiments.sweep import (
    SweepPoint,
    SweepResult,
    SweepSpec,
    derive_seed,
    run_sweep,
)

__all__ = [
    "CacheKind",
    "ColumnConfig",
    "ColumnResult",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "derive_seed",
    "run_column",
    "run_sweep",
]
