"""Single-column (one-edge) experiment runner — a shim over the scenario layer.

Historically this module wired the whole of Figure 2 by hand; with the
scenario redesign the wiring lives in :mod:`repro.scenario.runner`, and the
single-column entry points here build a one-edge
:class:`~repro.scenario.spec.ScenarioSpec` instead. The scenario layer
preserves the historical RNG stream names and transaction-id range for its
first edge, so these shims reproduce the pre-scenario results bit for bit —
all nine figure modules run unchanged on top of them.

:class:`ColumnResult` itself now lives in :mod:`repro.scenario.results` and
is re-exported here under its historical import path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.base import CacheServer
from repro.clients.read_client import ReadOnlyClient
from repro.clients.update_client import UpdateClient
from repro.db.database import Database
from repro.experiments.config import ColumnConfig
from repro.monitor.monitor import ConsistencyMonitor
from repro.scenario.results import ColumnResult
from repro.scenario.runner import build_scenario, collect_column_result
from repro.scenario.spec import ScenarioSpec
from repro.sim.channel import Channel
from repro.sim.core import Simulator
from repro.workloads.base import Workload

__all__ = ["ColumnResult", "run_column", "build_column", "Column"]


@dataclass(slots=True)
class Column:
    """A fully wired column, exposed for integration tests and examples."""

    sim: Simulator
    config: ColumnConfig
    database: Database
    cache: CacheServer
    channel: Channel
    monitor: ConsistencyMonitor
    #: ``None`` when ``config.update_rate`` is 0 (a read-only column).
    update_client: UpdateClient | None
    read_client: ReadOnlyClient


def build_column(
    config: ColumnConfig,
    workload: Workload,
    *,
    read_workload: Workload | None = None,
) -> Column:
    """Wire every component of Figure 2 without running the clock."""
    spec = ScenarioSpec.from_column(config, workload, read_workload=read_workload)
    scenario = build_scenario(spec)
    edge = scenario.edges[0]
    return Column(
        sim=scenario.sim,
        config=config,
        database=scenario.database,
        cache=edge.cache,
        channel=edge.channel,
        monitor=scenario.monitor,
        update_client=edge.update_client,
        read_client=edge.read_client,
    )


def run_column(
    config: ColumnConfig,
    workload: Workload,
    *,
    read_workload: Workload | None = None,
) -> ColumnResult:
    """Run one column to completion and collect its metrics."""
    column = build_column(config, workload, read_workload=read_workload)
    column.sim.run(until=config.total_time)
    return collect_result(column)


def collect_result(column: Column) -> ColumnResult:
    """Extract a :class:`ColumnResult` from a finished column.

    Delegates to the scenario layer's assembler so the single-column and
    per-edge extraction paths cannot drift.
    """
    return collect_column_result(
        column.config,
        column.monitor.series,
        column.config.warmup,
        cache=column.cache,
        db_stats=column.database.stats,
        channel_stats=column.channel.stats,
        update_client=column.update_client,
        read_client=column.read_client,
    )
