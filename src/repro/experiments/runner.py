"""Build and run one experimental column (Figure 2).

The runner wires together every substrate: the simulation kernel, the
transactional database, the lossy invalidation channel, the configured cache
server, the open-loop clients and the consistency monitor — then runs for
``warmup + duration`` simulated seconds and extracts the metrics the figures
need. Measurement excludes the warm-up window.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cache.base import CacheServer
from repro.cache.ttl import TTLCache
from repro.clients.read_client import ReadClientStats, ReadOnlyClient
from repro.clients.update_client import UpdateClient, UpdateClientStats
from repro.core.strategies import Strategy
from repro.core.tcache import TCache
from repro.db.database import Database, DatabaseConfig, DatabaseStats
from repro.experiments.config import CacheKind, ColumnConfig
from repro.monitor.monitor import ConsistencyMonitor
from repro.monitor.stats import CLASSES, ClassCounts
from repro.cache.base import CacheStats
from repro.sim.channel import Channel, ChannelStats
from repro.sim.core import Simulator
from repro.sim.rng import RngStreams
from repro.workloads.base import Workload

__all__ = ["ColumnResult", "run_column", "build_column", "Column"]


@dataclass(slots=True)
class ColumnResult:
    """Everything an experiment needs from one finished run."""

    config: ColumnConfig
    #: Classification counts within the measured window only.
    counts: ClassCounts
    cache_stats: CacheStats
    db_stats: DatabaseStats
    channel_stats: ChannelStats
    update_client_stats: UpdateClientStats
    read_client_stats: ReadClientStats
    #: Per-window rates across the whole run including warm-up (Figs. 4, 5).
    series: list[dict[str, float]] = field(default_factory=list)
    #: T-Cache detection counters (zero for the baselines).
    detections_eq1: int = 0
    detections_eq2: int = 0
    retries_resolved: int = 0

    # ------------------------------------------------------------------
    # Figure metrics
    # ------------------------------------------------------------------

    @property
    def inconsistency_ratio(self) -> float:
        """Inconsistent commits / all commits, measured window."""
        return self.counts.inconsistency_ratio

    @property
    def detection_ratio(self) -> float:
        """Detected / potential inconsistencies, measured window."""
        return self.counts.detection_ratio

    @property
    def abort_ratio(self) -> float:
        return self.counts.abort_ratio

    @property
    def hit_ratio(self) -> float:
        return self.cache_stats.hit_ratio

    @property
    def db_access_rate(self) -> float:
        """Cache-originated database reads per measured second.

        Uses whole-run cache counters scaled to the full run time; the
        steady-state rate is what Fig. 7's bottom panels report.
        """
        return self.cache_stats.db_accesses / self.config.total_time

    def class_shares(self) -> dict[str, float]:
        """Fractions of read-only transactions per class (Figs. 6, 8)."""
        total = self.counts.total or 1
        return {label: getattr(self.counts, label) / total for label in CLASSES}


@dataclass(slots=True)
class Column:
    """A fully wired column, exposed for integration tests and examples."""

    sim: Simulator
    config: ColumnConfig
    database: Database
    cache: CacheServer
    channel: Channel
    monitor: ConsistencyMonitor
    update_client: UpdateClient
    read_client: ReadOnlyClient


def build_column(
    config: ColumnConfig,
    workload: Workload,
    *,
    read_workload: Workload | None = None,
) -> Column:
    """Wire every component of Figure 2 without running the clock."""
    sim = Simulator()
    streams = RngStreams(config.seed)

    database = Database(
        sim,
        DatabaseConfig(
            deplist_max=config.deplist_max,
            timing=config.timing,
            pruning_policy=config.pruning_policy,
        ),
    )
    database.load({key: f"init:{key}" for key in workload.all_keys()})

    cache = _make_cache(sim, database, config)

    channel = Channel(
        sim,
        cache.handle_invalidation,
        latency=lambda rng: float(rng.exponential(config.invalidation_latency_mean)),
        loss_probability=config.invalidation_loss,
        rng=streams.stream("invalidation-channel"),
        name="invalidations",
    )
    database.register_invalidation_channel(channel)

    monitor = ConsistencyMonitor(sim, window=config.monitor_window)
    database.add_commit_listener(monitor.record_update)
    cache.add_transaction_listener(monitor.record_read_only)

    update_client = UpdateClient(
        sim,
        database,
        workload,
        rate=config.update_rate,
        rng=streams.stream("update-client"),
    )
    read_client = ReadOnlyClient(
        sim,
        cache,
        read_workload or workload,
        rate=config.read_rate,
        rng=streams.stream("read-client"),
        txn_ids=itertools.count(1),
        read_gap=config.read_gap,
        retry_aborted=config.retry_aborted_reads,
    )
    return Column(
        sim=sim,
        config=config,
        database=database,
        cache=cache,
        channel=channel,
        monitor=monitor,
        update_client=update_client,
        read_client=read_client,
    )


def run_column(
    config: ColumnConfig,
    workload: Workload,
    *,
    read_workload: Workload | None = None,
) -> ColumnResult:
    """Run one column to completion and collect its metrics."""
    column = build_column(config, workload, read_workload=read_workload)
    column.sim.run(until=config.total_time)
    return collect_result(column)


def collect_result(column: Column) -> ColumnResult:
    """Extract a :class:`ColumnResult` from a finished column."""
    config = column.config
    measured = ClassCounts()
    for start, counts in column.monitor.series.buckets():
        if start >= config.warmup:
            for label in CLASSES:
                setattr(measured, label, getattr(measured, label) + getattr(counts, label))

    cache = column.cache
    return ColumnResult(
        config=config,
        counts=measured,
        cache_stats=cache.stats,
        db_stats=column.database.stats,
        channel_stats=column.channel.stats,
        update_client_stats=column.update_client.stats,
        read_client_stats=column.read_client.stats,
        series=column.monitor.series.rates(),
        detections_eq1=getattr(cache, "detections_eq1", 0),
        detections_eq2=getattr(cache, "detections_eq2", 0),
        retries_resolved=getattr(cache, "retries_resolved", 0),
    )


def _make_cache(sim: Simulator, database: Database, config: ColumnConfig) -> CacheServer:
    if config.cache_kind is CacheKind.TCACHE:
        return TCache(
            sim,
            database,
            strategy=config.strategy,
            capacity=config.cache_capacity,
        )
    if config.cache_kind is CacheKind.MULTIVERSION:
        from repro.core.multiversion import MultiversionTCache

        return MultiversionTCache(sim, database, capacity=config.cache_capacity)
    if config.cache_kind is CacheKind.TTL:
        return TTLCache(sim, database, ttl=config.ttl, capacity=config.cache_capacity)
    return CacheServer(sim, database, capacity=config.cache_capacity)
