"""Sensitivity studies beyond the paper's headline figures.

Three sweeps that quantify claims the paper makes in passing:

* **Cluster size vs dependency-list bound** — §III: "Intuitively, dependency
  lists should be roughly the same size as the size of the workload's
  clusters." The sweep crosses cluster sizes with list bounds; detection
  should saturate once ``k`` reaches roughly ``cluster_size - 1`` (every
  partner of an object fits in its list).
* **Invalidation loss rate** — the experiment's 20 % drop rate is a chosen
  pathology level; this sweep maps inconsistency and detection against the
  loss rate from 0 % to 100 %.
* **Read/update ratio** — the paper fixes 500/100 txn/s; this sweep varies
  update pressure at a constant read rate.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.workloads.synthetic import PerfectClusterWorkload

__all__ = [
    "cluster_size_vs_k_spec",
    "loss_spec",
    "run_cluster_size_vs_k",
    "run_loss_sweep",
    "run_update_pressure_sweep",
    "update_pressure_spec",
]


def base_config(seed: int = 41, duration: float = 15.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed, duration=duration, warmup=5.0, strategy=Strategy.ABORT
    )


def cluster_size_vs_k_spec(
    cluster_sizes: tuple[int, ...] = (3, 5, 8),
    bounds: tuple[int, ...] = (1, 2, 4, 7, 10),
    *,
    seed: int = 41,
    duration: float = 15.0,
    n_objects: int = 1920,
) -> SweepSpec:
    """Grid over (cluster size, dependency-list bound)."""
    config = base_config(seed=seed, duration=duration)
    points = []
    for cluster_size in cluster_sizes:
        workload = PerfectClusterWorkload(
            n_objects=n_objects, cluster_size=cluster_size, txn_size=cluster_size
        )
        for bound in bounds:
            points.append(
                SweepPoint(
                    label=f"cluster={cluster_size}:k={bound}",
                    config=replace(config, deplist_max=bound),
                    workload=workload,
                    params={"cluster_size": cluster_size, "deplist_max": bound},
                )
            )
    return SweepSpec(
        name="sensitivity-cluster-vs-k",
        description="detection saturation once k >= cluster_size - 1 (§III)",
        root_seed=seed,
        points=points,
    )


def run_cluster_size_vs_k(
    cluster_sizes: tuple[int, ...] = (3, 5, 8),
    bounds: tuple[int, ...] = (1, 2, 4, 7, 10),
    *,
    seed: int = 41,
    duration: float = 15.0,
    n_objects: int = 1920,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, object]]:
    """Detection ratio across (cluster size, k) — the §III intuition.

    ``n_objects`` must be divisible by every cluster size; 1920 covers
    3, 5 and 8.
    """
    sweep = run_sweep(
        cluster_size_vs_k_spec(
            cluster_sizes,
            bounds,
            seed=seed,
            duration=duration,
            n_objects=n_objects,
        ),
        dispatch=dispatch,
        jobs=jobs,
    )
    return [
        {
            "cluster_size": point.params["cluster_size"],
            "deplist_max": point.params["deplist_max"],
            "detection_pct": round(100.0 * result.detection_ratio, 1),
            "inconsistency_pct": round(100.0 * result.inconsistency_ratio, 2),
            "saturated": point.params["deplist_max"]
            >= point.params["cluster_size"] - 1,
        }
        for point, result in sweep.pairs()
    ]


def loss_spec(
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8),
    *,
    seed: int = 43,
    duration: float = 15.0,
) -> SweepSpec:
    """Paired columns per loss rate: T-Cache (k=5) and the blind baseline."""
    workload = PerfectClusterWorkload(n_objects=1000, cluster_size=5)
    config = base_config(seed=seed, duration=duration)
    points = []
    for loss in loss_rates:
        points.append(
            SweepPoint(
                label=f"loss={loss:g}:tcache",
                config=replace(config, invalidation_loss=loss, deplist_max=5),
                workload=workload,
                params={"loss": loss, "variant": "tcache"},
            )
        )
        points.append(
            SweepPoint(
                label=f"loss={loss:g}:baseline",
                config=replace(config, invalidation_loss=loss, deplist_max=0),
                workload=workload,
                params={"loss": loss, "variant": "baseline"},
            )
        )
    return SweepSpec(
        name="sensitivity-loss",
        description="inconsistency vs invalidation loss rate",
        root_seed=seed,
        points=points,
    )


def run_loss_sweep(
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8),
    *,
    seed: int = 43,
    duration: float = 15.0,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, object]]:
    """Inconsistency pressure as a function of invalidation loss."""
    sweep = run_sweep(
        loss_spec(loss_rates, seed=seed, duration=duration),
        jobs=jobs,
        dispatch=dispatch,
    )
    rows: list[dict[str, object]] = []
    for loss in loss_rates:
        detected = sweep.result_for(f"loss={loss:g}:tcache")
        blind = sweep.result_for(f"loss={loss:g}:baseline")
        rows.append(
            {
                "loss_pct": round(100.0 * loss, 1),
                "baseline_inconsistency_pct": round(
                    100.0 * blind.inconsistency_ratio, 2
                ),
                "tcache_inconsistency_pct": round(
                    100.0 * detected.inconsistency_ratio, 2
                ),
                "detection_pct": round(100.0 * detected.detection_ratio, 1),
            }
        )
    return rows


def update_pressure_spec(
    update_rates: tuple[float, ...] = (25.0, 50.0, 100.0, 200.0, 400.0),
    *,
    seed: int = 47,
    duration: float = 15.0,
) -> SweepSpec:
    """One column per update rate, read rate fixed at the paper's 500/s."""
    workload = PerfectClusterWorkload(n_objects=1000, cluster_size=5)
    config = base_config(seed=seed, duration=duration)
    return SweepSpec(
        name="sensitivity-update-pressure",
        description="inconsistency vs update rate at fixed read rate",
        root_seed=seed,
        points=[
            SweepPoint(
                label=f"rate={rate:g}",
                config=replace(config, update_rate=rate, deplist_max=5),
                workload=workload,
                params={"update_rate": rate},
            )
            for rate in update_rates
        ],
    )


def run_update_pressure_sweep(
    update_rates: tuple[float, ...] = (25.0, 50.0, 100.0, 200.0, 400.0),
    *,
    seed: int = 47,
    duration: float = 15.0,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, object]]:
    """Inconsistency pressure as a function of update rate (reads fixed)."""
    sweep = run_sweep(
        update_pressure_spec(update_rates, seed=seed, duration=duration),
        jobs=jobs,
        dispatch=dispatch,
    )
    return [
        {
            "update_rate": point.params["update_rate"],
            "abort_ratio_pct": round(100.0 * result.abort_ratio, 2),
            "inconsistency_pct": round(100.0 * result.inconsistency_ratio, 2),
            "detection_pct": round(100.0 * result.detection_ratio, 1),
            "hit_ratio": round(result.hit_ratio, 3),
        }
        for point, result in sweep.pairs()
    ]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run_cluster_size_vs_k(), title="cluster size vs k")
    print_table(run_loss_sweep(), title="invalidation loss sweep")
    print_table(run_update_pressure_sweep(), title="update pressure sweep")
