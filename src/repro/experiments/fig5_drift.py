"""Figure 5 — drifting clusters.

"Transactions are perfectly clustered, as in the previous experiment, but
every 3 minutes the cluster structure shifts by 1 ... After each shift, the
objects' dependency lists are outdated. This leads to a sudden increased
inconsistency rate that converges back to zero, until this convergence is
interrupted by the next shift."

The paper plots the per-window inconsistency ratio over 800 seconds with
shifts every 180 s. The experiment is parameterised so benchmarks can run a
time-compressed variant (same dynamics, shorter wall time); the defaults are
the paper's.
"""

from __future__ import annotations

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import ColumnResult
from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.workloads.synthetic import DriftingClusterWorkload

__all__ = ["run", "run_result", "shift_spike_profile", "spec"]


def make_config(seed: int = 5, duration: float = 800.0, window: float = 5.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed,
        duration=duration,
        warmup=0.0,
        deplist_max=5,
        strategy=Strategy.ABORT,
        monitor_window=window,
    )


def spec(
    *,
    seed: int = 5,
    duration: float = 800.0,
    shift_interval: float = 180.0,
    n_objects: int = 2000,
    window: float = 5.0,
) -> SweepSpec:
    """Figure 5 is a single drifting timeline, i.e. a one-point sweep."""
    return SweepSpec(
        name="fig5",
        description="drifting clusters: spikes that reconverge (§V-A)",
        root_seed=seed,
        points=[
            SweepPoint(
                label="timeline",
                config=make_config(seed=seed, duration=duration, window=window),
                workload=DriftingClusterWorkload(
                    n_objects=n_objects,
                    cluster_size=5,
                    shift_interval=shift_interval,
                ),
                params={"shift_interval": shift_interval, "n_objects": n_objects},
            )
        ],
    )


def run_result(
    *,
    seed: int = 5,
    duration: float = 800.0,
    shift_interval: float = 180.0,
    n_objects: int = 2000,
    window: float = 5.0,
    jobs: int | None = 1,
    dispatch=None,
) -> ColumnResult:
    sweep = run_sweep(
        spec(
            seed=seed,
            duration=duration,
            shift_interval=shift_interval,
            n_objects=n_objects,
            window=window,
        ),
        jobs=jobs,
        dispatch=dispatch,
    )
    return sweep.results[0]


def run(
    *,
    seed: int = 5,
    duration: float = 800.0,
    shift_interval: float = 180.0,
    n_objects: int = 2000,
    window: float = 5.0,
    jobs: int | None = 1,
) -> list[dict[str, float]]:
    """Rows of (window start, inconsistency ratio %) — the Fig. 5 series."""
    result = run_result(
        seed=seed,
        duration=duration,
        shift_interval=shift_interval,
        n_objects=n_objects,
        window=window,
        jobs=jobs,
    )
    return [
        {
            "time": row["time"],
            "inconsistency_ratio_pct": 100.0 * row["inconsistency_ratio"],
            "aborted_tps": row["aborted_necessary"] + row["aborted_unnecessary"],
        }
        for row in result.series
    ]


def shift_spike_profile(
    rows: list[dict[str, float]], shift_interval: float, *, settle: float = 30.0
) -> dict[str, float]:
    """Mean inconsistency ratio right after shifts vs late in each epoch.

    The Fig. 5 shape means the post-shift mean must exceed the settled mean:
    a spike at every boundary that converges back toward zero.
    """
    post_shift: list[float] = []
    settled: list[float] = []
    for row in rows:
        phase = row["time"] % shift_interval
        if row["time"] < shift_interval:
            # The first epoch has fresh dependency lists throughout.
            continue
        if phase < settle:
            post_shift.append(row["inconsistency_ratio_pct"])
        elif phase >= shift_interval - settle:
            settled.append(row["inconsistency_ratio_pct"])
    return {
        "post_shift_mean_pct": sum(post_shift) / len(post_shift) if post_shift else 0.0,
        "settled_mean_pct": sum(settled) / len(settled) if settled else 0.0,
    }


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    rows = run()
    print_table(rows, title="Figure 5: drifting clusters")
    print(shift_spike_profile(rows, 180.0))
