"""Shared construction of the realistic workloads (§V-B1).

Builds the Amazon-like and Orkut-like parent topologies, down-samples each
to 1000 nodes with the paper's random-walk sampler (15 % restart), and wraps
the samples in 5-node random-walk transaction generators. Graphs are cached
per process because several figures share them.
"""

from __future__ import annotations

from functools import lru_cache

import networkx as nx
import numpy as np

from repro.workloads.graphs import amazon_like_graph, orkut_like_graph, topology_stats
from repro.workloads.sampling import random_walk_sample
from repro.workloads.walker import RandomWalkWorkload

__all__ = [
    "AMAZON",
    "ORKUT",
    "WORKLOAD_NAMES",
    "run",
    "sampled_topology",
    "realistic_workload",
    "topology_rows",
]

AMAZON = "amazon"
ORKUT = "orkut"
WORKLOAD_NAMES = (AMAZON, ORKUT)

#: Paper parameters: parents down-sampled to 1000 nodes.
SAMPLE_NODES = 1000
PARENT_NODES = 4000


@lru_cache(maxsize=8)
def sampled_topology(
    name: str, *, sample_nodes: int = SAMPLE_NODES, seed: int = 1
) -> nx.Graph:
    """The down-sampled topology for a workload name ('amazon' / 'orkut')."""
    if name == AMAZON:
        parent = amazon_like_graph(PARENT_NODES, seed=seed)
    elif name == ORKUT:
        parent = orkut_like_graph(PARENT_NODES, seed=seed + 1)
    else:
        raise ValueError(f"unknown realistic workload {name!r}")
    rng = np.random.default_rng(seed + 77)
    return random_walk_sample(parent, sample_nodes, rng)


def realistic_workload(
    name: str, *, sample_nodes: int = SAMPLE_NODES, seed: int = 1
) -> RandomWalkWorkload:
    return RandomWalkWorkload(
        sampled_topology(name, sample_nodes=sample_nodes, seed=seed), txn_size=5
    )


def topology_rows(
    *, sample_nodes: int = SAMPLE_NODES, seed: int = 1
) -> list[dict[str, object]]:
    """Fig. 7(a)/(b) stand-in: statistics of both sampled topologies."""
    rows = []
    for name in WORKLOAD_NAMES:
        graph = sampled_topology(name, sample_nodes=sample_nodes, seed=seed)
        row: dict[str, object] = {"workload": name}
        row.update(topology_stats(graph).as_row())
        rows.append(row)
    return rows


def run(
    *, sample_nodes: int = SAMPLE_NODES, seed: int = 1, jobs: int | None = 1
) -> list[dict[str, object]]:
    """Uniform ``run()`` entry point matching the figure modules.

    Fig. 7(a)/(b) is pure graph analysis — there are no simulation columns
    to fan out, so ``jobs`` is accepted for CLI symmetry and ignored.
    """
    del jobs
    return topology_rows(sample_nodes=sample_nodes, seed=seed)
