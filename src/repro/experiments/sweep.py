"""Parallel sweep engine for the figure experiments.

Every figure of the paper's evaluation is a grid of independent, seeded
single-column simulations — embarrassingly parallel work that the figure
modules used to run one at a time in hand-rolled loops.  This module gives
them a shared, declarative substrate:

* :class:`SweepPoint` — one independent unit of a grid: either a single
  column (a :class:`ColumnConfig` plus the workload(s) that drive it) or a
  whole multi-edge topology (a :class:`~repro.scenario.spec.ScenarioSpec`),
  with a stable label and free-form ``params`` that downstream row-builders
  and JSON artifacts attach to the result.
* :class:`SweepSpec` — a named, ordered grid of points with a root seed.
  Specs are plain data; building one runs nothing.
* :func:`run_sweep` — executes a spec either serially (``jobs=1``) or on a
  ``multiprocessing`` pool (``jobs=N``, default ``os.cpu_count()``) and
  returns a :class:`SweepResult` in *spec order* regardless of completion
  order.  Each column is deterministic given its config and workload, so
  serial and parallel execution produce identical results — the test suite
  asserts byte-identical series for ``jobs=1`` vs ``jobs=4``.

Seeding: :func:`derive_seed` is the canonical per-column derivation from a
spec's root seed.  Sweeps that compare columns on the *same* randomness
(e.g. the strategy bars of Figs. 6 and 8) intentionally share one seed
across their points instead; the spec builder decides.

Only the ``(config, workload, read_workload, scenario)`` tuple travels to
worker processes, so row-building callables in the figure modules may freely
be closures.  Workloads are stateless with respect to the per-column RNG
streams (the clients pass their own generators in), which is what makes the
fan-out safe.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError
from repro.experiments.config import ColumnConfig
from repro.experiments.report import json_safe
from repro.experiments.runner import ColumnResult, run_column
from repro.scenario.results import ScenarioResult
from repro.scenario.runner import run_scenario
from repro.scenario.spec import ScenarioSpec
from repro.workloads.base import Workload

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "config_as_dict",
    "derive_seed",
    "resolve_jobs",
    "run_sweep",
    "spec_artifact",
]


def derive_seed(root_seed: int, index: int) -> int:
    """Deterministic seed for the ``index``-th column of a sweep."""
    if index < 0:
        raise ConfigurationError(f"column index must be >= 0, got {index}")
    return root_seed + index


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None`` means every available CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(slots=True)
class SweepPoint:
    """One independent unit of a grid: a single column or a whole scenario.

    Column points pass ``config`` + ``workload`` (+ optional
    ``read_workload``) and execute via ``run_column``; scenario points pass
    ``scenario`` instead and execute via ``run_scenario``, yielding a
    :class:`~repro.scenario.results.ScenarioResult` in the sweep's results.
    """

    label: str
    config: ColumnConfig | None = None
    workload: Workload | None = None
    read_workload: Workload | None = None
    #: A whole multi-edge topology; mutually exclusive with ``config``.
    scenario: ScenarioSpec | None = None
    #: Sweep coordinates (e.g. ``{"alpha": 0.5}``) echoed into rows/artifacts.
    params: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scenario is not None:
            if self.config is not None or self.workload is not None:
                raise ConfigurationError(
                    f"point {self.label!r}: pass either scenario= or "
                    "config=+workload=, not both"
                )
            if self.read_workload is not None:
                raise ConfigurationError(
                    f"point {self.label!r}: read_workload belongs to the "
                    "edge specs of a scenario point"
                )
        elif self.config is None or self.workload is None:
            raise ConfigurationError(
                f"point {self.label!r}: a column point needs config= and workload="
            )


@dataclass(slots=True)
class SweepSpec:
    """A named grid of sweep points. Building a spec runs nothing."""

    name: str
    points: list[SweepPoint]
    root_seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        labels = [point.label for point in self.points]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise ConfigurationError(
                f"sweep {self.name!r} has duplicate point labels: {duplicates}"
            )

    def __len__(self) -> int:
        return len(self.points)


@dataclass(slots=True)
class SweepResult:
    """Results of one executed spec, in spec order."""

    spec: SweepSpec
    results: list[ColumnResult | ScenarioResult]
    jobs: int
    wall_clock_seconds: float

    def pairs(self) -> Iterator[tuple[SweepPoint, ColumnResult | ScenarioResult]]:
        return zip(self.spec.points, self.results)

    def result_for(self, label: str) -> ColumnResult | ScenarioResult:
        for point, result in self.pairs():
            if point.label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r} in {self.spec.name!r}")

    def to_artifact(self) -> dict[str, object]:
        """JSON-safe record of the run: config + series + wall-clock metadata.

        Column points carry their series and counts; scenario points carry
        the full per-edge + fleet record from
        :meth:`~repro.scenario.results.ScenarioResult.to_artifact`.
        """
        payload = spec_artifact(self.spec)
        payload["jobs"] = self.jobs
        payload["wall_clock_seconds"] = self.wall_clock_seconds
        for column, result in zip(payload["columns"], self.results):
            if isinstance(result, ScenarioResult):
                column["result"] = result.to_artifact()
            else:
                column["series"] = result.series
                column["counts"] = asdict(result.counts)
        return payload


def spec_artifact(spec: SweepSpec) -> dict[str, object]:
    """JSON-safe description of a spec's grid — enough to re-run any point."""
    columns = []
    for point in spec.points:
        column: dict[str, object] = {
            "label": point.label,
            "params": json_safe(dict(point.params)),
        }
        if point.scenario is not None:
            column["scenario"] = point.scenario.as_dict()
        else:
            column["config"] = config_as_dict(point.config)
        columns.append(column)
    return {
        "spec": spec.name,
        "description": spec.description,
        "root_seed": spec.root_seed,
        "columns": columns,
    }


def config_as_dict(config: ColumnConfig) -> dict[str, object]:
    """A :class:`ColumnConfig` as a JSON-serialisable dict (enums by name)."""
    return json_safe(asdict(config))


def _execute_point(
    payload: tuple[
        ColumnConfig | None, Workload | None, Workload | None, ScenarioSpec | None
    ]
) -> ColumnResult | ScenarioResult:
    config, workload, read_workload, scenario = payload
    if scenario is not None:
        return run_scenario(scenario)
    return run_column(config, workload, read_workload=read_workload)


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork inherits sys.path and the parent's built workloads/topology caches;
    # spawn re-imports, which also works because PYTHONPATH propagates, but
    # pays a per-worker import and (for realistic workloads) rebuild cost.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_sweep(spec: SweepSpec, *, jobs: int | None = None) -> SweepResult:
    """Execute every point of ``spec`` and collect results in spec order.

    ``jobs=1`` runs in-process (no pool, fully synchronous — the baseline
    for determinism tests); ``jobs>1`` fans the columns across a process
    pool, never spawning more workers than there are points.
    """
    jobs = resolve_jobs(jobs)
    payloads = [
        (point.config, point.workload, point.read_workload, point.scenario)
        for point in spec.points
    ]
    workers = min(jobs, len(payloads))
    start = time.perf_counter()
    if workers <= 1:
        results = [_execute_point(payload) for payload in payloads]
    else:
        with _pool_context().Pool(processes=workers) as pool:
            results = pool.map(_execute_point, payloads)
    elapsed = time.perf_counter() - start
    return SweepResult(
        spec=spec, results=results, jobs=jobs, wall_clock_seconds=elapsed
    )
