"""Parallel sweep engine for the figure experiments.

Every figure of the paper's evaluation is a grid of independent, seeded
single-column simulations — embarrassingly parallel work that the figure
modules used to run one at a time in hand-rolled loops.  This module gives
them a shared, declarative substrate:

* :class:`SweepPoint` — one independent unit of a grid: either a single
  column (a :class:`ColumnConfig` plus the workload(s) that drive it) or a
  whole multi-edge topology (a :class:`~repro.scenario.spec.ScenarioSpec`),
  with a stable label and free-form ``params`` that downstream row-builders
  and JSON artifacts attach to the result.
* :class:`SweepSpec` — a named, ordered grid of points with a root seed.
  Specs are plain data; building one runs nothing.
* :func:`run_sweep` — executes a spec serially (``jobs=1``), on a
  ``multiprocessing`` pool (``jobs=N``, default ``os.cpu_count()``), or —
  given ``dispatch=`` a :class:`~repro.dispatch.coordinator.DispatchSpec` —
  across remote workers via the :mod:`repro.dispatch` coordinator.  All
  three return a :class:`SweepResult` in *spec order* regardless of
  completion order: the pool streams ``imap_unordered`` chunks and the
  coordinator streams worker result frames, but both reassemble through the
  same index-keyed :func:`ordered_results`.  Each column is deterministic
  given its config and workload, so every executor produces identical
  results — the test suite asserts byte-identical series for ``jobs=1`` vs
  ``jobs=4`` and for local vs dispatched runs.

Seeding: :func:`derive_seed` is the canonical per-column derivation from a
spec's root seed.  Sweeps that compare columns on the *same* randomness
(e.g. the strategy bars of Figs. 6 and 8) intentionally share one seed
across their points instead; the spec builder decides.

Only the ``(config, workload, read_workload, scenario, trace)`` tuple
travels to worker processes, so row-building callables in the figure modules
may freely be closures.  Workloads are stateless with respect to the per-column RNG
streams (the clients pass their own generators in), which is what makes the
fan-out safe.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Mapping

from repro import telemetry

from repro.cache.kinds import CacheKind
from repro.core.strategies import Strategy
from repro.db.database import TimingConfig
from repro.errors import ConfigurationError, DispatchError
from repro.experiments.config import ColumnConfig
from repro.experiments.report import json_safe
from repro.experiments.runner import ColumnResult, run_column
from repro.scenario.results import ScenarioResult
from repro.scenario.runner import run_scenario
from repro.scenario.spec import ScenarioSpec
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.dispatch.client import FleetSpec
    from repro.dispatch.coordinator import DispatchSpec

__all__ = [
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "config_as_dict",
    "config_from_dict",
    "derive_seed",
    "ordered_results",
    "resolve_jobs",
    "run_sweep",
    "spec_artifact",
]


def derive_seed(root_seed: int, index: int) -> int:
    """Deterministic seed for the ``index``-th column of a sweep."""
    if index < 0:
        raise ConfigurationError(f"column index must be >= 0, got {index}")
    return root_seed + index


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` value: ``None`` means every available CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return jobs


@dataclass(slots=True)
class SweepPoint:
    """One independent unit of a grid: a single column or a whole scenario.

    Column points pass ``config`` + ``workload`` (+ optional
    ``read_workload``) and execute via ``run_column``; scenario points pass
    ``scenario`` instead and execute via ``run_scenario``, yielding a
    :class:`~repro.scenario.results.ScenarioResult` in the sweep's results.
    """

    label: str
    config: ColumnConfig | None = None
    workload: Workload | None = None
    read_workload: Workload | None = None
    #: A whole multi-edge topology; mutually exclusive with ``config``.
    scenario: ScenarioSpec | None = None
    #: Sweep coordinates (e.g. ``{"alpha": 0.5}``) echoed into rows/artifacts.
    params: dict[str, object] = field(default_factory=dict)
    #: Capture telemetry while executing this point. Part of the point's
    #: wire payload, so dispatch workers and fleet daemons trace without
    #: sharing this process's telemetry state; emitted into ``as_dict`` only
    #: when set, keeping untraced payloads (and fleet fingerprints)
    #: byte-identical to previous releases.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.scenario is not None:
            if self.config is not None or self.workload is not None:
                raise ConfigurationError(
                    f"point {self.label!r}: pass either scenario= or "
                    "config=+workload=, not both"
                )
            if self.read_workload is not None:
                raise ConfigurationError(
                    f"point {self.label!r}: read_workload belongs to the "
                    "edge specs of a scenario point"
                )
        elif self.config is None or self.workload is None:
            raise ConfigurationError(
                f"point {self.label!r}: a column point needs config= and workload="
            )

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description of this point, replayable by :meth:`from_dict`.

        Scenario points embed the full :meth:`ScenarioSpec.as_dict` payload;
        column points carry their config plus — for the portable synthetic
        workload families — full ``workload_spec`` / ``read_workload_spec``
        payloads via :mod:`repro.workloads.codec`.  Non-portable workloads
        (graph- or trace-backed) record ``workload_spec: null``: the artifact
        still *describes* the point, but :meth:`from_dict` refuses to rebuild
        it rather than silently re-running a different distribution.
        """
        from repro.workloads.codec import workload_to_dict

        def _portable(workload: Workload | None) -> dict[str, object] | None:
            if workload is None:
                return None
            try:
                return workload_to_dict(workload)
            except ConfigurationError:
                return None

        column: dict[str, object] = {
            "label": self.label,
            "params": json_safe(dict(self.params)),
        }
        if self.trace:
            column["trace"] = True
        if self.scenario is not None:
            column["scenario"] = self.scenario.as_dict()
            return column
        column["config"] = config_as_dict(self.config)
        column["workload"] = type(self.workload).__name__
        column["workload_spec"] = _portable(self.workload)
        column["read_workload"] = (
            None if self.read_workload is None else type(self.read_workload).__name__
        )
        column["read_workload_spec"] = _portable(self.read_workload)
        return column

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepPoint":
        """Rebuild a point from :meth:`as_dict` output.

        Fails loudly for column points whose workload was not portable
        (``workload_spec: null``), mirroring the ``scenario --spec`` replay
        behaviour — an artifact must never replay with a *different*
        workload than the one it recorded.
        """
        from repro.workloads.codec import workload_from_dict

        label = payload.get("label")
        if not label:
            raise ConfigurationError(f"sweep point payload has no label: {payload!r}")
        params = dict(payload.get("params") or {})
        trace = bool(payload.get("trace", False))
        scenario = payload.get("scenario")
        if scenario is not None:
            return cls(
                label=label,
                scenario=ScenarioSpec.from_dict(scenario),
                params=params,
                trace=trace,
            )
        config = payload.get("config")
        if config is None:
            raise ConfigurationError(
                f"point {label!r}: payload carries neither a scenario nor a config"
            )
        workload_spec = payload.get("workload_spec")
        if workload_spec is None:
            raise ConfigurationError(
                f"point {label!r}: workload {payload.get('workload')!r} has no "
                "portable workload_spec; only synthetic-family workloads "
                "replay from JSON"
            )
        read_spec = payload.get("read_workload_spec")
        if read_spec is None and payload.get("read_workload") is not None:
            raise ConfigurationError(
                f"point {label!r}: read workload {payload['read_workload']!r} "
                "has no portable read_workload_spec; only synthetic-family "
                "workloads replay from JSON"
            )
        return cls(
            label=label,
            config=config_from_dict(config),
            workload=workload_from_dict(workload_spec),
            read_workload=(
                None if read_spec is None else workload_from_dict(read_spec)
            ),
            params=params,
            trace=trace,
        )


@dataclass(slots=True)
class SweepSpec:
    """A named grid of sweep points. Building a spec runs nothing."""

    name: str
    points: list[SweepPoint]
    root_seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        labels = [point.label for point in self.points]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise ConfigurationError(
                f"sweep {self.name!r} has duplicate point labels: {duplicates}"
            )

    def __len__(self) -> int:
        return len(self.points)

    def as_dict(self) -> dict[str, object]:
        """JSON-safe description of the grid (alias of :func:`spec_artifact`)."""
        return spec_artifact(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepSpec":
        """Rebuild a spec from :meth:`as_dict` / :func:`spec_artifact` output.

        The round-trip half that makes ``--json`` artifacts (and the
        dispatch work queue) genuinely re-runnable.  Raises
        :class:`ConfigurationError` if any column recorded
        ``workload_spec: null`` — a non-portable point cannot be rebuilt,
        and replaying the rest would silently change the grid.
        """
        columns = payload.get("columns")
        if columns is None:
            raise ConfigurationError(
                f"sweep payload has no 'columns' list: {sorted(payload)!r}"
            )
        return cls(
            name=payload.get("spec") or payload.get("name") or "sweep",
            description=payload.get("description", ""),
            root_seed=payload.get("root_seed", 0),
            points=[SweepPoint.from_dict(column) for column in columns],
        )


@dataclass(slots=True)
class SweepResult:
    """Results of one executed spec, in spec order."""

    spec: SweepSpec
    results: list[ColumnResult | ScenarioResult]
    jobs: int
    wall_clock_seconds: float

    def pairs(self) -> Iterator[tuple[SweepPoint, ColumnResult | ScenarioResult]]:
        return zip(self.spec.points, self.results)

    def result_for(self, label: str) -> ColumnResult | ScenarioResult:
        for point, result in self.pairs():
            if point.label == label:
                return result
        raise KeyError(f"no sweep point labelled {label!r} in {self.spec.name!r}")

    def to_artifact(self) -> dict[str, object]:
        """JSON-safe record of the run: config + series + wall-clock metadata.

        Column points carry their series and counts; scenario points carry
        the full per-edge + fleet record from
        :meth:`~repro.scenario.results.ScenarioResult.to_artifact`.
        """
        payload = spec_artifact(self.spec)
        payload["jobs"] = self.jobs
        payload["wall_clock_seconds"] = self.wall_clock_seconds
        for column, result in zip(payload["columns"], self.results):
            if isinstance(result, ScenarioResult):
                column["result"] = result.to_artifact()
            else:
                column["series"] = result.series
                column["counts"] = asdict(result.counts)
                if result.telemetry is not None:
                    column["telemetry"] = result.telemetry
        return payload


def spec_artifact(spec: SweepSpec) -> dict[str, object]:
    """JSON-safe description of a spec's grid — enough to re-run any
    *portable* point via :meth:`SweepSpec.from_dict`.

    Column points record their workloads through
    :mod:`repro.workloads.codec`; a workload outside the portable synthetic
    families is recorded as ``workload_spec: null``, and rebuilding such a
    column fails loudly instead of re-running a different distribution.
    """
    return {
        "spec": spec.name,
        "description": spec.description,
        "root_seed": spec.root_seed,
        "columns": [point.as_dict() for point in spec.points],
    }


def config_as_dict(config: ColumnConfig) -> dict[str, object]:
    """A :class:`ColumnConfig` as a JSON-serialisable dict (enums by name)."""
    return json_safe(asdict(config))


def config_from_dict(payload: Mapping[str, object]) -> ColumnConfig:
    """Rebuild a :class:`ColumnConfig` from :func:`config_as_dict` output."""
    data = dict(payload)
    timing = data.get("timing")
    data["timing"] = TimingConfig() if timing is None else TimingConfig(**timing)
    try:
        data["strategy"] = Strategy[data.get("strategy", "ABORT")]
        data["cache_kind"] = CacheKind[data.get("cache_kind", "TCACHE")]
    except KeyError as exc:
        raise ConfigurationError(f"unknown enum name in config payload: {exc}")
    try:
        return ColumnConfig(**data)
    except TypeError as exc:
        # e.g. a hand-edited artifact with a misspelled field name.
        raise ConfigurationError(
            f"bad column config payload {sorted(data)}: {exc}"
        ) from exc


def _execute_point(
    payload: tuple[
        ColumnConfig | None,
        Workload | None,
        Workload | None,
        ScenarioSpec | None,
        bool,
    ]
) -> ColumnResult | ScenarioResult:
    config, workload, read_workload, scenario, trace = payload
    if not trace:
        if scenario is not None:
            return run_scenario(scenario)
        return run_column(config, workload, read_workload=read_workload)
    # The point label is re-attached at export time from the spec, so the
    # tracer itself doesn't need one (the execution payload stays lean).
    with telemetry.capture("") as tracer:
        if scenario is not None:
            result = run_scenario(scenario)
        else:
            result = run_column(config, workload, read_workload=read_workload)
    result.telemetry = tracer.snapshot()
    result.trace = tracer.record_dicts()
    return result


def _execute_indexed(
    item: tuple[int, tuple]
) -> tuple[int, ColumnResult | ScenarioResult]:
    index, payload = item
    return index, _execute_point(payload)


def ordered_results(
    total: int, results_by_index: Mapping[int, object]
) -> list:
    """Restore spec order from index-keyed results.

    The shared reassembly step of every out-of-order executor: the
    ``imap_unordered`` pool below and the dispatch coordinator both collect
    ``{point index: result}`` as completions stream in, then rebuild the
    spec-ordered list through this function.  Raises
    :class:`~repro.errors.DispatchError` if any index is missing — a sweep
    must never return partial results as if they were complete.
    """
    missing = [index for index in range(total) if index not in results_by_index]
    if missing:
        raise DispatchError(
            f"sweep incomplete: no results for point indices {missing}"
        )
    return [results_by_index[index] for index in range(total)]


def _pool_context() -> multiprocessing.context.BaseContext:
    # fork inherits sys.path and the parent's built workloads/topology caches;
    # spawn re-imports, which also works because PYTHONPATH propagates, but
    # pays a per-worker import and (for realistic workloads) rebuild cost.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _pool_chunksize(n_points: int, workers: int) -> int:
    """Points handed to a pool worker per dispatch (>= 4 waves per worker).

    Small chunks keep one slow point from pinning a whole wave of fast ones
    behind it while still amortising the per-task IPC cost of big grids.
    """
    return max(1, n_points // (workers * 4))


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int | None = None,
    dispatch: "DispatchSpec | FleetSpec | None" = None,
) -> SweepResult:
    """Execute every point of ``spec`` and collect results in spec order.

    ``jobs=1`` runs in-process (no pool, fully synchronous — the baseline
    for determinism tests); ``jobs>1`` fans the columns across a process
    pool, never spawning more workers than there are points, streaming
    completions via chunked ``imap_unordered`` so one slow point never
    blocks a whole map wave.  Passing ``dispatch=`` a
    :class:`~repro.dispatch.coordinator.DispatchSpec` instead serves the
    spec as a work queue to remote workers (see :mod:`repro.dispatch`),
    while a :class:`~repro.dispatch.client.FleetSpec` submits it to a
    long-lived fleet daemon and waits; every executor returns identical
    results for the same spec.
    """
    if telemetry.enabled() and not all(point.trace for point in spec.points):
        # Stamp the trace flag onto the points *before* any executor sees
        # the spec: the flag is part of the wire payload (dispatch workers
        # trace in their own processes) and of the fleet fingerprint (a
        # traced submission must not attach to an untraced journal's
        # results, which would come back without telemetry).
        spec = SweepSpec(
            name=spec.name,
            points=[replace(point, trace=True) for point in spec.points],
            root_seed=spec.root_seed,
            description=spec.description,
        )
    traced = any(point.trace for point in spec.points)
    if dispatch is not None:
        from repro.dispatch.client import FleetSpec, run_fleet_sweep
        from repro.dispatch.coordinator import run_dispatched

        if isinstance(dispatch, FleetSpec):
            result = run_fleet_sweep(spec, dispatch)
        else:
            result = run_dispatched(spec, dispatch)
        if traced:
            telemetry.record_sweep(result)
        return result
    jobs = resolve_jobs(jobs)
    payloads = [
        (point.config, point.workload, point.read_workload, point.scenario, point.trace)
        for point in spec.points
    ]
    workers = min(jobs, len(payloads))
    start = time.perf_counter()
    if workers <= 1:
        results = [_execute_point(payload) for payload in payloads]
    else:
        with _pool_context().Pool(processes=workers) as pool:
            results_by_index: dict[int, ColumnResult | ScenarioResult] = {}
            for index, result in pool.imap_unordered(
                _execute_indexed,
                list(enumerate(payloads)),
                chunksize=_pool_chunksize(len(payloads), workers),
            ):
                results_by_index[index] = result
        results = ordered_results(len(payloads), results_by_index)
    elapsed = time.perf_counter() - start
    result = SweepResult(
        spec=spec, results=results, jobs=jobs, wall_clock_seconds=elapsed
    )
    if traced:
        telemetry.record_sweep(result)
    return result
