"""Theorem 1 — T-Cache with unbounded resources is cache-serializable.

"T-Cache with unbounded cache size and unbounded dependency lists implements
cache-serializability." Operationally: in any execution with
``deplist_max = UNBOUNDED`` and no cache capacity bound, *every committed
read-only transaction is consistent* — the monitor's serialization-graph
tester must classify zero commits as inconsistent, on any workload.

This module runs that configuration end-to-end on several workloads; the
property-based tests exercise the same claim on adversarial histories.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.deplist import UNBOUNDED
from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.realistic import realistic_workload
from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed, run_sweep
from repro.workloads.synthetic import ParetoClusterWorkload, UniformWorkload

__all__ = ["run", "spec"]


def make_config(seed: int = 9, duration: float = 20.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed,
        duration=duration,
        warmup=2.0,
        deplist_max=UNBOUNDED,
        strategy=Strategy.ABORT,
    )


def workloads(seed: int = 9) -> dict[str, object]:
    return {
        "uniform": UniformWorkload(n_objects=500),
        "pareto(alpha=1)": ParetoClusterWorkload(
            n_objects=1000, cluster_size=5, alpha=1.0
        ),
        "amazon": realistic_workload("amazon", seed=seed),
    }


def spec(*, seed: int = 9, duration: float = 20.0) -> SweepSpec:
    """One unbounded-resource column per workload, independently seeded."""
    config = make_config(seed=seed, duration=duration)
    return SweepSpec(
        name="theorem1",
        description="unbounded T-Cache is cache-serializable (Theorem 1)",
        root_seed=seed,
        points=[
            SweepPoint(
                label=name,
                config=replace(config, seed=derive_seed(seed, index)),
                workload=workload,
                params={"workload": name},
            )
            for index, (name, workload) in enumerate(workloads(seed).items())
        ],
    )


def run(
    *, seed: int = 9, duration: float = 20.0, jobs: int | None = 1, dispatch=None
) -> list[dict[str, object]]:
    """One row per workload; ``inconsistent`` must be zero everywhere."""
    sweep = run_sweep(spec(seed=seed, duration=duration), jobs=jobs, dispatch=dispatch)
    return [
        {
            "workload": point.params["workload"],
            "committed": result.counts.committed,
            "inconsistent_commits": result.counts.inconsistent,
            "aborted": result.counts.aborted,
            "detection_ratio_pct": 100.0 * result.detection_ratio,
        }
        for point, result in sweep.pairs()
    ]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run(), title="Theorem 1: unbounded T-Cache, zero inconsistent commits")
