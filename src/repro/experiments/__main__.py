"""Command-line entry point for the paper's experiments.

Run any figure's sweep, fan its columns across worker processes — or
across *hosts* — print the series it plots, and optionally write a
machine-readable artifact::

    python -m repro.experiments fig3
    python -m repro.experiments fig7c --duration 20 --jobs 4
    python -m repro.experiments fig8 --jobs 4 --json fig8.json
    python -m repro.experiments scenario --edges 4 --backends 2 --json fleets.json
    python -m repro.experiments scenario --spec saved-scenario.json
    python -m repro.experiments all --duration 15

    # distributed: one coordinator + any number of workers, any hosts
    python -m repro.experiments fig3 --dispatch 0.0.0.0:7643 --json fig3.json
    python -m repro.experiments worker --connect coordinator-host:7643

    # fleet: a long-lived daemon serving many named sweeps with priorities
    python -m repro.experiments fleet serve --port 7650 --journal-dir journals/
    python -m repro.experiments worker --connect daemon-host:7650 --max-idle 60
    python -m repro.experiments fig3 --fleet daemon-host:7650 --json fig3.json
    python -m repro.experiments fleet status --connect daemon-host:7650

    # performance: the tracked bench suite, and profiling any experiment
    python -m repro.experiments bench --json BENCH.json --baseline BENCH_5.json
    python -m repro.experiments fig3 --duration 5 --profile fig3.prof

    # observability: deterministic traces and live fleet metrics
    python -m repro.experiments fig3 --trace fig3.jsonl --chrome-trace fig3.trace.json
    python -m repro.experiments fleet status --connect daemon-host:7650 --metrics

Experiment ids: fig3, fig4, fig5, fig6, fig7ab, fig7c, fig7d, fig8,
theorem1, sensitivity, scenario, protocol-race — plus three
non-experiment commands:
``worker``, a dispatch worker process; ``bench``, the deterministic
performance suite (see :mod:`repro.bench`; ``--bench-scale`` shrinks it,
``--baseline`` prints report-only drift against a recorded ``BENCH_*.json``);
and ``fleet``, the long-lived queue daemon and its submitter verbs
(``serve``/``submit``/``status``/``cancel`` — see
:mod:`repro.dispatch.daemon`; the shared secret always comes from the
``REPRO_FLEET_SECRET`` environment variable, never argv).
``--profile PATH`` wraps any command in :mod:`cProfile` and dumps the stats
file for ``pstats``/snakeviz.  ``scenario`` runs the
multi-edge library fleets (heterogeneous loss ramp sized by ``--edges``,
geo-skewed regions, flash crowd, plus — with ``--backends >= 2`` — the
routed backend tiers, the region-failure drill and the capacity-planning
grid) and reports per-edge rows, per-backend rows and fleet aggregates;
``scenario --spec file.json`` instead replays one scenario recorded with
``ScenarioSpec.as_dict`` (e.g. from a ``--json`` artifact).
``protocol-race`` races every registered consistency protocol
(:mod:`repro.protocols` — the paper's detector, causal, verified-read,
locking) across the library fleets and ranks them on inconsistency rate
vs read latency vs backend load.  ``--jobs``
defaults to every available CPU; ``--jobs 1`` runs serially and produces
identical series for the same root seed.  ``--dispatch HOST:PORT`` serves
every sweep of the experiment to remote workers instead of a local pool —
same bytes out, see :mod:`repro.dispatch`.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time

from repro.dispatch import (
    DispatchSpec,
    FaultPlan,
    FleetSpec,
    parse_hostport,
    run_worker,
)
from repro.experiments import (
    fig3_alpha,
    fig4_convergence,
    fig5_drift,
    fig6_strategies,
    fig7_realistic,
    fig8_strategies,
    protocol_race,
    realistic,
    scenarios,
    sensitivity,
    theorem1,
)
from repro.experiments.report import (
    ARTIFACT_SCHEMA,
    experiment_payload,
    print_table,
    write_json,
)
from repro.errors import ConfigurationError, CoordinatorUnreachable, DispatchError
from repro.experiments.sweep import resolve_jobs, spec_artifact


def _hostport_type(text: str) -> tuple[str, int]:
    """argparse adapter around :func:`parse_hostport`'s validation."""
    try:
        return parse_hostport(text)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc))


_LOG_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")


def _log_level_arg(text: str) -> str:
    level = text.upper()
    if level not in _LOG_LEVELS:
        raise argparse.ArgumentTypeError(
            f"expected one of {', '.join(_LOG_LEVELS)}, got {text!r}"
        )
    return level


def _configure_logging(level: str) -> None:
    """Root handler for the ``repro.dispatch.*`` diagnostic loggers.

    The daemon's lifecycle notes, the journal's truncated-tail warnings and
    the worker's per-sweep progress all flow through stdlib ``logging`` so
    operators can silence or redirect them; experiment tables and artifacts
    stay on plain stdout regardless of level.
    """
    logging.basicConfig(
        level=getattr(logging, level), format="[%(name)s] %(message)s"
    )


def _jobs_arg(text: str) -> int:
    """argparse adapter around :func:`resolve_jobs`'s validation."""
    try:
        return resolve_jobs(int(text))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc))


#: A printed/serialised unit: title + full rows (+ display stride for the
#: long time series, which are sampled on the terminal but kept whole in
#: ``--json`` artifacts).
Section = dict


def _section(title: str, rows: list[dict], stride: int = 1) -> Section:
    return {"title": title, "rows": rows, "stride": stride}


def _run_fig3(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 3: detected inconsistencies vs Pareto alpha",
            fig3_alpha.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [fig3_alpha.spec(duration=duration)]


def _run_fig4(duration: float, jobs: int, dispatch=None):
    scale = duration / 30.0
    rows = fig4_convergence.run(
        duration=160.0 * scale,
        switch_time=58.0 * scale,
        jobs=jobs,
        dispatch=dispatch,
    )
    summaries = fig4_convergence.phase_summaries(rows, switch_time=58.0 * scale)
    sections = [
        _section(
            "Figure 4: convergence (sampled windows)",
            rows,
            stride=max(1, len(rows) // 24),
        ),
        _section(
            "phase means [txn/s]",
            [
                {"phase": "before", **summaries["before"]},
                {"phase": "after", **summaries["after"]},
            ],
        ),
    ]
    return sections, [
        fig4_convergence.spec(duration=160.0 * scale, switch_time=58.0 * scale)
    ]


def _run_fig5(duration: float, jobs: int, dispatch=None):
    scale = duration / 30.0
    rows = fig5_drift.run(
        duration=800.0 * scale,
        shift_interval=180.0 * scale,
        window=5.0 * scale,
        jobs=jobs,
        dispatch=dispatch,
    )
    sections = [
        _section(
            "Figure 5: drifting clusters (sampled)",
            rows,
            stride=max(1, len(rows) // 32),
        ),
        _section(
            "spike profile",
            [fig5_drift.shift_spike_profile(rows, 180.0 * scale)],
        ),
    ]
    return sections, [
        fig5_drift.spec(
            duration=800.0 * scale,
            shift_interval=180.0 * scale,
            window=5.0 * scale,
        )
    ]


def _run_fig6(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 6: strategies (synthetic, alpha=1)",
            fig6_strategies.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [fig6_strategies.spec(duration=duration)]


def _run_fig7ab(duration: float, jobs: int, dispatch=None):
    # Pure graph analysis: no simulation grid, nothing to dispatch.
    sections = [
        _section("Figure 7ab: topology statistics", realistic.run(jobs=jobs))
    ]
    return sections, []


def _run_fig7c(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 7c: dependency-list sweep",
            fig7_realistic.run_deplist_sweep(
                duration=duration, jobs=jobs, dispatch=dispatch
            ),
        )
    ]
    return sections, [fig7_realistic.deplist_spec(duration=duration)]


def _run_fig7d(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 7d: TTL sweep",
            fig7_realistic.run_ttl_sweep(
                duration=duration, jobs=jobs, dispatch=dispatch
            ),
        )
    ]
    return sections, [fig7_realistic.ttl_spec(duration=duration)]


def _run_fig8(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 8: strategies (realistic, k=3)",
            fig8_strategies.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [fig8_strategies.spec(duration=duration)]


def _run_theorem1(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Theorem 1: unbounded T-Cache",
            theorem1.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [theorem1.spec(duration=duration)]


def _run_scenario(
    duration: float,
    jobs: int,
    dispatch=None,
    edges: int = 3,
    backends: int = 2,
    spec_path: str | None = None,
    spec_duration: float | None = None,
):
    if spec_path is not None:
        # An explicit --duration overrides the recorded duration; without
        # it the replay honours what the spec file says.
        sweep_spec, per_edge, per_backend, per_fleet = scenarios.run_spec_file(
            spec_path, duration=spec_duration, jobs=jobs, dispatch=dispatch
        )
        specs = [sweep_spec]
    else:
        per_edge, per_backend, per_fleet = scenarios.run(
            edges=edges,
            backends=backends,
            duration=duration,
            jobs=jobs,
            dispatch=dispatch,
        )
        specs = [scenarios.spec(edges=edges, backends=backends, duration=duration)]
    sections = [
        _section("Scenarios: per-edge view", per_edge),
        _section("Scenarios: per-backend view", per_backend),
        _section("Scenarios: fleet aggregates", per_fleet),
    ]
    return sections, specs


def _run_protocol_race(duration: float, jobs: int, dispatch=None):
    rows, ranking, _payload = protocol_race.run(
        duration=duration, jobs=jobs, dispatch=dispatch
    )
    sections = [
        _section("Protocol race: per-scenario rows", rows),
        _section("Protocol race: ranking (fewest inconsistencies, then cheapest reads)", ranking),
    ]
    return sections, [protocol_race.spec(duration=duration)]


def _run_sensitivity(duration: float, jobs: int, dispatch=None):
    half = duration / 2.0
    sections = [
        _section(
            "Sensitivity: cluster size vs k",
            sensitivity.run_cluster_size_vs_k(
                duration=half, jobs=jobs, dispatch=dispatch
            ),
        ),
        _section(
            "Sensitivity: invalidation loss sweep",
            sensitivity.run_loss_sweep(duration=half, jobs=jobs, dispatch=dispatch),
        ),
        _section(
            "Sensitivity: update pressure sweep",
            sensitivity.run_update_pressure_sweep(
                duration=half, jobs=jobs, dispatch=dispatch
            ),
        ),
    ]
    return sections, [
        sensitivity.cluster_size_vs_k_spec(duration=half),
        sensitivity.loss_spec(duration=half),
        sensitivity.update_pressure_spec(duration=half),
    ]


EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7ab": _run_fig7ab,
    "fig7c": _run_fig7c,
    "fig7d": _run_fig7d,
    "fig8": _run_fig8,
    "theorem1": _run_theorem1,
    "sensitivity": _run_sensitivity,
    "scenario": _run_scenario,
    "protocol-race": _run_protocol_race,
}


def _run_bench_command(args, parser: argparse.ArgumentParser) -> int:
    """The ``bench`` command: run the tracked perf suite (see repro.bench)."""
    import json

    from repro.bench import compare_payloads, run_suite

    try:
        payload = run_suite(scale=args.bench_scale)
    except ValueError as exc:
        parser.error(str(exc))
    results = payload["results"]
    rows = [
        {
            "probe": "column_throughput",
            "metric": "events/sec",
            "value": round(results["column_throughput"]["events_per_sec"], 1),
        },
        *(
            {
                "probe": f"sgt @{entry['history_size']} updates",
                "metric": "checks/sec",
                "value": round(entry["checks_per_sec"], 1),
            }
            for entry in results["sgt_checks"]["by_size"]
        ),
        {
            "probe": "deplist_merge (k=5)",
            "metric": "merges/sec",
            "value": round(results["deplist_merge"]["merges_per_sec"], 1),
        },
        {
            "probe": "scenario (2 backends)",
            "metric": "txns/wall-sec",
            "value": round(results["scenario"]["transactions_per_wall_sec"], 1),
        },
        {
            "probe": "telemetry off",
            "metric": "events/sec",
            "value": round(
                results["telemetry_overhead"]["untraced_events_per_sec"], 1
            ),
        },
        {
            "probe": "telemetry on (all categories)",
            "metric": "events/sec",
            "value": round(
                results["telemetry_overhead"]["traced_events_per_sec"], 1
            ),
        },
    ]
    print_table(rows, title=f"Bench suite (scale={args.bench_scale:g})")
    if args.json_path:
        # Written before the baseline diff: a completed suite run is never
        # lost to a failed comparison (e.g. a scale mismatch).
        write_json(args.json_path, payload)
        print(f"[wrote {args.json_path}]")
    if args.baseline is not None:
        if os.path.isdir(args.baseline):
            return _print_bench_trajectory(args.baseline, payload)
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        try:
            drift = compare_payloads(payload, baseline)
        except ValueError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 1
        print()
        print_table(drift, title=f"Drift vs {args.baseline} (report-only)")
        slower = [row["metric"] for row in drift if row["regressed"]]
        if slower:
            print(f"[report-only: slower than baseline tolerance on {slower}]")
    return 0


def _print_bench_trajectory(directory: str, payload: dict) -> int:
    """``bench --baseline <dir>``: the whole ``BENCH_<n>.json`` series.

    Walks every committed baseline oldest -> newest and appends the run
    just finished as the newest point when its scale matches (a smoke-scale
    run against full-scale baselines still prints the committed
    trajectory, report-only, with a note).
    """
    import json

    from repro.bench import baseline_series, trajectory_rows

    paths = baseline_series(directory)
    if not paths:
        print(f"bench: no BENCH_<n>.json series in {directory}", file=sys.stderr)
        return 1
    series = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            name = os.path.splitext(os.path.basename(path))[0]
            series.append((name, json.load(handle)))
    if payload.get("scale") == series[-1][1].get("scale"):
        series.append(("current", payload))
    else:
        print(
            f"[current run at scale {payload.get('scale')} excluded from the "
            f"scale-{series[-1][1].get('scale')} trajectory]"
        )
    try:
        rows = trajectory_rows(series)
    except ValueError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 1
    print()
    print_table(
        rows,
        title=f"Trajectory {series[0][0]} -> {series[-1][0]} (report-only)",
    )
    slower = [row["metric"] for row in rows if row["regressed"]]
    if slower:
        print(f"[report-only: below trajectory tolerance on {slower}]")
    return 0


def _run_worker_command(args, parser: argparse.ArgumentParser) -> int:
    """The ``worker`` command: serve coordinators or a fleet daemon.

    Reconnects after each completed sweep (multi-sweep experiments like
    ``sensitivity`` serve several coordinators back to back); exits once no
    coordinator appears within ``--connect-timeout`` seconds, or — against
    a fleet daemon, which never says ``done`` — once the queue stays empty
    past ``--max-idle``.  Exit code 0 if at least one sweep was served
    before going idle (always 0 for a clean ``--max-idle`` exit: a drained
    fleet is success even for a worker that arrived late), 1 for a worker
    that never served anything or was refused (e.g. a protocol version
    mismatch or failed auth challenge) — refusals are real failures however
    many sweeps came before.
    """
    logger = logging.getLogger("repro.dispatch.worker")
    host, port = args.connect
    faults = args.fault
    runs = 0
    while True:
        try:
            stats = run_worker(
                host,
                port,
                name=args.worker_name,
                faults=faults,
                connect_timeout=args.connect_timeout,
                max_idle=args.max_idle,
            )
        except CoordinatorUnreachable as exc:
            if runs:
                logger.info("worker idle, served %d sweep(s); exiting", runs)
                return 0
            logger.error("%s", exc)
            return 1
        except DispatchError as exc:
            # Reachable but refused (handshake/version/auth failure):
            # always loud.
            logger.error("%s", exc)
            return 1
        runs += 1
        logger.info(
            "sweep %d: %d points in %d chunk(s), %d duplicate(s), "
            "%d heartbeat(s)%s",
            runs,
            stats.points_executed,
            stats.chunks_received,
            stats.duplicate_results,
            stats.heartbeats,
            ", disconnected" if stats.disconnected else "",
        )
        if stats.idled_out:
            logger.info(
                "worker idle past %gs (%d fleet sweep(s) served); exiting",
                args.max_idle,
                stats.sweeps_served,
            )
            return 0


def _run_fleet_command(argv: list[str]) -> int:
    """The ``fleet`` command family: serve a daemon, or talk to one.

    ``serve`` runs the long-lived queue daemon in the foreground;
    ``submit``/``status``/``cancel`` are submitter verbs against a running
    daemon.  The shared secret is read from the ``REPRO_FLEET_SECRET``
    environment variable on every verb — never from argv, where it would
    leak into process listings and shell history.
    """
    import json

    from repro.dispatch.client import (
        FleetClient,
        fleet_sweep_name,
        run_fleet_sweep,
    )
    from repro.dispatch.daemon import FleetConfig, run_daemon
    from repro.dispatch.auth import secret_from_env
    from repro.errors import AuthenticationError
    from repro.experiments.sweep import SweepSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fleet",
        description="Durable multi-sweep queue daemon (see "
        "repro.dispatch.daemon) and its submitter verbs.  Shared secret: "
        "the REPRO_FLEET_SECRET environment variable (unset = open daemon).",
    )
    # Shared by every verb so the flag reads naturally after the verb
    # (``fleet serve --log-level DEBUG``), the way the other per-verb
    # options do.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level",
        type=_log_level_arg,
        metavar="LEVEL",
        default="INFO",
        help="threshold for the repro.dispatch.* diagnostic loggers "
        "(DEBUG/INFO/WARNING/ERROR/CRITICAL; default: INFO)",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    serve = verbs.add_parser(
        "serve",
        parents=[common],
        help="run the daemon in the foreground (SIGINT/SIGTERM exit)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=7650,
        help="bind port (default: 7650; 0 picks a free port and logs it)",
    )
    serve.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="append-only JSONL journals: every completed point lands here "
        "and a restarted daemon resumes from them (default: no journal)",
    )
    serve.add_argument(
        "--lease-timeout",
        type=float,
        metavar="SECONDS",
        default=30.0,
        help="reassign a worker's chunk this long after its last sign of "
        "life (default: 30)",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the journal after every point (slower; survives power "
        "loss, not just process death)",
    )
    serve.add_argument(
        "--journal-expiry",
        type=float,
        metavar="SECONDS",
        default=None,
        help="at startup, archive finished journals idle for this long to "
        "<journal-dir>/archive/ so restore and status stay O(active "
        "sweeps); 0 archives every finished journal (default: keep all)",
    )

    def _client_args(
        sub: argparse.ArgumentParser, *, required: bool = True
    ) -> None:
        sub.add_argument(
            "--connect",
            type=_hostport_type,
            metavar="HOST:PORT",
            required=required,
            help="the daemon to talk to",
        )
        sub.add_argument(
            "--connect-timeout",
            type=float,
            metavar="SECONDS",
            default=30.0,
            help="keep retrying an unreachable daemon this long per "
            "operation (default: 30)",
        )

    submit = verbs.add_parser(
        "submit", parents=[common], help="submit a sweep-spec JSON file"
    )
    _client_args(submit)
    submit.add_argument(
        "spec_path",
        metavar="SPEC.json",
        help="a sweep spec payload (SweepSpec.as_dict — e.g. one of the "
        "sweep_specs entries of a --json artifact)",
    )
    submit.add_argument(
        "--name",
        default=None,
        help="sweep name (default: content-derived, so resubmitting the "
        "same spec resumes it instead of recomputing)",
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="higher priorities drain first; ties serve in submission "
        "order (default: 0)",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the sweep drains and fetch its results",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="with --wait: give up after this long (default: wait forever, "
        "riding out daemon restarts)",
    )
    submit.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="with --wait: write the completed SweepResult artifact here",
    )

    status = verbs.add_parser(
        "status",
        parents=[common],
        help="print sweep, worker and daemon status tables",
    )
    _client_args(status, required=False)
    status.add_argument("--sweep", default=None, help="only this sweep's row")
    status.add_argument(
        "--metrics",
        action="store_true",
        help="print the daemon's live repro.telemetry/1 snapshot instead of "
        "the status tables: per-sweep throughput and journal lag, worker "
        "EWMA rates, lease churn (live daemons only)",
    )
    status.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help="offline mode: summarise this journal directory instead of "
        "asking a live daemon — backed by the stat-cached index, so a "
        "directory full of finished sweeps costs one stat per file",
    )

    cancel = verbs.add_parser(
        "cancel", parents=[common], help="cancel a sweep and tear up its leases"
    )
    _client_args(cancel)
    cancel.add_argument("sweep", help="the sweep name to cancel")

    args = parser.parse_args(argv)
    _configure_logging(args.log_level)

    if args.verb == "serve":
        try:
            run_daemon(
                FleetConfig(
                    host=args.host,
                    port=args.port,
                    journal_dir=args.journal_dir,
                    lease_timeout=args.lease_timeout,
                    fsync=args.fsync,
                    journal_expiry=args.journal_expiry,
                )
            )
        except (DispatchError, ConfigurationError, OSError) as exc:
            print(f"fleet serve: {exc}", file=sys.stderr)
            return 1
        return 0

    if args.verb == "submit" and args.json_path and not args.wait:
        parser.error("--json requires --wait (results exist only once drained)")
    if args.verb == "submit" and args.timeout is not None and not args.wait:
        parser.error("--timeout requires --wait")

    if args.verb == "status" and args.journal_dir is not None:
        if args.connect is not None:
            parser.error("--journal-dir and --connect are mutually exclusive")
        if args.metrics:
            parser.error(
                "--metrics needs a live daemon (--connect); journals record "
                "results, not rates"
            )
        from repro.dispatch.journal import journal_index
        from repro.errors import JournalError

        try:
            entries = journal_index(args.journal_dir)
        except (JournalError, OSError) as exc:
            print(f"fleet status: {exc}", file=sys.stderr)
            return 1
        if args.sweep is not None:
            entries = [e for e in entries if e.name == args.sweep]
        print_table(
            [
                {
                    "sweep": entry.name,
                    "state": "done" if entry.finished else "partial",
                    "completed": entry.completed,
                    "total": entry.total,
                    "priority": entry.priority,
                    "fingerprint": entry.fingerprint.removeprefix("sha256:")[
                        :12
                    ],
                }
                for entry in entries
            ],
            title=f"Journalled sweeps in {args.journal_dir}",
        )
        return 0
    if args.verb == "status" and args.connect is None:
        parser.error(
            "status needs --connect (live daemon) or --journal-dir (offline)"
        )

    host, port = args.connect
    try:
        if args.verb == "submit":
            with open(args.spec_path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or "columns" not in payload:
                parser.error(
                    f"{args.spec_path} is not a sweep spec payload (no "
                    "'columns' key — pass a SweepSpec.as_dict file, e.g. a "
                    "sweep_specs entry of a --json artifact)"
                )
            # Rebuild locally first: an unportable or corrupt spec must
            # fail here, not as a daemon-side refusal.
            spec = SweepSpec.from_dict(payload)
            name = args.name or fleet_sweep_name(spec)
            if args.wait:
                result = run_fleet_sweep(
                    spec,
                    FleetSpec(
                        host=host,
                        port=port,
                        priority=args.priority,
                        name=name,
                        connect_timeout=args.connect_timeout,
                        wait_timeout=args.timeout,
                    ),
                )
                print(
                    f"[sweep {name!r} complete: {len(result.results)} "
                    f"point(s), {result.jobs} worker(s)]"
                )
                if args.json_path:
                    write_json(args.json_path, result.to_artifact())
                    print(f"[wrote {args.json_path}]")
                return 0
            client = FleetClient(
                host,
                port,
                secret=secret_from_env(),
                connect_timeout=args.connect_timeout,
            )
            reply = client.submit(spec, name=name, priority=args.priority)
            # An attach keeps the daemon's original priority; only echo
            # ours when this submission actually set it.
            suffix = f", priority {args.priority}" if reply.get("created") else ""
            verb = "submitted" if reply.get("created") else "attached"
            print(
                f"[sweep {name!r} {verb}: {reply.get('completed')}/"
                f"{reply.get('total')} done, state {reply.get('state')}{suffix}]"
            )
            return 0
        client = FleetClient(
            host,
            port,
            secret=secret_from_env(),
            connect_timeout=args.connect_timeout,
        )
        if args.verb == "status":
            if args.metrics:
                from repro.telemetry import validate_telemetry

                if args.sweep is not None:
                    parser.error("--metrics reports the whole daemon; drop --sweep")
                section = client.metrics().get("telemetry")
                validate_telemetry(section)
                rows = [
                    {"metric": name, "kind": "counter", "value": value}
                    for name, value in section["counters"].items()
                ] + [
                    {"metric": name, "kind": "gauge", "value": value}
                    for name, value in section["gauges"].items()
                ]
                print_table(
                    rows, title=f"Daemon metrics ({section['schema']})"
                )
                return 0
            report = client.status(args.sweep)
            print_table(report.get("sweeps", []), title="Fleet sweeps")
            print()
            print_table(report.get("workers", []), title="Fleet workers")
            print()
            print_table([report.get("daemon", {})], title="Daemon")
            return 0
        reply = client.cancel(args.sweep)
        if reply.get("existed"):
            print(f"[sweep {args.sweep!r} cancelled]")
            return 0
        print(f"fleet cancel: no sweep named {args.sweep!r}", file=sys.stderr)
        return 1
    except AuthenticationError as exc:
        print(f"fleet {args.verb}: {exc}", file=sys.stderr)
        return 1
    except (ConfigurationError, DispatchError) as exc:
        print(f"fleet {args.verb}: {exc}", file=sys.stderr)
        return 1
    except (OSError, json.JSONDecodeError) as exc:
        print(f"fleet {args.verb}: {exc}", file=sys.stderr)
        return 1


def _with_profile(path: str | None, work):
    """Run ``work()`` — under :mod:`cProfile` when ``--profile`` was given."""
    if path is None:
        return work()
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return work()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(
            f"[profile written to {path}; inspect with "
            f"'python -m pstats {path}' or snakeviz]"
        )


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["fleet"]:
        # The fleet family has verbs of its own (serve/submit/status/cancel)
        # and shares nothing with the figure flags; parse it separately.
        return _run_fleet_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the T-Cache paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "worker", "bench", "fleet"],
        help="which figure to regenerate, 'worker' to serve a dispatch "
        "coordinator or fleet daemon, 'bench' to run the tracked "
        "performance suite, or 'fleet serve|submit|status|cancel' for the "
        "long-lived sweep-queue daemon",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="measured simulated seconds per run (default: 30, the paper "
        "scale; in `scenario --spec` replays the default is the recorded "
        "duration)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help="worker processes for sweep columns (default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=3,
        help="edge count for the scenario experiment's loss-ramp fleet "
        "(default: 3; ignored by the figure experiments)",
    )
    parser.add_argument(
        "--backends",
        type=int,
        default=2,
        help="backend count for the scenario experiment's routed-tier "
        "fleets (default: 2; 1 disables them; ignored by the figure "
        "experiments)",
    )
    parser.add_argument(
        "--spec",
        dest="spec_path",
        metavar="PATH",
        default=None,
        help="replay one scenario from a ScenarioSpec.as_dict JSON file "
        "(scenario experiment only; overrides --edges/--backends)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="write the full (unsampled) rows plus run metadata as JSON "
        "(for bench: the repro.bench payload)",
    )
    parser.add_argument(
        "--profile",
        dest="profile_path",
        metavar="PATH",
        default=None,
        help="run under cProfile and dump the stats file here",
    )
    telemetry_group = parser.add_argument_group(
        "telemetry (see repro.telemetry)"
    )
    telemetry_group.add_argument(
        "--trace",
        dest="trace_path",
        metavar="PATH",
        default=None,
        help="trace every sweep point (kernel dispatch, cache, channel, "
        "SGT, protocol decisions) and write the records as JSONL here; "
        "byte-identical across --jobs/--dispatch/--fleet modulo the "
        "wall-clock header line",
    )
    telemetry_group.add_argument(
        "--chrome-trace",
        dest="chrome_trace_path",
        metavar="PATH",
        default=None,
        help="with --trace: also write the records in Chrome trace_event "
        "JSON for chrome://tracing / Perfetto",
    )
    telemetry_group.add_argument(
        "--log-level",
        type=_log_level_arg,
        metavar="LEVEL",
        default="INFO",
        help="threshold for the repro.dispatch.* diagnostic loggers "
        "(DEBUG/INFO/WARNING/ERROR/CRITICAL; default: INFO)",
    )
    bench_group = parser.add_argument_group("performance suite (see repro.bench)")
    bench_group.add_argument(
        "--bench-scale",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="bench command only: scale the suite's durations and history "
        "sizes (default: 1.0, the committed-baseline scale)",
    )
    bench_group.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="bench command only: recorded BENCH_*.json to diff against, or "
        "a directory whose whole BENCH_<n>.json series is walked as an "
        "oldest->newest trajectory (report-only; exits 0 regardless of "
        "drift)",
    )

    def _fault_arg(text: str) -> FaultPlan:
        try:
            return FaultPlan.parse(text)
        except ConfigurationError as exc:
            raise argparse.ArgumentTypeError(str(exc))

    dispatch_group = parser.add_argument_group(
        "distributed sweeps (see repro.dispatch)"
    )
    dispatch_group.add_argument(
        "--dispatch",
        type=_hostport_type,
        metavar="HOST:PORT",
        default=None,
        help="serve the experiment's sweeps to remote workers at this "
        "address instead of running a local pool (results are identical)",
    )
    dispatch_group.add_argument(
        "--connect",
        type=_hostport_type,
        metavar="HOST:PORT",
        default=None,
        help="worker command only: the coordinator to pull work from",
    )
    dispatch_group.add_argument(
        "--connect-timeout",
        type=float,
        metavar="SECONDS",
        default=30.0,
        help="worker: how long to wait for a coordinator before giving up "
        "(default: 30)",
    )
    dispatch_group.add_argument(
        "--worker-name",
        metavar="NAME",
        default=None,
        help="worker: name reported to the coordinator (default: worker-PID)",
    )
    dispatch_group.add_argument(
        "--fault",
        type=_fault_arg,
        metavar="KIND:N[:SECS]",
        default=None,
        help="worker failure drill: crash:N (die hard after N points), "
        "stall:N:SECS (go silent mid-run), disconnect:N",
    )
    fleet_group = parser.add_argument_group(
        "fleet daemon (see repro.dispatch.daemon; secret via REPRO_FLEET_SECRET)"
    )
    fleet_group.add_argument(
        "--fleet",
        type=_hostport_type,
        metavar="HOST:PORT",
        default=None,
        help="submit the experiment's sweeps to a running fleet daemon "
        "('fleet serve') instead of self-coordinating — identical resubmissions "
        "resume from the daemon's journal (results are identical either way)",
    )
    fleet_group.add_argument(
        "--fleet-priority",
        type=int,
        metavar="N",
        default=0,
        help="with --fleet: queue priority (higher drains first; default: 0)",
    )
    fleet_group.add_argument(
        "--fleet-wait-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="with --fleet: give up if a sweep has not drained in time "
        "(default: wait forever, riding out daemon restarts)",
    )
    fleet_group.add_argument(
        "--max-idle",
        type=float,
        metavar="SECONDS",
        default=None,
        help="worker: exit once the fleet queue stays empty this long — a "
        "daemon never says done (default: wait forever)",
    )
    args = parser.parse_args(argv)
    _configure_logging(args.log_level)
    if args.chrome_trace_path is not None and args.trace_path is None:
        parser.error("--chrome-trace requires --trace (it converts the JSONL)")
    if args.experiment in ("worker", "bench") and args.trace_path is not None:
        # Workers trace when the point they pull says so; the bench suite
        # measures tracing itself (telemetry_overhead) on its own terms.
        parser.error(f"--trace does not apply to the {args.experiment} command")
    if args.experiment != "bench":
        # Bench-only flags fail loudly on every other command, including
        # worker — a silently dropped flag looks like a reduced-scale run.
        if args.baseline is not None:
            parser.error("--baseline only applies to the bench command")
        if args.bench_scale != 1.0:
            parser.error("--bench-scale only applies to the bench command")
    if args.experiment == "worker":
        if args.connect is None:
            parser.error("worker requires --connect HOST:PORT")
        if args.dispatch is not None:
            parser.error("--dispatch belongs to the coordinator side, not worker")
        if args.fleet is not None:
            parser.error("--fleet belongs to the submitter side, not worker")
        if args.max_idle is not None and args.max_idle <= 0:
            parser.error(f"--max-idle must be positive, got {args.max_idle:g}")
        return _with_profile(
            args.profile_path, lambda: _run_worker_command(args, parser)
        )
    if args.connect is not None:
        parser.error("--connect only applies to the worker command")
    if args.fault is not None:
        parser.error("--fault only applies to the worker command")
    if args.max_idle is not None:
        parser.error("--max-idle only applies to the worker command")
    if args.fleet is None:
        # Same rule as the bench-only flags: a silently dropped fleet flag
        # would look like a deliberately different submission.
        if args.fleet_priority != 0:
            parser.error("--fleet-priority requires --fleet HOST:PORT")
        if args.fleet_wait_timeout is not None:
            parser.error("--fleet-wait-timeout requires --fleet HOST:PORT")
    if args.experiment == "bench":
        if args.dispatch is not None:
            parser.error("the bench suite runs locally; --dispatch is not supported")
        if args.fleet is not None:
            parser.error("the bench suite runs locally; --fleet is not supported")
        if args.baseline is not None and not os.path.exists(args.baseline):
            parser.error(
                f"--baseline: no such file or directory: {args.baseline}"
            )
        return _with_profile(
            args.profile_path, lambda: _run_bench_command(args, parser)
        )
    if args.dispatch is not None and args.fleet is not None:
        parser.error("--dispatch and --fleet are mutually exclusive")
    if args.dispatch is not None and args.dispatch[1] == 0:
        # Port 0 binds an OS-chosen port nobody is told about; it is only
        # useful programmatically, where Coordinator.address can be read.
        parser.error("--dispatch needs an explicit port (port 0 is ephemeral)")
    if args.fleet is not None and args.fleet[1] == 0:
        parser.error("--fleet needs the daemon's explicit port")
    if args.fleet is not None:
        dispatch = FleetSpec(
            host=args.fleet[0],
            port=args.fleet[1],
            priority=args.fleet_priority,
            wait_timeout=args.fleet_wait_timeout,
        )
    else:
        dispatch = (
            None
            if args.dispatch is None
            else DispatchSpec(host=args.dispatch[0], port=args.dispatch[1])
        )
    jobs = resolve_jobs(args.jobs)
    duration = 30.0 if args.duration is None else args.duration
    if args.edges < 1:
        parser.error(f"--edges: need at least one edge, got {args.edges}")
    if args.backends < 1:
        parser.error(
            f"--backends: need at least one backend, got {args.backends}"
        )
    if args.spec_path is not None:
        if args.experiment != "scenario":
            parser.error("--spec only applies to the scenario experiment")
        if not os.path.isfile(args.spec_path):
            parser.error(f"--spec: no such file: {args.spec_path}")
    for flag, path in (
        ("--json", args.json_path),
        ("--trace", args.trace_path),
        ("--chrome-trace", args.chrome_trace_path),
    ):
        if not path:
            continue
        # Fail before the sweeps run, not after minutes of simulation.
        if os.path.isdir(path):
            parser.error(f"{flag}: path is a directory: {path}")
        directory = os.path.dirname(os.path.abspath(path))
        if not os.path.isdir(directory):
            parser.error(f"{flag}: directory does not exist: {directory}")
        if not os.access(directory, os.W_OK):
            parser.error(f"{flag}: directory is not writable: {directory}")

    selected = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if isinstance(dispatch, FleetSpec):
        print(
            f"[fleet: submitting sweeps to the daemon at "
            f"{dispatch.host}:{dispatch.port} (priority {dispatch.priority})]"
        )
    elif dispatch is not None:
        print(
            f"[dispatch: serving sweeps at {dispatch.host}:{dispatch.port} — "
            f"start workers with 'python -m repro.experiments worker "
            f"--connect <this-host>:{dispatch.port}']"
        )
    payloads = []

    def _run_selected() -> None:
        nonlocal duration
        for name in selected:
            start = time.perf_counter()
            if name == "scenario":
                sections, specs = EXPERIMENTS[name](
                    duration,
                    jobs,
                    dispatch=dispatch,
                    edges=args.edges,
                    backends=args.backends,
                    spec_path=args.spec_path,
                    spec_duration=args.duration,
                )
                if args.spec_path is not None and args.duration is None:
                    # The replay honoured the recorded duration; make the
                    # artifact metadata report what was actually simulated.
                    duration = specs[0].points[0].scenario.duration
            else:
                sections, specs = EXPERIMENTS[name](duration, jobs, dispatch=dispatch)
            elapsed = time.perf_counter() - start
            for section in sections:
                stride = section.get("stride", 1)
                print_table(section["rows"][::stride], title=section["title"])
            print(f"[{name} done in {elapsed:.1f}s]\n")
            payloads.append(
                experiment_payload(
                    name,
                    sections,
                    wall_clock_seconds=elapsed,
                    sweep_specs=[spec_artifact(spec) for spec in specs],
                )
            )

    if args.trace_path is not None:
        from repro import telemetry

        telemetry.enable()
        try:
            _with_profile(args.profile_path, _run_selected)
            traced = telemetry.drain_recorded_sweeps()
        finally:
            telemetry.disable()
        telemetry.write_trace_jsonl(args.trace_path, traced)
        lines = sum(len(result.results) for result in traced) + len(traced)
        print(
            f"[trace: {len(traced)} sweep(s) -> {args.trace_path} "
            f"(records from {lines - len(traced)} point(s))]"
        )
        if args.chrome_trace_path is not None:
            telemetry.write_chrome_trace(
                args.chrome_trace_path,
                telemetry.trace_jsonl_lines(traced),
            )
            print(
                f"[chrome trace -> {args.chrome_trace_path}; open in "
                f"chrome://tracing or https://ui.perfetto.dev]"
            )
    else:
        _with_profile(args.profile_path, _run_selected)

    if args.json_path:
        write_json(
            args.json_path,
            {
                "schema": ARTIFACT_SCHEMA,
                "duration": duration,
                "jobs": jobs,
                "experiments": payloads,
            },
        )
        print(f"[wrote {args.json_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
