"""Command-line entry point for the paper's experiments.

Run any figure's sweep, fan its columns across worker processes, print the
series it plots, and optionally write a machine-readable artifact::

    python -m repro.experiments fig3
    python -m repro.experiments fig7c --duration 20 --jobs 4
    python -m repro.experiments fig8 --jobs 4 --json fig8.json
    python -m repro.experiments scenario --edges 4 --backends 2 --json fleets.json
    python -m repro.experiments scenario --spec saved-scenario.json
    python -m repro.experiments all --duration 15

Experiment ids: fig3, fig4, fig5, fig6, fig7ab, fig7c, fig7d, fig8,
theorem1, sensitivity, scenario.  ``scenario`` runs the multi-edge library
fleets (heterogeneous loss ramp sized by ``--edges``, geo-skewed regions,
flash crowd, plus — with ``--backends >= 2`` — the routed backend tiers)
and reports per-edge rows, per-backend rows and fleet aggregates;
``scenario --spec file.json`` instead replays one scenario recorded with
``ScenarioSpec.as_dict`` (e.g. from a ``--json`` artifact).  ``--jobs``
defaults to every available CPU; ``--jobs 1`` runs serially and produces
identical series for the same root seed.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import (
    fig3_alpha,
    fig4_convergence,
    fig5_drift,
    fig6_strategies,
    fig7_realistic,
    fig8_strategies,
    realistic,
    scenarios,
    sensitivity,
    theorem1,
)
from repro.experiments.report import (
    ARTIFACT_SCHEMA,
    experiment_payload,
    print_table,
    write_json,
)
from repro.errors import ConfigurationError
from repro.experiments.sweep import resolve_jobs, spec_artifact


def _jobs_arg(text: str) -> int:
    """argparse adapter around :func:`resolve_jobs`'s validation."""
    try:
        return resolve_jobs(int(text))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc))


#: A printed/serialised unit: title + full rows (+ display stride for the
#: long time series, which are sampled on the terminal but kept whole in
#: ``--json`` artifacts).
Section = dict


def _section(title: str, rows: list[dict], stride: int = 1) -> Section:
    return {"title": title, "rows": rows, "stride": stride}


def _run_fig3(duration: float, jobs: int):
    sections = [
        _section(
            "Figure 3: detected inconsistencies vs Pareto alpha",
            fig3_alpha.run(duration=duration, jobs=jobs),
        )
    ]
    return sections, [fig3_alpha.spec(duration=duration)]


def _run_fig4(duration: float, jobs: int):
    scale = duration / 30.0
    rows = fig4_convergence.run(
        duration=160.0 * scale, switch_time=58.0 * scale, jobs=jobs
    )
    summaries = fig4_convergence.phase_summaries(rows, switch_time=58.0 * scale)
    sections = [
        _section(
            "Figure 4: convergence (sampled windows)",
            rows,
            stride=max(1, len(rows) // 24),
        ),
        _section(
            "phase means [txn/s]",
            [
                {"phase": "before", **summaries["before"]},
                {"phase": "after", **summaries["after"]},
            ],
        ),
    ]
    return sections, [
        fig4_convergence.spec(duration=160.0 * scale, switch_time=58.0 * scale)
    ]


def _run_fig5(duration: float, jobs: int):
    scale = duration / 30.0
    rows = fig5_drift.run(
        duration=800.0 * scale,
        shift_interval=180.0 * scale,
        window=5.0 * scale,
        jobs=jobs,
    )
    sections = [
        _section(
            "Figure 5: drifting clusters (sampled)",
            rows,
            stride=max(1, len(rows) // 32),
        ),
        _section(
            "spike profile",
            [fig5_drift.shift_spike_profile(rows, 180.0 * scale)],
        ),
    ]
    return sections, [
        fig5_drift.spec(
            duration=800.0 * scale,
            shift_interval=180.0 * scale,
            window=5.0 * scale,
        )
    ]


def _run_fig6(duration: float, jobs: int):
    sections = [
        _section(
            "Figure 6: strategies (synthetic, alpha=1)",
            fig6_strategies.run(duration=duration, jobs=jobs),
        )
    ]
    return sections, [fig6_strategies.spec(duration=duration)]


def _run_fig7ab(duration: float, jobs: int):
    sections = [
        _section("Figure 7ab: topology statistics", realistic.run(jobs=jobs))
    ]
    return sections, []


def _run_fig7c(duration: float, jobs: int):
    sections = [
        _section(
            "Figure 7c: dependency-list sweep",
            fig7_realistic.run_deplist_sweep(duration=duration, jobs=jobs),
        )
    ]
    return sections, [fig7_realistic.deplist_spec(duration=duration)]


def _run_fig7d(duration: float, jobs: int):
    sections = [
        _section(
            "Figure 7d: TTL sweep",
            fig7_realistic.run_ttl_sweep(duration=duration, jobs=jobs),
        )
    ]
    return sections, [fig7_realistic.ttl_spec(duration=duration)]


def _run_fig8(duration: float, jobs: int):
    sections = [
        _section(
            "Figure 8: strategies (realistic, k=3)",
            fig8_strategies.run(duration=duration, jobs=jobs),
        )
    ]
    return sections, [fig8_strategies.spec(duration=duration)]


def _run_theorem1(duration: float, jobs: int):
    sections = [
        _section(
            "Theorem 1: unbounded T-Cache",
            theorem1.run(duration=duration, jobs=jobs),
        )
    ]
    return sections, [theorem1.spec(duration=duration)]


def _run_scenario(
    duration: float,
    jobs: int,
    edges: int = 3,
    backends: int = 2,
    spec_path: str | None = None,
    spec_duration: float | None = None,
):
    if spec_path is not None:
        # An explicit --duration overrides the recorded duration; without
        # it the replay honours what the spec file says.
        sweep_spec, per_edge, per_backend, per_fleet = scenarios.run_spec_file(
            spec_path, duration=spec_duration, jobs=jobs
        )
        specs = [sweep_spec]
    else:
        per_edge, per_backend, per_fleet = scenarios.run(
            edges=edges, backends=backends, duration=duration, jobs=jobs
        )
        specs = [scenarios.spec(edges=edges, backends=backends, duration=duration)]
    sections = [
        _section("Scenarios: per-edge view", per_edge),
        _section("Scenarios: per-backend view", per_backend),
        _section("Scenarios: fleet aggregates", per_fleet),
    ]
    return sections, specs


def _run_sensitivity(duration: float, jobs: int):
    half = duration / 2.0
    sections = [
        _section(
            "Sensitivity: cluster size vs k",
            sensitivity.run_cluster_size_vs_k(duration=half, jobs=jobs),
        ),
        _section(
            "Sensitivity: invalidation loss sweep",
            sensitivity.run_loss_sweep(duration=half, jobs=jobs),
        ),
        _section(
            "Sensitivity: update pressure sweep",
            sensitivity.run_update_pressure_sweep(duration=half, jobs=jobs),
        ),
    ]
    return sections, [
        sensitivity.cluster_size_vs_k_spec(duration=half),
        sensitivity.loss_spec(duration=half),
        sensitivity.update_pressure_spec(duration=half),
    ]


EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7ab": _run_fig7ab,
    "fig7c": _run_fig7c,
    "fig7d": _run_fig7d,
    "fig8": _run_fig8,
    "theorem1": _run_theorem1,
    "sensitivity": _run_sensitivity,
    "scenario": _run_scenario,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the T-Cache paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="measured simulated seconds per run (default: 30, the paper "
        "scale; in `scenario --spec` replays the default is the recorded "
        "duration)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help="worker processes for sweep columns (default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=3,
        help="edge count for the scenario experiment's loss-ramp fleet "
        "(default: 3; ignored by the figure experiments)",
    )
    parser.add_argument(
        "--backends",
        type=int,
        default=2,
        help="backend count for the scenario experiment's routed-tier "
        "fleets (default: 2; 1 disables them; ignored by the figure "
        "experiments)",
    )
    parser.add_argument(
        "--spec",
        dest="spec_path",
        metavar="PATH",
        default=None,
        help="replay one scenario from a ScenarioSpec.as_dict JSON file "
        "(scenario experiment only; overrides --edges/--backends)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="write the full (unsampled) rows plus run metadata as JSON",
    )
    args = parser.parse_args(argv)
    jobs = resolve_jobs(args.jobs)
    duration = 30.0 if args.duration is None else args.duration
    if args.edges < 1:
        parser.error(f"--edges: need at least one edge, got {args.edges}")
    if args.backends < 1:
        parser.error(
            f"--backends: need at least one backend, got {args.backends}"
        )
    if args.spec_path is not None:
        if args.experiment != "scenario":
            parser.error("--spec only applies to the scenario experiment")
        if not os.path.isfile(args.spec_path):
            parser.error(f"--spec: no such file: {args.spec_path}")
    if args.json_path:
        # Fail before the sweeps run, not after minutes of simulation.
        if os.path.isdir(args.json_path):
            parser.error(f"--json: path is a directory: {args.json_path}")
        directory = os.path.dirname(os.path.abspath(args.json_path))
        if not os.path.isdir(directory):
            parser.error(f"--json: directory does not exist: {directory}")
        if not os.access(directory, os.W_OK):
            parser.error(f"--json: directory is not writable: {directory}")

    selected = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    payloads = []
    for name in selected:
        start = time.perf_counter()
        if name == "scenario":
            sections, specs = EXPERIMENTS[name](
                duration,
                jobs,
                edges=args.edges,
                backends=args.backends,
                spec_path=args.spec_path,
                spec_duration=args.duration,
            )
            if args.spec_path is not None and args.duration is None:
                # The replay honoured the recorded duration; make the
                # artifact metadata report what was actually simulated.
                duration = specs[0].points[0].scenario.duration
        else:
            sections, specs = EXPERIMENTS[name](duration, jobs)
        elapsed = time.perf_counter() - start
        for section in sections:
            stride = section.get("stride", 1)
            print_table(section["rows"][::stride], title=section["title"])
        print(f"[{name} done in {elapsed:.1f}s]\n")
        payloads.append(
            experiment_payload(
                name,
                sections,
                wall_clock_seconds=elapsed,
                sweep_specs=[spec_artifact(spec) for spec in specs],
            )
        )

    if args.json_path:
        write_json(
            args.json_path,
            {
                "schema": ARTIFACT_SCHEMA,
                "duration": duration,
                "jobs": jobs,
                "experiments": payloads,
            },
        )
        print(f"[wrote {args.json_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
