"""Command-line entry point for the paper's experiments.

Run any figure's sweep, fan its columns across worker processes — or
across *hosts* — print the series it plots, and optionally write a
machine-readable artifact::

    python -m repro.experiments fig3
    python -m repro.experiments fig7c --duration 20 --jobs 4
    python -m repro.experiments fig8 --jobs 4 --json fig8.json
    python -m repro.experiments scenario --edges 4 --backends 2 --json fleets.json
    python -m repro.experiments scenario --spec saved-scenario.json
    python -m repro.experiments all --duration 15

    # distributed: one coordinator + any number of workers, any hosts
    python -m repro.experiments fig3 --dispatch 0.0.0.0:7643 --json fig3.json
    python -m repro.experiments worker --connect coordinator-host:7643

    # performance: the tracked bench suite, and profiling any experiment
    python -m repro.experiments bench --json BENCH.json --baseline BENCH_5.json
    python -m repro.experiments fig3 --duration 5 --profile fig3.prof

Experiment ids: fig3, fig4, fig5, fig6, fig7ab, fig7c, fig7d, fig8,
theorem1, sensitivity, scenario — plus two non-experiment commands:
``worker``, a dispatch worker process, and ``bench``, the deterministic
performance suite (see :mod:`repro.bench`; ``--bench-scale`` shrinks it,
``--baseline`` prints report-only drift against a recorded ``BENCH_*.json``).
``--profile PATH`` wraps any command in :mod:`cProfile` and dumps the stats
file for ``pstats``/snakeviz.  ``scenario`` runs the
multi-edge library fleets (heterogeneous loss ramp sized by ``--edges``,
geo-skewed regions, flash crowd, plus — with ``--backends >= 2`` — the
routed backend tiers, the region-failure drill and the capacity-planning
grid) and reports per-edge rows, per-backend rows and fleet aggregates;
``scenario --spec file.json`` instead replays one scenario recorded with
``ScenarioSpec.as_dict`` (e.g. from a ``--json`` artifact).  ``--jobs``
defaults to every available CPU; ``--jobs 1`` runs serially and produces
identical series for the same root seed.  ``--dispatch HOST:PORT`` serves
every sweep of the experiment to remote workers instead of a local pool —
same bytes out, see :mod:`repro.dispatch`.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.dispatch import DispatchSpec, FaultPlan, parse_hostport, run_worker
from repro.experiments import (
    fig3_alpha,
    fig4_convergence,
    fig5_drift,
    fig6_strategies,
    fig7_realistic,
    fig8_strategies,
    realistic,
    scenarios,
    sensitivity,
    theorem1,
)
from repro.experiments.report import (
    ARTIFACT_SCHEMA,
    experiment_payload,
    print_table,
    write_json,
)
from repro.errors import ConfigurationError, CoordinatorUnreachable, DispatchError
from repro.experiments.sweep import resolve_jobs, spec_artifact


def _jobs_arg(text: str) -> int:
    """argparse adapter around :func:`resolve_jobs`'s validation."""
    try:
        return resolve_jobs(int(text))
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc))


#: A printed/serialised unit: title + full rows (+ display stride for the
#: long time series, which are sampled on the terminal but kept whole in
#: ``--json`` artifacts).
Section = dict


def _section(title: str, rows: list[dict], stride: int = 1) -> Section:
    return {"title": title, "rows": rows, "stride": stride}


def _run_fig3(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 3: detected inconsistencies vs Pareto alpha",
            fig3_alpha.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [fig3_alpha.spec(duration=duration)]


def _run_fig4(duration: float, jobs: int, dispatch=None):
    scale = duration / 30.0
    rows = fig4_convergence.run(
        duration=160.0 * scale,
        switch_time=58.0 * scale,
        jobs=jobs,
        dispatch=dispatch,
    )
    summaries = fig4_convergence.phase_summaries(rows, switch_time=58.0 * scale)
    sections = [
        _section(
            "Figure 4: convergence (sampled windows)",
            rows,
            stride=max(1, len(rows) // 24),
        ),
        _section(
            "phase means [txn/s]",
            [
                {"phase": "before", **summaries["before"]},
                {"phase": "after", **summaries["after"]},
            ],
        ),
    ]
    return sections, [
        fig4_convergence.spec(duration=160.0 * scale, switch_time=58.0 * scale)
    ]


def _run_fig5(duration: float, jobs: int, dispatch=None):
    scale = duration / 30.0
    rows = fig5_drift.run(
        duration=800.0 * scale,
        shift_interval=180.0 * scale,
        window=5.0 * scale,
        jobs=jobs,
        dispatch=dispatch,
    )
    sections = [
        _section(
            "Figure 5: drifting clusters (sampled)",
            rows,
            stride=max(1, len(rows) // 32),
        ),
        _section(
            "spike profile",
            [fig5_drift.shift_spike_profile(rows, 180.0 * scale)],
        ),
    ]
    return sections, [
        fig5_drift.spec(
            duration=800.0 * scale,
            shift_interval=180.0 * scale,
            window=5.0 * scale,
        )
    ]


def _run_fig6(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 6: strategies (synthetic, alpha=1)",
            fig6_strategies.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [fig6_strategies.spec(duration=duration)]


def _run_fig7ab(duration: float, jobs: int, dispatch=None):
    # Pure graph analysis: no simulation grid, nothing to dispatch.
    sections = [
        _section("Figure 7ab: topology statistics", realistic.run(jobs=jobs))
    ]
    return sections, []


def _run_fig7c(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 7c: dependency-list sweep",
            fig7_realistic.run_deplist_sweep(
                duration=duration, jobs=jobs, dispatch=dispatch
            ),
        )
    ]
    return sections, [fig7_realistic.deplist_spec(duration=duration)]


def _run_fig7d(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 7d: TTL sweep",
            fig7_realistic.run_ttl_sweep(
                duration=duration, jobs=jobs, dispatch=dispatch
            ),
        )
    ]
    return sections, [fig7_realistic.ttl_spec(duration=duration)]


def _run_fig8(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Figure 8: strategies (realistic, k=3)",
            fig8_strategies.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [fig8_strategies.spec(duration=duration)]


def _run_theorem1(duration: float, jobs: int, dispatch=None):
    sections = [
        _section(
            "Theorem 1: unbounded T-Cache",
            theorem1.run(duration=duration, jobs=jobs, dispatch=dispatch),
        )
    ]
    return sections, [theorem1.spec(duration=duration)]


def _run_scenario(
    duration: float,
    jobs: int,
    dispatch=None,
    edges: int = 3,
    backends: int = 2,
    spec_path: str | None = None,
    spec_duration: float | None = None,
):
    if spec_path is not None:
        # An explicit --duration overrides the recorded duration; without
        # it the replay honours what the spec file says.
        sweep_spec, per_edge, per_backend, per_fleet = scenarios.run_spec_file(
            spec_path, duration=spec_duration, jobs=jobs, dispatch=dispatch
        )
        specs = [sweep_spec]
    else:
        per_edge, per_backend, per_fleet = scenarios.run(
            edges=edges,
            backends=backends,
            duration=duration,
            jobs=jobs,
            dispatch=dispatch,
        )
        specs = [scenarios.spec(edges=edges, backends=backends, duration=duration)]
    sections = [
        _section("Scenarios: per-edge view", per_edge),
        _section("Scenarios: per-backend view", per_backend),
        _section("Scenarios: fleet aggregates", per_fleet),
    ]
    return sections, specs


def _run_sensitivity(duration: float, jobs: int, dispatch=None):
    half = duration / 2.0
    sections = [
        _section(
            "Sensitivity: cluster size vs k",
            sensitivity.run_cluster_size_vs_k(
                duration=half, jobs=jobs, dispatch=dispatch
            ),
        ),
        _section(
            "Sensitivity: invalidation loss sweep",
            sensitivity.run_loss_sweep(duration=half, jobs=jobs, dispatch=dispatch),
        ),
        _section(
            "Sensitivity: update pressure sweep",
            sensitivity.run_update_pressure_sweep(
                duration=half, jobs=jobs, dispatch=dispatch
            ),
        ),
    ]
    return sections, [
        sensitivity.cluster_size_vs_k_spec(duration=half),
        sensitivity.loss_spec(duration=half),
        sensitivity.update_pressure_spec(duration=half),
    ]


EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7ab": _run_fig7ab,
    "fig7c": _run_fig7c,
    "fig7d": _run_fig7d,
    "fig8": _run_fig8,
    "theorem1": _run_theorem1,
    "sensitivity": _run_sensitivity,
    "scenario": _run_scenario,
}


def _run_bench_command(args, parser: argparse.ArgumentParser) -> int:
    """The ``bench`` command: run the tracked perf suite (see repro.bench)."""
    import json

    from repro.bench import compare_payloads, run_suite

    try:
        payload = run_suite(scale=args.bench_scale)
    except ValueError as exc:
        parser.error(str(exc))
    results = payload["results"]
    rows = [
        {
            "probe": "column_throughput",
            "metric": "events/sec",
            "value": round(results["column_throughput"]["events_per_sec"], 1),
        },
        *(
            {
                "probe": f"sgt @{entry['history_size']} updates",
                "metric": "checks/sec",
                "value": round(entry["checks_per_sec"], 1),
            }
            for entry in results["sgt_checks"]["by_size"]
        ),
        {
            "probe": "deplist_merge (k=5)",
            "metric": "merges/sec",
            "value": round(results["deplist_merge"]["merges_per_sec"], 1),
        },
        {
            "probe": "scenario (2 backends)",
            "metric": "txns/wall-sec",
            "value": round(results["scenario"]["transactions_per_wall_sec"], 1),
        },
    ]
    print_table(rows, title=f"Bench suite (scale={args.bench_scale:g})")
    if args.json_path:
        # Written before the baseline diff: a completed suite run is never
        # lost to a failed comparison (e.g. a scale mismatch).
        write_json(args.json_path, payload)
        print(f"[wrote {args.json_path}]")
    if args.baseline is not None:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        try:
            drift = compare_payloads(payload, baseline)
        except ValueError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 1
        print()
        print_table(drift, title=f"Drift vs {args.baseline} (report-only)")
        slower = [row["metric"] for row in drift if row["regressed"]]
        if slower:
            print(f"[report-only: slower than baseline tolerance on {slower}]")
    return 0


def _run_worker_command(args, parser: argparse.ArgumentParser) -> int:
    """The ``worker`` command: serve dispatch coordinators until idle.

    Reconnects after each completed sweep (multi-sweep experiments like
    ``sensitivity`` serve several coordinators back to back); exits once no
    coordinator appears within ``--connect-timeout`` seconds.  Exit code 0
    if at least one sweep was served before going idle, 1 for a worker that
    never served anything or was refused by a coordinator (e.g. a protocol
    version mismatch) — refusals are real failures however many sweeps
    came before.
    """
    host, port = args.connect
    faults = args.fault
    runs = 0
    while True:
        try:
            stats = run_worker(
                host,
                port,
                name=args.worker_name,
                faults=faults,
                connect_timeout=args.connect_timeout,
            )
        except CoordinatorUnreachable as exc:
            if runs:
                print(f"[worker idle, served {runs} sweep(s); exiting]")
                return 0
            print(f"worker: {exc}", file=sys.stderr)
            return 1
        except DispatchError as exc:
            # Reachable but refused (handshake/version failure): always loud.
            print(f"worker: {exc}", file=sys.stderr)
            return 1
        runs += 1
        print(
            f"[sweep {runs}: {stats.points_executed} points in "
            f"{stats.chunks_received} chunk(s), {stats.duplicate_results} "
            f"duplicate(s), {stats.heartbeats} heartbeat(s)"
            + (", disconnected]" if stats.disconnected else "]")
        )


def _with_profile(path: str | None, work):
    """Run ``work()`` — under :mod:`cProfile` when ``--profile`` was given."""
    if path is None:
        return work()
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return work()
    finally:
        profiler.disable()
        profiler.dump_stats(path)
        print(
            f"[profile written to {path}; inspect with "
            f"'python -m pstats {path}' or snakeviz]"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the T-Cache paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all", "worker", "bench"],
        help="which figure to regenerate, 'worker' to serve a dispatch "
        "coordinator, or 'bench' to run the tracked performance suite",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="measured simulated seconds per run (default: 30, the paper "
        "scale; in `scenario --spec` replays the default is the recorded "
        "duration)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help="worker processes for sweep columns (default: all CPUs; 1 = serial)",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=3,
        help="edge count for the scenario experiment's loss-ramp fleet "
        "(default: 3; ignored by the figure experiments)",
    )
    parser.add_argument(
        "--backends",
        type=int,
        default=2,
        help="backend count for the scenario experiment's routed-tier "
        "fleets (default: 2; 1 disables them; ignored by the figure "
        "experiments)",
    )
    parser.add_argument(
        "--spec",
        dest="spec_path",
        metavar="PATH",
        default=None,
        help="replay one scenario from a ScenarioSpec.as_dict JSON file "
        "(scenario experiment only; overrides --edges/--backends)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        metavar="PATH",
        default=None,
        help="write the full (unsampled) rows plus run metadata as JSON "
        "(for bench: the repro.bench payload)",
    )
    parser.add_argument(
        "--profile",
        dest="profile_path",
        metavar="PATH",
        default=None,
        help="run under cProfile and dump the stats file here",
    )
    bench_group = parser.add_argument_group("performance suite (see repro.bench)")
    bench_group.add_argument(
        "--bench-scale",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="bench command only: scale the suite's durations and history "
        "sizes (default: 1.0, the committed-baseline scale)",
    )
    bench_group.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="bench command only: recorded BENCH_*.json to diff against "
        "(report-only; exits 0 regardless of drift)",
    )

    def _hostport_arg(text: str) -> tuple[str, int]:
        try:
            return parse_hostport(text)
        except ConfigurationError as exc:
            raise argparse.ArgumentTypeError(str(exc))

    def _fault_arg(text: str) -> FaultPlan:
        try:
            return FaultPlan.parse(text)
        except ConfigurationError as exc:
            raise argparse.ArgumentTypeError(str(exc))

    dispatch_group = parser.add_argument_group(
        "distributed sweeps (see repro.dispatch)"
    )
    dispatch_group.add_argument(
        "--dispatch",
        type=_hostport_arg,
        metavar="HOST:PORT",
        default=None,
        help="serve the experiment's sweeps to remote workers at this "
        "address instead of running a local pool (results are identical)",
    )
    dispatch_group.add_argument(
        "--connect",
        type=_hostport_arg,
        metavar="HOST:PORT",
        default=None,
        help="worker command only: the coordinator to pull work from",
    )
    dispatch_group.add_argument(
        "--connect-timeout",
        type=float,
        metavar="SECONDS",
        default=30.0,
        help="worker: how long to wait for a coordinator before giving up "
        "(default: 30)",
    )
    dispatch_group.add_argument(
        "--worker-name",
        metavar="NAME",
        default=None,
        help="worker: name reported to the coordinator (default: worker-PID)",
    )
    dispatch_group.add_argument(
        "--fault",
        type=_fault_arg,
        metavar="KIND:N[:SECS]",
        default=None,
        help="worker failure drill: crash:N (die hard after N points), "
        "stall:N:SECS (go silent mid-run), disconnect:N",
    )
    args = parser.parse_args(argv)
    if args.experiment != "bench":
        # Bench-only flags fail loudly on every other command, including
        # worker — a silently dropped flag looks like a reduced-scale run.
        if args.baseline is not None:
            parser.error("--baseline only applies to the bench command")
        if args.bench_scale != 1.0:
            parser.error("--bench-scale only applies to the bench command")
    if args.experiment == "worker":
        if args.connect is None:
            parser.error("worker requires --connect HOST:PORT")
        if args.dispatch is not None:
            parser.error("--dispatch belongs to the coordinator side, not worker")
        return _with_profile(
            args.profile_path, lambda: _run_worker_command(args, parser)
        )
    if args.connect is not None:
        parser.error("--connect only applies to the worker command")
    if args.fault is not None:
        parser.error("--fault only applies to the worker command")
    if args.experiment == "bench":
        if args.dispatch is not None:
            parser.error("the bench suite runs locally; --dispatch is not supported")
        if args.baseline is not None and not os.path.isfile(args.baseline):
            parser.error(f"--baseline: no such file: {args.baseline}")
        return _with_profile(
            args.profile_path, lambda: _run_bench_command(args, parser)
        )
    if args.dispatch is not None and args.dispatch[1] == 0:
        # Port 0 binds an OS-chosen port nobody is told about; it is only
        # useful programmatically, where Coordinator.address can be read.
        parser.error("--dispatch needs an explicit port (port 0 is ephemeral)")
    dispatch = (
        None
        if args.dispatch is None
        else DispatchSpec(host=args.dispatch[0], port=args.dispatch[1])
    )
    jobs = resolve_jobs(args.jobs)
    duration = 30.0 if args.duration is None else args.duration
    if args.edges < 1:
        parser.error(f"--edges: need at least one edge, got {args.edges}")
    if args.backends < 1:
        parser.error(
            f"--backends: need at least one backend, got {args.backends}"
        )
    if args.spec_path is not None:
        if args.experiment != "scenario":
            parser.error("--spec only applies to the scenario experiment")
        if not os.path.isfile(args.spec_path):
            parser.error(f"--spec: no such file: {args.spec_path}")
    if args.json_path:
        # Fail before the sweeps run, not after minutes of simulation.
        if os.path.isdir(args.json_path):
            parser.error(f"--json: path is a directory: {args.json_path}")
        directory = os.path.dirname(os.path.abspath(args.json_path))
        if not os.path.isdir(directory):
            parser.error(f"--json: directory does not exist: {directory}")
        if not os.access(directory, os.W_OK):
            parser.error(f"--json: directory is not writable: {directory}")

    selected = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if dispatch is not None:
        print(
            f"[dispatch: serving sweeps at {dispatch.host}:{dispatch.port} — "
            f"start workers with 'python -m repro.experiments worker "
            f"--connect <this-host>:{dispatch.port}']"
        )
    payloads = []

    def _run_selected() -> None:
        nonlocal duration
        for name in selected:
            start = time.perf_counter()
            if name == "scenario":
                sections, specs = EXPERIMENTS[name](
                    duration,
                    jobs,
                    dispatch=dispatch,
                    edges=args.edges,
                    backends=args.backends,
                    spec_path=args.spec_path,
                    spec_duration=args.duration,
                )
                if args.spec_path is not None and args.duration is None:
                    # The replay honoured the recorded duration; make the
                    # artifact metadata report what was actually simulated.
                    duration = specs[0].points[0].scenario.duration
            else:
                sections, specs = EXPERIMENTS[name](duration, jobs, dispatch=dispatch)
            elapsed = time.perf_counter() - start
            for section in sections:
                stride = section.get("stride", 1)
                print_table(section["rows"][::stride], title=section["title"])
            print(f"[{name} done in {elapsed:.1f}s]\n")
            payloads.append(
                experiment_payload(
                    name,
                    sections,
                    wall_clock_seconds=elapsed,
                    sweep_specs=[spec_artifact(spec) for spec in specs],
                )
            )

    _with_profile(args.profile_path, _run_selected)

    if args.json_path:
        write_json(
            args.json_path,
            {
                "schema": ARTIFACT_SCHEMA,
                "duration": duration,
                "jobs": jobs,
                "experiments": payloads,
            },
        )
        print(f"[wrote {args.json_path}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
