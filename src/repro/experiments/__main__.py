"""Command-line entry point for the paper's experiments.

Run any figure's sweep and print the series it plots::

    python -m repro.experiments fig3
    python -m repro.experiments fig7c --duration 20
    python -m repro.experiments all --duration 15

Figure ids: fig3, fig4, fig5, fig6, fig7ab, fig7c, fig7d, fig8, theorem1.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig3_alpha,
    fig4_convergence,
    fig5_drift,
    fig6_strategies,
    fig7_realistic,
    fig8_strategies,
    theorem1,
)
from repro.experiments.realistic import topology_rows
from repro.experiments.report import print_table


def _run_fig3(duration: float) -> None:
    print_table(
        fig3_alpha.run(duration=duration),
        title="Figure 3: detected inconsistencies vs Pareto alpha",
    )


def _run_fig4(duration: float) -> None:
    scale = duration / 30.0
    rows = fig4_convergence.run(duration=160.0 * scale, switch_time=58.0 * scale)
    stride = max(1, len(rows) // 24)
    print_table(rows[::stride], title="Figure 4: convergence (sampled windows)")
    summaries = fig4_convergence.phase_summaries(rows, switch_time=58.0 * scale)
    print_table(
        [
            {"phase": "before", **summaries["before"]},
            {"phase": "after", **summaries["after"]},
        ],
        title="phase means [txn/s]",
    )


def _run_fig5(duration: float) -> None:
    scale = duration / 30.0
    rows = fig5_drift.run(
        duration=800.0 * scale, shift_interval=180.0 * scale, window=5.0 * scale
    )
    stride = max(1, len(rows) // 32)
    print_table(rows[::stride], title="Figure 5: drifting clusters (sampled)")
    print_table(
        [fig5_drift.shift_spike_profile(rows, 180.0 * scale)],
        title="spike profile",
    )


def _run_fig6(duration: float) -> None:
    print_table(
        fig6_strategies.run(duration=duration),
        title="Figure 6: strategies (synthetic, alpha=1)",
    )


def _run_fig7ab(duration: float) -> None:
    print_table(topology_rows(), title="Figure 7ab: topology statistics")


def _run_fig7c(duration: float) -> None:
    print_table(
        fig7_realistic.run_deplist_sweep(duration=duration),
        title="Figure 7c: dependency-list sweep",
    )


def _run_fig7d(duration: float) -> None:
    print_table(
        fig7_realistic.run_ttl_sweep(duration=duration),
        title="Figure 7d: TTL sweep",
    )


def _run_fig8(duration: float) -> None:
    print_table(
        fig8_strategies.run(duration=duration),
        title="Figure 8: strategies (realistic, k=3)",
    )


def _run_theorem1(duration: float) -> None:
    print_table(
        theorem1.run(duration=duration),
        title="Theorem 1: unbounded T-Cache",
    )


EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7ab": _run_fig7ab,
    "fig7c": _run_fig7c,
    "fig7d": _run_fig7d,
    "fig8": _run_fig8,
    "theorem1": _run_theorem1,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the figures of the T-Cache paper.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="measured simulated seconds per run (default: 30, the paper scale)",
    )
    args = parser.parse_args(argv)

    selected = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in selected:
        start = time.perf_counter()
        EXPERIMENTS[name](args.duration)
        print(f"[{name} done in {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
