"""Figure 3 — inconsistency detection as a function of the Pareto alpha.

"We vary the Pareto alpha parameter from 1/32 to 4. In this experiment we
are only interested in detection, so we choose the ABORT strategy. ... At
alpha = 1/32, the distribution is almost uniform across the object set, and
the inconsistency detection ratio is low — the dependency lists are too
small to hold all relevant information. At the other extreme, when
alpha = 4, the distribution is so spiked that almost all accesses of a
transaction are within a cluster, allowing for perfect inconsistency
detection."

Setup (§V-A): 2000 objects, clusters of 5, dependency lists bounded at 5.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import ColumnResult, run_column
from repro.experiments.sweep import SweepPoint, SweepSpec, derive_seed, run_sweep
from repro.workloads.synthetic import ParetoClusterWorkload

__all__ = ["DEFAULT_ALPHAS", "run", "run_point", "spec"]

#: Powers of two from 1/32 to 4, the paper's sweep range.
DEFAULT_ALPHAS: tuple[float, ...] = (
    1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0, 2.0, 4.0,
)


def base_config(seed: int = 11, duration: float = 30.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed,
        duration=duration,
        warmup=5.0,
        deplist_max=5,
        strategy=Strategy.ABORT,
    )


def spec(
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    *,
    seed: int = 11,
    duration: float = 30.0,
) -> SweepSpec:
    """The Figure 3 grid: one column per alpha, independently seeded."""
    config = base_config(seed=seed, duration=duration)
    return SweepSpec(
        name="fig3",
        description="detected inconsistencies vs Pareto alpha (§V-A)",
        root_seed=seed,
        points=[
            SweepPoint(
                label=f"alpha={alpha:g}",
                config=replace(config, seed=derive_seed(seed, index)),
                workload=ParetoClusterWorkload(
                    n_objects=2000, cluster_size=5, alpha=alpha
                ),
                params={"alpha": alpha},
            )
            for index, alpha in enumerate(alphas)
        ],
    )


def _row(alpha: float, result: ColumnResult) -> dict[str, float]:
    return {
        "alpha": alpha,
        "detected_inconsistencies_pct": 100.0 * result.detection_ratio,
        "inconsistency_ratio_pct": 100.0 * result.inconsistency_ratio,
        "abort_ratio_pct": 100.0 * result.abort_ratio,
        "committed": float(result.counts.committed),
    }


def run_point(alpha: float, config: ColumnConfig | None = None) -> dict[str, float]:
    """One sweep point: detection ratio at a given Pareto alpha."""
    config = config or base_config()
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=alpha)
    return _row(alpha, run_column(config, workload))


def run(
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    *,
    seed: int = 11,
    duration: float = 30.0,
    jobs: int | None = 1,
    dispatch=None,
) -> list[dict[str, float]]:
    """The full Figure 3 sweep; one row per alpha.

    Each point runs with an independently derived seed so the sweep is
    reproducible point-by-point and safe to fan out across ``jobs`` workers.
    """
    sweep = run_sweep(
        spec(alphas, seed=seed, duration=duration), jobs=jobs, dispatch=dispatch
    )
    return [
        _row(point.params["alpha"], result) for point, result in sweep.pairs()
    ]


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run(), title="Figure 3: detected inconsistencies vs Pareto alpha")
