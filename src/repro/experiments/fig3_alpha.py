"""Figure 3 — inconsistency detection as a function of the Pareto alpha.

"We vary the Pareto alpha parameter from 1/32 to 4. In this experiment we
are only interested in detection, so we choose the ABORT strategy. ... At
alpha = 1/32, the distribution is almost uniform across the object set, and
the inconsistency detection ratio is low — the dependency lists are too
small to hold all relevant information. At the other extreme, when
alpha = 4, the distribution is so spiked that almost all accesses of a
transaction are within a cluster, allowing for perfect inconsistency
detection."

Setup (§V-A): 2000 objects, clusters of 5, dependency lists bounded at 5.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import Strategy
from repro.experiments.config import ColumnConfig
from repro.experiments.runner import run_column
from repro.workloads.synthetic import ParetoClusterWorkload

__all__ = ["DEFAULT_ALPHAS", "run", "run_point"]

#: Powers of two from 1/32 to 4, the paper's sweep range.
DEFAULT_ALPHAS: tuple[float, ...] = (
    1 / 32, 1 / 16, 1 / 8, 1 / 4, 1 / 2, 1.0, 2.0, 4.0,
)


def base_config(seed: int = 11, duration: float = 30.0) -> ColumnConfig:
    return ColumnConfig(
        seed=seed,
        duration=duration,
        warmup=5.0,
        deplist_max=5,
        strategy=Strategy.ABORT,
    )


def run_point(alpha: float, config: ColumnConfig | None = None) -> dict[str, float]:
    """One sweep point: detection ratio at a given Pareto alpha."""
    config = config or base_config()
    workload = ParetoClusterWorkload(n_objects=2000, cluster_size=5, alpha=alpha)
    result = run_column(config, workload)
    return {
        "alpha": alpha,
        "detected_inconsistencies_pct": 100.0 * result.detection_ratio,
        "inconsistency_ratio_pct": 100.0 * result.inconsistency_ratio,
        "abort_ratio_pct": 100.0 * result.abort_ratio,
        "committed": float(result.counts.committed),
    }


def run(
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    *,
    seed: int = 11,
    duration: float = 30.0,
) -> list[dict[str, float]]:
    """The full Figure 3 sweep; one row per alpha.

    Each point runs with an independently derived seed so the sweep is
    reproducible point-by-point.
    """
    rows = []
    config = base_config(seed=seed, duration=duration)
    for index, alpha in enumerate(alphas):
        rows.append(run_point(alpha, replace(config, seed=seed + index)))
    return rows


if __name__ == "__main__":  # pragma: no cover - manual invocation
    from repro.experiments.report import print_table

    print_table(run(), title="Figure 3: detected inconsistencies vs Pareto alpha")
