"""Multi-edge scenario experiments for the CLI (``scenario`` experiment).

Runs the library fleets — a heterogeneous-loss fleet sized by ``--edges``,
the geo-skewed regions, the flash-crowd surge, and (with ``--backends >=
2``) the routed backend tiers (regional backends, hot-backend overload,
the region-failure drill and the capacity-planning grid) — as one sweep of
scenario points, then reports three views: per-edge rows (which edge hurts
and why), per-backend rows (which backend carries the load), and fleet
aggregates (what the whole deployment looks like).

``run_spec_file`` replays a single scenario from a JSON artifact
(``repro-experiments scenario --spec file.json``) — the round-trip partner
of :meth:`~repro.scenario.spec.ScenarioSpec.as_dict`.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.scenario.library import (
    capacity_planning_sweep,
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
    hot_backend_overload,
    region_failure_drill,
    regional_backends_scenario,
)
from repro.scenario.results import ScenarioResult
from repro.scenario.spec import ScenarioSpec

__all__ = [
    "spec",
    "run",
    "run_spec_file",
    "backend_rows",
    "edge_rows",
    "fleet_rows",
]


def spec(
    *,
    edges: int = 3,
    backends: int = 2,
    duration: float = 30.0,
    seed: int = 101,
) -> SweepSpec:
    """One sweep over the library fleets (scenario points).

    ``backends >= 2`` adds the routed-tier scenarios — regional backends
    and hot-backend overload (each sized by ``backends``), the
    region-failure drill, and the capacity-planning grid (load x1/x2 at 1
    and 2 shards, labels prefixed ``capacity/``); ``backends=1`` keeps the
    historical single-backend grid.
    """
    warmup = max(1.0, duration / 6.0)
    points = [
        SweepPoint(
            label="hetero-loss",
            scenario=heterogeneous_loss_fleet(
                edges=edges, duration=duration, warmup=warmup, seed=seed
            ),
            params={"edges": edges},
        ),
        SweepPoint(
            label="geo-skew",
            scenario=geo_skewed_scenario(
                duration=duration, warmup=warmup, seed=seed + 1
            ),
            params={"regions": 3},
        ),
        SweepPoint(
            label="flash-crowd",
            scenario=flash_crowd_scenario(
                duration=duration, warmup=warmup, seed=seed + 2
            ),
            params={"quiet_edges": 2},
        ),
    ]
    if backends >= 2:
        points.append(
            SweepPoint(
                label="regional-backends",
                scenario=regional_backends_scenario(
                    regions=backends,
                    edges_per_region=max(2, edges // backends),
                    duration=duration,
                    warmup=warmup,
                    seed=seed + 3,
                ),
                params={"backends": backends},
            )
        )
        points.append(
            SweepPoint(
                label="hot-backend",
                scenario=hot_backend_overload(
                    backends=backends,
                    duration=duration,
                    warmup=warmup,
                    seed=seed + 4,
                ),
                params={"backends": backends},
            )
        )
        points.append(
            SweepPoint(
                label="region-failure",
                scenario=region_failure_drill(
                    regions=max(2, backends),
                    duration=duration,
                    warmup=warmup,
                    seed=seed + 5,
                ),
                params={"regions": max(2, backends)},
            )
        )
        points.extend(
            replace(point, label=f"capacity/{point.label}")
            for point in capacity_planning_sweep(
                regions=backends,
                load_factors=(1.0, 2.0),
                shard_options=(1, 2),
                duration=duration,
                warmup=warmup,
                seed=seed + 6,
            ).points
        )
    return SweepSpec(
        name="scenarios",
        description=(
            "multi-edge topologies: loss ramp, geo skew, flash crowd"
            + (
                ", regional backends, hot backend, region failure, capacity grid"
                if backends >= 2
                else ""
            )
        ),
        root_seed=seed,
        points=points,
    )


def edge_rows(label: str, result: ScenarioResult) -> list[dict[str, object]]:
    """One row per edge: channel quality in, consistency metrics out."""
    rows = []
    for edge_spec, edge in result.pairs():
        rows.append(
            {
                "scenario": label,
                "edge": edge_spec.name,
                "backend": result.spec.placement[edge_spec.name],
                "loss_pct": round(100.0 * edge_spec.invalidation_loss, 1),
                "read_rate": edge_spec.read_rate,
                "update_rate": edge_spec.update_rate,
                "inconsistency_pct": round(100.0 * edge.inconsistency_ratio, 2),
                "detection_pct": round(100.0 * edge.detection_ratio, 1),
                "hit_pct": round(100.0 * edge.hit_ratio, 1),
                "db_reads_per_s": round(edge.db_access_rate, 1),
            }
        )
    return rows


def backend_rows(label: str, result: ScenarioResult) -> list[dict[str, object]]:
    """One row per backend: its share of the tier's load and staleness."""
    return [
        {
            "scenario": label,
            "backend": aggregate.name,
            "edges": len(aggregate.edges),
            "shards": result.spec.backend(aggregate.name).shards,
            "update_commits": aggregate.update_commits,
            "read_load_per_s": round(aggregate.read_load, 1),
            "invalidations_sent": aggregate.db_stats.invalidations_sent,
            "inconsistency_pct": round(100.0 * aggregate.inconsistency_ratio, 2),
            "detection_pct": round(100.0 * aggregate.detection_ratio, 1),
        }
        for aggregate in result.backends
    ]


def fleet_rows(label: str, result: ScenarioResult) -> list[dict[str, object]]:
    """One aggregate row per scenario: the tier's view of the fleet."""
    fleet = result.fleet
    return [
        {
            "scenario": label,
            "edges": len(result.spec),
            "backends": len(result.spec.backends),
            "inconsistency_pct": round(100.0 * fleet.inconsistency_ratio, 2),
            "detection_pct": round(100.0 * fleet.detection_ratio, 1),
            "hit_pct": round(100.0 * fleet.hit_ratio, 1),
            "backend_reads_per_s": round(fleet.backend_read_rate, 1),
            "update_commits": fleet.update_commits,
            "inconsistency_var": round(fleet.inconsistency_variance, 6),
            "hit_ratio_var": round(fleet.hit_ratio_variance, 6),
        }
    ]


def _views(
    pairs: list[tuple[str, ScenarioResult]],
) -> tuple[
    list[dict[str, object]], list[dict[str, object]], list[dict[str, object]]
]:
    per_edge: list[dict[str, object]] = []
    per_backend: list[dict[str, object]] = []
    per_fleet: list[dict[str, object]] = []
    for label, result in pairs:
        per_edge.extend(edge_rows(label, result))
        per_backend.extend(backend_rows(label, result))
        per_fleet.extend(fleet_rows(label, result))
    return per_edge, per_backend, per_fleet


def run(
    *,
    edges: int = 3,
    backends: int = 2,
    duration: float = 30.0,
    seed: int = 101,
    jobs: int | None = 1,
    dispatch=None,
) -> tuple[
    list[dict[str, object]], list[dict[str, object]], list[dict[str, object]]
]:
    """Run the scenario sweep; returns (per-edge, per-backend, fleet rows)."""
    sweep = run_sweep(
        spec(edges=edges, backends=backends, duration=duration, seed=seed),
        jobs=jobs,
        dispatch=dispatch,
    )
    return _views([(point.label, result) for point, result in sweep.pairs()])


def run_spec_file(
    path: str, *, duration: float | None = None, jobs: int | None = 1, dispatch=None
) -> tuple[
    SweepSpec,
    list[dict[str, object]],
    list[dict[str, object]],
    list[dict[str, object]],
]:
    """Replay one scenario from a JSON spec/artifact file.

    The file holds :meth:`ScenarioSpec.as_dict` output (also embedded in
    ``--json`` artifacts under ``sweep_specs[].columns[].scenario`` and in
    scenario results). ``duration`` optionally overrides the recorded
    duration. Returns the one-point sweep spec plus the three row views.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if duration is not None:
        payload = {**payload, "duration": duration}
    scenario = ScenarioSpec.from_dict(payload)
    sweep_spec = SweepSpec(
        name="scenario-replay",
        description=f"replay of {scenario.name!r} from {path}",
        root_seed=scenario.seed,
        points=[
            SweepPoint(
                label=scenario.name,
                scenario=scenario,
                params={"spec_file": path},
            )
        ],
    )
    sweep = run_sweep(sweep_spec, jobs=jobs, dispatch=dispatch)
    views = _views([(point.label, result) for point, result in sweep.pairs()])
    return (sweep_spec, *views)
