"""Multi-edge scenario experiments for the CLI (``scenario`` experiment).

Runs the library fleets — a heterogeneous-loss fleet sized by ``--edges``,
the geo-skewed regions, and the flash-crowd surge — as one sweep of scenario
points, then reports two views: per-edge rows (which edge hurts and why) and
fleet aggregates (what the whole deployment looks like from the backend).
"""

from __future__ import annotations

from repro.experiments.sweep import SweepPoint, SweepSpec, run_sweep
from repro.scenario.library import (
    flash_crowd_scenario,
    geo_skewed_scenario,
    heterogeneous_loss_fleet,
)
from repro.scenario.results import ScenarioResult

__all__ = ["spec", "run", "edge_rows", "fleet_rows"]


def spec(*, edges: int = 3, duration: float = 30.0, seed: int = 101) -> SweepSpec:
    """One sweep over the three library fleets (scenario points)."""
    warmup = max(1.0, duration / 6.0)
    return SweepSpec(
        name="scenarios",
        description="multi-edge topologies: loss ramp, geo skew, flash crowd",
        root_seed=seed,
        points=[
            SweepPoint(
                label="hetero-loss",
                scenario=heterogeneous_loss_fleet(
                    edges=edges, duration=duration, warmup=warmup, seed=seed
                ),
                params={"edges": edges},
            ),
            SweepPoint(
                label="geo-skew",
                scenario=geo_skewed_scenario(
                    duration=duration, warmup=warmup, seed=seed + 1
                ),
                params={"regions": 3},
            ),
            SweepPoint(
                label="flash-crowd",
                scenario=flash_crowd_scenario(
                    duration=duration, warmup=warmup, seed=seed + 2
                ),
                params={"quiet_edges": 2},
            ),
        ],
    )


def edge_rows(label: str, result: ScenarioResult) -> list[dict[str, object]]:
    """One row per edge: channel quality in, consistency metrics out."""
    rows = []
    for edge_spec, edge in result.pairs():
        rows.append(
            {
                "scenario": label,
                "edge": edge_spec.name,
                "loss_pct": round(100.0 * edge_spec.invalidation_loss, 1),
                "read_rate": edge_spec.read_rate,
                "update_rate": edge_spec.update_rate,
                "inconsistency_pct": round(100.0 * edge.inconsistency_ratio, 2),
                "detection_pct": round(100.0 * edge.detection_ratio, 1),
                "hit_pct": round(100.0 * edge.hit_ratio, 1),
                "db_reads_per_s": round(edge.db_access_rate, 1),
            }
        )
    return rows


def fleet_rows(label: str, result: ScenarioResult) -> list[dict[str, object]]:
    """One aggregate row per scenario: the backend's view of the fleet."""
    fleet = result.fleet
    return [
        {
            "scenario": label,
            "edges": len(result.spec),
            "inconsistency_pct": round(100.0 * fleet.inconsistency_ratio, 2),
            "detection_pct": round(100.0 * fleet.detection_ratio, 1),
            "hit_pct": round(100.0 * fleet.hit_ratio, 1),
            "backend_reads_per_s": round(fleet.backend_read_rate, 1),
            "update_commits": fleet.update_commits,
            "inconsistency_var": round(fleet.inconsistency_variance, 6),
            "hit_ratio_var": round(fleet.hit_ratio_variance, 6),
        }
    ]


def run(
    *,
    edges: int = 3,
    duration: float = 30.0,
    seed: int = 101,
    jobs: int | None = 1,
) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
    """Run the scenario sweep; returns (per-edge rows, fleet rows)."""
    sweep = run_sweep(spec(edges=edges, duration=duration, seed=seed), jobs=jobs)
    per_edge: list[dict[str, object]] = []
    per_fleet: list[dict[str, object]] = []
    for point, result in sweep.pairs():
        per_edge.extend(edge_rows(point.label, result))
        per_fleet.extend(fleet_rows(point.label, result))
    return per_edge, per_fleet
