"""Plain-text and JSON rendering of experiment results.

The benchmarks and examples print the same rows the paper's figures plot;
this module renders them as aligned tables so runs are readable in CI logs
and terminal sessions, and serialises them as JSON artifacts so CI and the
benchmark harness can consume machine-readable results.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from enum import Enum
from typing import Iterable, Mapping, Sequence

__all__ = [
    "experiment_payload",
    "format_percent",
    "format_table",
    "json_safe",
    "normalized_artifact",
    "print_table",
    "write_json",
]

#: Version tag of the ``--json`` artifact layout.
ARTIFACT_SCHEMA = "repro.experiments/v1"


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``columns`` selects and orders the rendered keys (default: keys of the
    first row in insertion order). Floats are shown with four significant
    digits; everything else via ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    ]
    parts: list[str] = []
    if title:
        parts.append(title)
    parts.extend([header, separator, *body])
    return "\n".join(parts)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> None:
    print(format_table(rows, columns, title=title))


def merge_series(series: Iterable[Mapping[str, float]], keys: Sequence[str]):
    """Project a time series onto selected keys (utility for examples)."""
    return [{key: row.get(key, 0.0) for key in keys} for row in series]


def experiment_payload(
    experiment: str,
    sections: Sequence[Mapping[str, object]],
    *,
    wall_clock_seconds: float,
    sweep_specs: Sequence[Mapping[str, object]] = (),
) -> dict[str, object]:
    """One experiment's JSON record: its printed sections plus run metadata.

    Each section is ``{"title": ..., "rows": [...]}`` — the same rows
    :func:`print_table` renders, unsampled.  ``sweep_specs`` carries the
    per-column configs of the grids that produced the rows (see
    :func:`repro.experiments.sweep.spec_artifact`), so an artifact is enough
    to re-run any column.
    """
    return {
        "experiment": experiment,
        "wall_clock_seconds": wall_clock_seconds,
        "sweep_specs": list(sweep_specs),
        "sections": [
            {"title": section["title"], "rows": section["rows"]}
            for section in sections
        ],
    }


#: Keys stripped by :func:`normalized_artifact` at any nesting depth: the
#: run-environment metadata that legitimately differs between two executions
#: of the same seeded spec.  ``telemetry``/``trace`` are included so a traced
#: artifact normalizes to exactly its untraced twin.
_ENVIRONMENT_KEYS = frozenset(
    {"jobs", "wall_clock_seconds", "telemetry", "trace"}
)


def _strip_environment(value: object) -> object:
    if isinstance(value, Mapping):
        return {
            key: _strip_environment(item)
            for key, item in value.items()
            if key not in _ENVIRONMENT_KEYS
        }
    if isinstance(value, (list, tuple)):
        return [_strip_environment(item) for item in value]
    return value


def normalized_artifact(artifact: object) -> str:
    """Canonical JSON of an artifact minus its run-environment fields.

    The single definition of "byte-identical modulo wall clock": two runs of
    the same seeded spec — serial, ``jobs=N``, dispatched, fleet, traced or
    untraced — must normalize to the same string.  Accepts a payload dict
    (or any JSON value) or an object with ``to_artifact()``; strips ``jobs``,
    ``wall_clock_seconds`` and the telemetry fields at every nesting depth,
    then serialises with sorted keys and fixed separators.
    """
    to_artifact = getattr(artifact, "to_artifact", None)
    if callable(to_artifact):
        artifact = to_artifact()
    return json.dumps(
        json_safe(_strip_environment(artifact)),
        sort_keys=True,
        separators=(",", ":"),
    )


def json_safe(value: object) -> object:
    """Recursively coerce a payload to JSON-serialisable types.

    Enums serialise by name, dataclasses by field dict; containers recurse.
    Anything already serialisable passes through unchanged.
    """
    if isinstance(value, Enum):
        return value.name
    if is_dataclass(value) and not isinstance(value, type):
        return json_safe(asdict(value))
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(item) for item in value]
    return value


def _json_default(value: object) -> object:
    coerced = json_safe(value)
    return str(value) if coerced is value else coerced


def write_json(path: str, payload: Mapping[str, object]) -> None:
    """Write a JSON artifact; enums and other exotic cells degrade safely."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, default=_json_default)
        handle.write("\n")
