"""Plain-text rendering of experiment results.

The benchmarks and examples print the same rows the paper's figures plot;
this module renders them as aligned tables so runs are readable in CI logs
and terminal sessions.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_percent", "print_table"]


def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    ``columns`` selects and orders the rendered keys (default: keys of the
    first row in insertion order). Floats are shown with four significant
    digits; everything else via ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in table))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in table
    ]
    parts: list[str] = []
    if title:
        parts.append(title)
    parts.extend([header, separator, *body])
    return "\n".join(parts)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> None:
    print(format_table(rows, columns, title=title))


def merge_series(series: Iterable[Mapping[str, float]], keys: Sequence[str]):
    """Project a time series onto selected keys (utility for examples)."""
    return [{key: row.get(key, 0.0) for key in keys} for row in series]
