"""Causally consistent edge caching with client migration (CausalMesh-style).

Each backend gets one :class:`CausalService` shared by every edge reading
from it. Client sessions are modelled as equivalence classes of transaction
ids (``txn_id % sessions``); because the mapping ignores which edge issued
the id, a session's reads land on different edges over its lifetime — that
is the client-migration scenario CausalMesh targets, where a client's
causal context must follow it from edge to edge.

Per session the service keeps a *causal floor*: for every key, the highest
version the session has depended on (either by reading it or by reading a
value whose dependency list references it). A cached entry older than the
session's floor for its key would violate causality — "read your
dependencies" — so the cache refuses to serve it and reads through to the
backend instead (counted in ``causal_rejections`` and, as a backend round
trip, in ``stats.retries``). The protocol never aborts: causal consistency
is enforced by refreshing, not refusing, so its cost surfaces as backend
load and read latency rather than abort rate.

``served_below_floor`` is a self-check counter: it records any serve whose
version is still below the pre-read floor (impossible while the backend
returns the newest committed version, since floors only ever reference
committed versions). The property suite asserts it stays zero.
"""

from __future__ import annotations

from repro.cache.base import CacheServer
from repro.errors import ConfigurationError
from repro.types import (
    Key,
    ReadOnlyTransactionRecord,
    TxnId,
    Version,
    VersionedValue,
)

__all__ = ["CausalService", "CausalCache", "DEFAULT_SESSIONS"]

#: Number of virtual client sessions per backend. Transaction ids from all
#: edges fold into this many sessions, so most sessions are served by more
#: than one edge over a run (migration).
DEFAULT_SESSIONS = 32


class CausalService:
    """Per-backend session registry holding each session's causal floor."""

    def __init__(self, sim, database, *, sessions: int = DEFAULT_SESSIONS) -> None:
        if sessions < 1:
            raise ConfigurationError(f"sessions must be >= 1, got {sessions}")
        self._sim = sim
        self.sessions = sessions
        self.namespace: str | None = getattr(database, "namespace", None)
        #: ``floors[session][key]`` — the minimum version of ``key`` the
        #: session may still be served.
        self.floors: list[dict[Key, Version]] = [{} for _ in range(sessions)]
        self._last_edge: dict[int, str] = {}
        #: Sessions observed moving between edges mid-run.
        self.migrations = 0

    def session_for(self, txn_id: TxnId) -> int:
        return txn_id % self.sessions

    def observe_edge(self, session: int, edge_name: str) -> None:
        """Track which edge served the session last, counting migrations."""
        previous = self._last_edge.get(session)
        if previous is not None and previous != edge_name:
            self.migrations += 1
        self._last_edge[session] = edge_name


class CausalCache(CacheServer):
    """Edge cache that never serves a read below its session's floor."""

    def __init__(self, sim, backend, *, service: CausalService, capacity=None, name="causal-cache"):
        super().__init__(sim, backend, capacity=capacity, name=name)
        self._service = service
        #: Cached entries refused because they sat below the causal floor.
        self.causal_rejections = 0
        #: Serves that would still have violated the floor after refresh;
        #: asserted zero by the property suite.
        self.served_below_floor = 0

    # ------------------------------------------------------------------
    # Consistency hook
    # ------------------------------------------------------------------

    def _check_read(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        entry: VersionedValue,
    ) -> tuple[VersionedValue, bool]:
        service = self._service
        session = service.session_for(txn_id)
        service.observe_edge(session, self.name)
        floor = service.floors[session]
        key = entry.key
        required = floor.get(key, 0)
        retried = False
        if entry.version < required:
            self.causal_rejections += 1
            tracer = self._sim._tracer
            if tracer is not None and tracer.wants("protocol"):
                tracer.emit(
                    self._sim.now,
                    "protocol",
                    "floor_refuse",
                    {
                        "cache": self.name,
                        "session": session,
                        "key": key,
                        "cached_version": entry.version,
                        "floor": required,
                    },
                )
                tracer.metrics.count("protocol.floor_refusals")
            entry = self._read_through(key)
            retried = True
        if entry.version < required:  # self-check; must be unreachable
            self.served_below_floor += 1
        # Fold the serve and its dependency list into the session's floor:
        # everything this value causally depends on is now part of the
        # session's history, wherever the session reads next.
        if entry.version > required:
            floor[key] = entry.version
        for dep in entry.deps:
            if dep.version > floor.get(dep.key, 0):
                floor[dep.key] = dep.version
        return entry, retried

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _read_through(self, key: Key) -> VersionedValue:
        self.stats.retries += 1
        entry = self._backend.read_entry(key)
        self.storage.put(entry, self._sim.now)
        return entry
