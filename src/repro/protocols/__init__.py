"""Pluggable edge-consistency protocols, raced in the scenario harness.

The registry (:mod:`repro.protocols.registry`) resolves a protocol name
from an :class:`~repro.scenario.spec.EdgeSpec` to an edge-side cache
constructor plus optional per-backend service, making alternative
consistency designs first-class competitors of the paper's detector in
the same scenarios, sweeps, fleet dispatch, and reports. See the README's
"Protocol zoo" section for the registry API and the
``repro-experiments protocol-race`` experiment that ranks the built-ins on
inconsistency rate vs read latency vs backend load.
"""

from repro.protocols.builtin import register_builtins
from repro.protocols.causal import CausalCache, CausalService
from repro.protocols.locking import LockCoherentCache, LockingService
from repro.protocols.registry import (
    ProtocolSpec,
    get_protocol,
    protocol_for_edge,
    protocol_names,
    register_protocol,
)
from repro.protocols.verified import VerifiedReadCache, VerifiedReadService

register_builtins()

__all__ = [
    "CausalCache",
    "CausalService",
    "LockCoherentCache",
    "LockingService",
    "ProtocolSpec",
    "VerifiedReadCache",
    "VerifiedReadService",
    "get_protocol",
    "protocol_for_edge",
    "protocol_names",
    "register_protocol",
]
