"""Verified reads: backend-signed version proofs at the edge (TransEdge-style).

TransEdge's threat model treats edges as untrusted: a client only accepts a
read if it carries a proof, signed by the backend, that the (key, version)
pair is genuine and recent. This module reproduces that shape inside the
simulator using the same HMAC plumbing idiom as the fleet's frame auth
(:mod:`repro.dispatch.auth`): a domain-tagged, NUL-joined message MAC'd
with SHA-256 and verified with :func:`hmac.compare_digest`.

Each backend gets one :class:`VerifiedReadService` acting as the signer;
its secret is derived deterministically from the backend's version
namespace so distributed runs reproduce serial runs bit-for-bit (there is
no real adversary inside the simulation — what the protocol pays for is
measured instead: every proof older than the freshness bound forces a
backend round trip to re-sign, which shows up as ``stats.retries`` /
backend load in the race artifact).

The cache keeps, per key, the proof for the cached version. A read is
served only when (a) the proof covers exactly the served version, (b) the
proof is younger than the freshness bound, and (c) the MAC verifies. A
failed bound or version match triggers a refetch-and-resign
(``proof_refreshes``); an actual MAC failure (``signature_failures``) is a
wiring bug and the unit suite asserts it stays zero.
"""

from __future__ import annotations

import hmac

from repro.cache.base import CacheServer
from repro.db.invalidation import InvalidationRecord
from repro.errors import ConfigurationError
from repro.types import (
    Key,
    ReadOnlyTransactionRecord,
    TxnId,
    Version,
    VersionedValue,
)

__all__ = ["VerifiedReadService", "VerifiedReadCache", "DEFAULT_FRESHNESS"]

#: Seconds a proof stays valid when the edge declares no ``ttl``.
DEFAULT_FRESHNESS = 0.5

#: Domain tag, mirroring ``repro.dispatch.auth``'s ``repro-fleet-v1``.
_SIGNATURE_DOMAIN = b"repro-verified-v1"


def _message(key: Key, version: Version, signed_at: float) -> bytes:
    # NUL-joined like dispatch.auth._message: none of the fields can contain
    # NUL once stringified, so the encoding is unambiguous.
    return b"\x00".join(
        (_SIGNATURE_DOMAIN, str(key).encode(), str(version).encode(), repr(signed_at).encode())
    )


class VerifiedReadService:
    """Per-backend signer issuing version proofs to its edges."""

    def __init__(self, sim, database) -> None:
        self._sim = sim
        self.namespace: str | None = getattr(database, "namespace", None)
        # Deterministic per-namespace secret: the simulation has no real
        # adversary, and a derived secret keeps fleet runs byte-identical.
        self._secret = f"repro-verified/{self.namespace or 'db'}".encode()
        #: Proofs issued, i.e. signing load on the backend.
        self.signatures_issued = 0

    def sign(self, key: Key, version: Version, signed_at: float) -> str:
        self.signatures_issued += 1
        return self._mac(key, version, signed_at)

    def verify(self, key: Key, version: Version, signed_at: float, mac: object) -> bool:
        if not isinstance(mac, str):
            return False
        return hmac.compare_digest(self._mac(key, version, signed_at), mac)

    def _mac(self, key: Key, version: Version, signed_at: float) -> str:
        return hmac.new(self._secret, _message(key, version, signed_at), "sha256").hexdigest()


class VerifiedReadCache(CacheServer):
    """Edge cache that refuses to serve a version without a live proof."""

    def __init__(
        self,
        sim,
        backend,
        *,
        service: VerifiedReadService,
        freshness: float = DEFAULT_FRESHNESS,
        capacity=None,
        name="verified-cache",
    ):
        if freshness <= 0:
            raise ConfigurationError(f"freshness must be positive, got {freshness}")
        super().__init__(sim, backend, capacity=capacity, name=name)
        self._service = service
        self.freshness = freshness
        #: key -> (version, signed_at, mac) for the cached entry.
        self._proofs: dict[Key, tuple[Version, float, str]] = {}
        #: Serves that needed a refetch-and-resign round trip.
        self.proof_refreshes = 0
        #: Proof MACs verified before serving.
        self.signatures_verified = 0
        #: MACs that failed verification — a wiring bug if ever nonzero.
        self.signature_failures = 0

    # ------------------------------------------------------------------
    # Consistency hook
    # ------------------------------------------------------------------

    def _check_read(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        entry: VersionedValue,
    ) -> tuple[VersionedValue, bool]:
        key = entry.key
        now = self._sim.now
        proof = self._proofs.get(key)
        retried = False
        if (
            proof is None
            or proof[0] != entry.version
            or now - proof[1] >= self.freshness
        ):
            # Stale or missing proof: refetch the authoritative version and
            # have the backend sign it (one round trip covers both).
            self.proof_refreshes += 1
            tracer = self._sim._tracer
            if tracer is not None and tracer.wants("protocol"):
                tracer.emit(
                    now,
                    "protocol",
                    "proof_refresh",
                    {
                        "cache": self.name,
                        "key": key,
                        "reason": "missing"
                        if proof is None
                        else ("version" if proof[0] != entry.version else "expired"),
                    },
                )
                tracer.metrics.count("protocol.proof_refreshes")
            self.stats.retries += 1
            entry = self._backend.read_entry(key)
            self.storage.put(entry, now)
            proof = self._issue_proof(entry, now)
            retried = True
        version, signed_at, mac = proof
        self.signatures_verified += 1
        if not self._service.verify(key, version, signed_at, mac):
            self.signature_failures += 1
            tracer = self._sim._tracer
            if tracer is not None and tracer.wants("protocol"):
                tracer.emit(
                    now,
                    "protocol",
                    "proof_verify_fail",
                    {"cache": self.name, "key": key, "version": version},
                )
                tracer.metrics.count("protocol.proof_verify_failures")
        return entry, retried

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _issue_proof(self, entry: VersionedValue, signed_at: float) -> tuple[Version, float, str]:
        proof = (
            entry.version,
            signed_at,
            self._service.sign(entry.key, entry.version, signed_at),
        )
        self._proofs[entry.key] = proof
        return proof

    def _fetch(self, key: Key) -> VersionedValue:
        entry = super()._fetch(key)
        # A miss is served straight from the backend; sign it on the way in.
        self._issue_proof(entry, self._sim.now)
        return entry

    def handle_invalidation(self, record: InvalidationRecord) -> None:
        super().handle_invalidation(record)
        proof = self._proofs.get(record.key)
        if proof is not None and proof[0] < record.version:
            del self._proofs[record.key]
