"""Pessimistic lock-based coherence: the zero-inconsistency bound.

The paper's detector trades a small inconsistency rate for cache-local
latency (§V). This protocol is the opposite corner of that trade-off,
implemented over the existing wound-wait :class:`~repro.db.locks.LockManager`:

* every edge sharing a backend shares one :class:`LockingService`, whose
  lock manager spans all of that backend's readers;
* a read-only transaction holds a SHARED lock on every key it has read
  until it commits, and every first-read-per-timestep is validated against
  the backend (a real round trip, counted in ``stats.retries`` — this is
  the latency cost the race experiment measures);
* committed updates acquire a transient EXCLUSIVE lock per written key with
  an older (always-winning) wound-wait age, so every in-flight reader
  holding that key SHARED is wounded and aborts at its next read.

A committed read-only transaction therefore observed, for every key, the
newest committed version at read time, and no key it read was overwritten
before it committed — its whole read set is the database state at commit
time, i.e. it is serializable. The property suite asserts the consequence:
zero recorded inconsistencies, always (``zero_inconsistency=True`` in the
registry).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cache.base import CacheServer
from repro.db.locks import LockManager, LockMode
from repro.errors import TransactionAborted
from repro.types import (
    CommittedTransaction,
    Key,
    ReadOnlyTransactionRecord,
    TransactionOutcome,
    TxnId,
    VersionedValue,
)

__all__ = ["LockingService", "LockCoherentCache"]


class LockingService:
    """Per-backend lock authority shared by every edge on that backend.

    Writer commits are observed through the database's commit listener and
    replayed as transient EXCLUSIVE acquisitions. Writer pseudo-transactions
    use negative ids and strictly decreasing negative ages, so wound-wait
    always resolves in the writer's favour — readers never block writers,
    matching the paper's asymmetric setting (read-only edge transactions vs
    authoritative backend updates).
    """

    def __init__(self, sim, database) -> None:
        self._sim = sim
        self.locks = LockManager(sim)
        self._writer_ids = itertools.count(-1, -1)
        #: Commits replayed into the lock table, for tests/reports.
        self.write_locks_replayed = 0
        database.add_commit_listener(self._on_commit)

    def _on_commit(self, txn: CommittedTransaction) -> None:
        if not txn.writes:
            return
        writer = next(self._writer_ids)
        # Age == id: negative and strictly decreasing, so every writer is
        # "older" than every reader (readers use their positive txn ids).
        self.locks.register(writer, writer, lambda _txn: None)
        for key in txn.writes:
            self.locks.acquire(writer, key, LockMode.EXCLUSIVE)
            self.write_locks_replayed += 1
        self.locks.release_all(writer)


@dataclass(slots=True)
class _LockContext:
    """Per-transaction lock state at one edge."""

    wounded: bool = False
    locked: set[Key] = field(default_factory=set)


class LockCoherentCache(CacheServer):
    """Edge cache that serves only backend-current, lock-protected reads."""

    def __init__(self, sim, backend, *, service: LockingService, capacity=None, name="lock-cache"):
        super().__init__(sim, backend, capacity=capacity, name=name)
        self._service = service
        self._contexts: dict[TxnId, _LockContext] = {}
        #: Validation round trips that found the cached entry stale.
        self.validation_refreshes = 0
        #: Reads aborted because a writer wounded the holder.
        self.wound_aborts = 0
        self._validated_at: dict[Key, float] = {}

    # ------------------------------------------------------------------
    # Consistency hook
    # ------------------------------------------------------------------

    def _check_read(
        self,
        txn_id: TxnId,
        record: ReadOnlyTransactionRecord,
        entry: VersionedValue,
    ) -> tuple[VersionedValue, bool]:
        context = self._contexts.get(txn_id)
        if context is None:
            context = self._contexts[txn_id] = _LockContext()
            self._service.locks.register(txn_id, txn_id, self._on_wound)
        if context.wounded:
            self._abort_with(txn_id, "wounded by a conflicting writer")
        key = entry.key
        if key not in context.locked:
            grant = self._service.locks.acquire(txn_id, key, LockMode.SHARED)
            if not grant.triggered:
                # Only transient writer X locks can conflict; no-wait rather
                # than block the simulated read path.
                self._abort_with(txn_id, "lock conflict with in-flight writer")
            context.locked.add(key)
        retried = False
        now = self._sim.now
        if self._validated_at.get(key) != now:
            fresh = self._backend.read_entry(key)
            self.stats.retries += 1
            self._validated_at[key] = now
            if fresh.version != entry.version:
                self.validation_refreshes += 1
                self.storage.put(fresh, now)
                entry = fresh
                retried = True
        return entry, retried

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_wound(self, txn_id: TxnId) -> None:
        context = self._contexts.get(txn_id)
        if context is not None:
            context.wounded = True

    def _abort_with(self, txn_id: TxnId, reason: str) -> None:
        self.wound_aborts += 1
        tracer = self._sim._tracer
        if tracer is not None and tracer.wants("protocol"):
            tracer.emit(
                self._sim.now,
                "protocol",
                "wound_abort",
                {"cache": self.name, "txn": txn_id, "reason": reason},
            )
            tracer.metrics.count("protocol.wound_aborts")
        self._finish(txn_id, TransactionOutcome.ABORTED)
        raise TransactionAborted(txn_id, reason)

    def _fetch(self, key: Key) -> VersionedValue:
        entry = super()._fetch(key)
        # A miss just came from the backend: current as of now by definition.
        self._validated_at[key] = self._sim.now
        return entry

    def _finish(self, txn_id: TxnId, outcome: TransactionOutcome) -> None:
        if self._contexts.pop(txn_id, None) is not None:
            self._service.locks.release_all(txn_id)
        super()._finish(txn_id, outcome)
